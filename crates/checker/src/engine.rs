//! The exploration engine: the frontier/visited/parents bookkeeping
//! shared by every search strategy, in two flavors — single-threaded
//! tables for the sequential explorers, and a sharded concurrent table
//! plus a work-stealing frontier for the parallel engine.
//!
//! Two soundness rules are centralized here so no explorer can get them
//! wrong again:
//!
//! * states are keyed by the collision-safe 128-bit [`Fingerprint`],
//!   never by a 64-bit hash (a 64-bit collision silently prunes a
//!   distinct state *and* corrupts trace reconstruction);
//! * the `max_states` bound is checked **before** a state is marked
//!   visited — a state dropped for exceeding the bound must not be
//!   remembered as explored, and `unique_states`/`stored_bytes` must
//!   count exactly the states actually retained.

use std::collections::VecDeque;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use parking_lot::Mutex;

use crate::checkpoint::{ParentRecord, VisitedEntry};
use crate::error::CheckerError;
use crate::fingerprint::{Fingerprint, FpHashMap, FpHashSet};
use crate::por::SleepSet;
use crate::store::{RunStore, SpillCounters};
use crate::trace::{StepSeed, TraceStep};
use crate::wire;

/// Outcome of offering a state to a visited set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Admit {
    /// Fresh state, now retained; the caller should expand it.
    New,
    /// Already visited; skip.
    Seen,
    /// The state bound is full. The state is **not** marked visited and
    /// not counted — the exploration is truncated, not misled.
    OverBound,
}

/// Outcome of offering a state *with a sleep set* to a visited set
/// (partial-order-reduced exploration).
///
/// With sleep sets, "visited" is not binary: a state explored with sleep
/// set `S` had the runs of machines in `S` pruned, so a later visit with
/// an incomparable sleep set may still owe the state some transitions.
/// The classical sound rule (Godefroid): skip the revisit iff the stored
/// sleep set is a **subset** of the new one (everything the new visit
/// would explore, an earlier visit already did); otherwise re-explore
/// with the **intersection** and store it. The stored set strictly
/// shrinks on every re-exploration, so each state is re-expanded at most
/// 64 times and termination is preserved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AdmitSleep {
    /// Fresh state, now retained; expand it with the offered sleep set.
    New,
    /// Already explored with a sleep set ⊆ the offered one; skip.
    Covered,
    /// Already explored, but only with an incomparable sleep set:
    /// re-expand with the carried (intersected) sleep set. The state is
    /// *not* re-counted; diagnostics for it were already noted.
    Widen(SleepSet),
    /// The state bound is full (see [`Admit::OverBound`]).
    OverBound,
}

/// [`Admit`] for symmetry-reduced exploration, where the visited set is
/// keyed by *canonical* fingerprints while traces and tasks stay
/// concrete. `merged` distinguishes a re-derivation of the exact stored
/// state from a merge with a symmetric sibling (a different concrete
/// state in the same orbit) — the quantity `symmetry_merges` counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AdmitSym {
    /// Fresh orbit, now retained; expand this concrete representative.
    New,
    /// The orbit was already visited.
    Seen {
        /// Whether the stored representative is a *different* concrete
        /// state (a genuine symmetry merge, not a plain dedup).
        merged: bool,
    },
    /// The state bound is full (see [`Admit::OverBound`]).
    OverBound,
}

/// [`AdmitSleep`] for symmetry-reduced POR exploration.
///
/// Sleep sets name concrete machine ids, but the visited set is keyed
/// per orbit, so the classical subset/intersection rule only applies
/// when the offer's concrete state *is* the stored representative. For
/// a symmetric sibling the permutation relating the two is unknown
/// here, and the only sleep set invariant under every permutation is ∅:
///
/// * stored sleep = ∅ — the representative was fully explored, and by
///   symmetry so is every sibling: `Covered`;
/// * stored sleep ≠ ∅ — the representative's expansion pruned some
///   machines; the sibling must be re-expanded with ∅, and ∅ becomes
///   the stored sleep (`Widen`). The stored set still only ever
///   shrinks, so termination is preserved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AdmitSleepSym {
    /// Fresh orbit; expand this concrete representative with the
    /// offered sleep set.
    New,
    /// Covered by an earlier exploration of the orbit.
    Covered {
        /// Whether coverage came from a symmetric sibling.
        merged: bool,
    },
    /// Re-expand with `sleep`. When `merged`, the offer's concrete
    /// state differs from the stored representative and `sleep` is ∅;
    /// the caller must ensure the concrete state has a parent edge
    /// before expanding it (its orbit's edge belongs to the
    /// representative).
    Widen {
        /// The sleep set to re-expand with (now also stored).
        sleep: SleepSet,
        /// Whether this revisit crossed to a symmetric sibling.
        merged: bool,
    },
    /// The state bound is full (see [`Admit::OverBound`]).
    OverBound,
}

/// A visited set with a state bound, counting only retained states.
#[derive(Debug)]
pub(crate) struct BoundedSet {
    seen: FpHashSet,
    /// Sleep set each state was last explored with. Absent entry = empty
    /// sleep set (fully explored) — the common case stays out of the map.
    sleeps: FpHashMap<SleepSet>,
    /// Concrete representative first admitted for each canonical key
    /// (symmetry mode only; empty otherwise).
    reps: FpHashMap<Fingerprint>,
    stored_bytes: usize,
    max: usize,
}

impl BoundedSet {
    /// An empty set admitting at most `max` states (at least one, so the
    /// initial state is always representable).
    pub(crate) fn new(max: usize) -> BoundedSet {
        BoundedSet {
            seen: FpHashSet::default(),
            sleeps: FpHashMap::default(),
            reps: FpHashMap::default(),
            stored_bytes: 0,
            max: max.max(1),
        }
    }

    /// An unbounded set (for node spaces whose size is already bounded
    /// by a bounded configuration space times a finite annotation).
    pub(crate) fn unbounded() -> BoundedSet {
        BoundedSet::new(usize::MAX)
    }

    /// Offers a state; `bytes` produces the state's stored byte cost,
    /// and is invoked only when the state is actually retained. The
    /// laziness is what makes intern-aware accounting possible: the
    /// caller's closure interns the admitted configuration's slots and
    /// returns only the *marginal* bytes (shared slots count once,
    /// the first time any state stores them).
    pub(crate) fn admit(&mut self, fp: Fingerprint, bytes: impl FnOnce() -> usize) -> Admit {
        // Below the bound (the overwhelmingly common case) a single
        // `insert` answers New-vs-Seen in one lookup. At the bound, fall
        // back to `contains` so a dropped state is never marked visited.
        if self.seen.len() >= self.max {
            if self.seen.contains(&fp) {
                return Admit::Seen;
            }
            return Admit::OverBound;
        }
        if self.seen.insert(fp) {
            self.stored_bytes += bytes();
            Admit::New
        } else {
            Admit::Seen
        }
    }

    /// Sleep-set-aware [`BoundedSet::admit`]; see [`AdmitSleep`] for the
    /// revisit rule.
    pub(crate) fn admit_sleep(
        &mut self,
        fp: Fingerprint,
        bytes: impl FnOnce() -> usize,
        sleep: SleepSet,
    ) -> AdmitSleep {
        // Mirror [`BoundedSet::admit`]: one lookup below the bound.
        if self.seen.len() < self.max {
            if self.seen.insert(fp) {
                if sleep != SleepSet::empty() {
                    self.sleeps.insert(fp, sleep);
                }
                self.stored_bytes += bytes();
                return AdmitSleep::New;
            }
        } else if !self.seen.contains(&fp) {
            return AdmitSleep::OverBound;
        }
        let old = self.sleeps.get(&fp).copied().unwrap_or_default();
        if old.is_subset_of(sleep) {
            return AdmitSleep::Covered;
        }
        let widened = old.intersect(sleep);
        if widened == SleepSet::empty() {
            self.sleeps.remove(&fp);
        } else {
            self.sleeps.insert(fp, widened);
        }
        AdmitSleep::Widen(widened)
    }

    /// Symmetry-reduced [`BoundedSet::admit`]: the visited set is keyed
    /// by the canonical fingerprint `key`, and the first `concrete`
    /// fingerprint admitted for a key is remembered as the orbit's
    /// representative so later offers can tell plain dedups from
    /// symmetry merges.
    pub(crate) fn admit_sym(
        &mut self,
        key: Fingerprint,
        concrete: Fingerprint,
        bytes: impl FnOnce() -> usize,
    ) -> AdmitSym {
        match self.admit(key, bytes) {
            Admit::New => {
                self.reps.insert(key, concrete);
                AdmitSym::New
            }
            Admit::Seen => AdmitSym::Seen {
                merged: self.reps.get(&key) != Some(&concrete),
            },
            Admit::OverBound => AdmitSym::OverBound,
        }
    }

    /// Symmetry-reduced [`BoundedSet::admit_sleep`]; see
    /// [`AdmitSleepSym`] for the revisit rule.
    pub(crate) fn admit_sleep_sym(
        &mut self,
        key: Fingerprint,
        concrete: Fingerprint,
        bytes: impl FnOnce() -> usize,
        sleep: SleepSet,
    ) -> AdmitSleepSym {
        if self.seen.len() < self.max {
            if self.seen.insert(key) {
                self.reps.insert(key, concrete);
                if sleep != SleepSet::empty() {
                    self.sleeps.insert(key, sleep);
                }
                self.stored_bytes += bytes();
                return AdmitSleepSym::New;
            }
        } else if !self.seen.contains(&key) {
            return AdmitSleepSym::OverBound;
        }
        let old = self.sleeps.get(&key).copied().unwrap_or_default();
        if self.reps.get(&key) == Some(&concrete) {
            // Same concrete state: the classical Godefroid rule.
            if old.is_subset_of(sleep) {
                return AdmitSleepSym::Covered { merged: false };
            }
            let widened = old.intersect(sleep);
            if widened == SleepSet::empty() {
                self.sleeps.remove(&key);
            } else {
                self.sleeps.insert(key, widened);
            }
            return AdmitSleepSym::Widen {
                sleep: widened,
                merged: false,
            };
        }
        // Symmetric sibling: only ∅ is permutation-invariant.
        if old == SleepSet::empty() {
            return AdmitSleepSym::Covered { merged: true };
        }
        self.sleeps.remove(&key);
        AdmitSleepSym::Widen {
            sleep: SleepSet::empty(),
            merged: true,
        }
    }

    /// Whether `fp` is retained as visited.
    #[cfg(test)]
    pub(crate) fn contains(&self, fp: Fingerprint) -> bool {
        self.seen.contains(&fp)
    }

    /// Retained states.
    pub(crate) fn len(&self) -> usize {
        self.seen.len()
    }

    /// Canonical-encoding bytes of the retained states.
    pub(crate) fn stored_bytes(&self) -> usize {
        self.stored_bytes
    }
}

/// Byte budget the hot visited tier may hold before spilling, for a
/// `--mem-limit` of `mem_limit` bytes. States vary widely in canonical
/// size (a handful of machines vs. hundreds), so the trigger compares
/// actual `stored_bytes` against this budget rather than counting
/// states. A quarter of the limit goes to the hot tier; the rest covers
/// the structures that stay RAM-resident across spills (sleep sets,
/// parent edges between spills, bloom filters, run indexes) plus the
/// frontier itself. The floor keeps tiny limits from degenerating into
/// a spill per handful of states.
pub(crate) fn hot_budget_for(mem_limit: usize) -> usize {
    (mem_limit / 4).max(64 << 10)
}

/// Hot-tier edge cap for a parent map sharing that `--mem-limit`, from
/// the same quarter-of-the-limit budget: parent edges are fixed-size
/// (two fingerprints plus a [`StepSeed`], ~64 bytes with hash-table
/// overhead), so a count cap is exact for them.
pub(crate) fn parent_cap_for(hot_budget: usize) -> usize {
    (hot_budget / 64).max(1024)
}

/// Spill payload for a symmetry-mode visited key: the orbit's concrete
/// representative.
fn encode_rep_payload(rep: Option<Fingerprint>) -> Vec<u8> {
    match rep {
        None => Vec::new(),
        Some(rep) => rep.as_u128().to_le_bytes().to_vec(),
    }
}

fn corrupt_spill(what: &str) -> CheckerError {
    CheckerError::CheckpointFormat(format!("corrupt {what} spill record"))
}

fn decode_rep_payload(payload: &[u8]) -> Result<Option<Fingerprint>, CheckerError> {
    if payload.is_empty() {
        return Ok(None);
    }
    let mut buf = payload;
    let rep = wire::read_u128(&mut buf).ok_or_else(|| corrupt_spill("visited"))?;
    if !buf.is_empty() {
        return Err(corrupt_spill("visited"));
    }
    Ok(Some(Fingerprint::from_u128(rep)))
}

/// Spill payload for a parent record: parent fingerprint + encoded
/// [`StepSeed`].
fn encode_parent_payload(parent: Fingerprint, seed: &StepSeed) -> Vec<u8> {
    let mut out = parent.as_u128().to_le_bytes().to_vec();
    seed.encode(&mut out);
    out
}

fn decode_parent_payload(payload: &[u8]) -> Result<(Fingerprint, StepSeed), CheckerError> {
    let mut buf = payload;
    let parent = wire::read_u128(&mut buf).ok_or_else(|| corrupt_spill("parent"))?;
    let seed = StepSeed::decode(&mut buf).ok_or_else(|| corrupt_spill("parent"))?;
    if !buf.is_empty() {
        return Err(corrupt_spill("parent"));
    }
    Ok((Fingerprint::from_u128(parent), seed))
}

/// The disk-backed cold half of a [`TieredSet`].
#[derive(Debug)]
struct ColdSet {
    store: RunStore,
    /// Spill once the hot tier's `stored_bytes` reaches this.
    hot_budget: usize,
    /// Canonical-encoding length per *hot* fingerprint, so spilling can
    /// subtract the spilled share from `stored_bytes` and keep it an
    /// honest RAM figure.
    lens: FpHashMap<u32>,
}

/// A [`BoundedSet`] with an optional disk-spilled cold tier — the
/// sequential engine's visited set under `--mem-limit`.
///
/// The hot tier holds at most `hot_budget` bytes of canonical state
/// encodings; when it fills, every hot fingerprint (with its symmetry
/// representative, if any) is drained into the [`RunStore`] and the hot
/// tier restarts empty. Sleep
/// sets stay RAM-resident: they are keyed by fingerprint in the hot
/// `sleeps` map whether or not the fingerprint itself has been spilled,
/// so the POR revisit rule (absent entry = fully explored) keeps working
/// for cold states. The `max_states` bound spans both tiers.
///
/// Without a cold tier every operation is infallible and delegates to
/// [`BoundedSet`] unchanged.
#[derive(Debug)]
pub(crate) struct TieredSet {
    hot: BoundedSet,
    cold: Option<ColdSet>,
}

impl TieredSet {
    /// A RAM-only set (no spilling; operations never fail).
    pub(crate) fn new(max: usize) -> TieredSet {
        TieredSet {
            hot: BoundedSet::new(max),
            cold: None,
        }
    }

    /// A tiered set spilling to `dir` whenever the hot tier reaches
    /// `hot_budget` bytes.
    pub(crate) fn with_spill(
        max: usize,
        dir: &Path,
        hot_budget: usize,
    ) -> Result<TieredSet, CheckerError> {
        Ok(TieredSet {
            hot: BoundedSet::new(max),
            cold: Some(ColdSet {
                store: RunStore::create(dir, "visited")?,
                hot_budget: hot_budget.max(1),
                lens: FpHashMap::default(),
            }),
        })
    }

    /// Retained states across both tiers.
    pub(crate) fn len(&self) -> usize {
        self.hot.seen.len()
            + self
                .cold
                .as_ref()
                .map_or(0, |c| c.store.counters.records as usize)
    }

    /// Canonical-encoding bytes of the *hot* (RAM-resident) states.
    pub(crate) fn stored_bytes(&self) -> usize {
        self.hot.stored_bytes
    }

    /// Spill activity of the cold tier (zeroed without one).
    pub(crate) fn spill_counters(&self) -> SpillCounters {
        self.cold
            .as_ref()
            .map_or(SpillCounters::default(), |c| c.store.counters)
    }

    /// Marks a fresh fingerprint hot, with its encoding length for the
    /// RAM accounting, then spills if the hot tier filled up.
    fn insert_hot(&mut self, fp: Fingerprint, bytes_len: usize) -> Result<(), CheckerError> {
        self.hot.seen.insert(fp);
        self.hot.stored_bytes += bytes_len;
        if let Some(cold) = self.cold.as_mut() {
            cold.lens.insert(fp, bytes_len as u32);
            if self.hot.stored_bytes >= cold.hot_budget {
                self.spill_hot()?;
            }
        }
        Ok(())
    }

    /// Drains the entire hot tier into the cold store. Sleep sets stay
    /// in RAM (see the type docs); representatives travel as payloads.
    fn spill_hot(&mut self) -> Result<(), CheckerError> {
        let cold = self.cold.as_mut().expect("spill without a cold tier");
        let mut batch = Vec::with_capacity(self.hot.seen.len());
        for fp in self.hot.seen.drain() {
            let payload = encode_rep_payload(self.hot.reps.remove(&fp));
            let len = cold.lens.remove(&fp).unwrap_or(0) as usize;
            self.hot.stored_bytes = self.hot.stored_bytes.saturating_sub(len);
            batch.push((fp.as_u128(), payload));
        }
        cold.store.spill(batch)
    }

    /// Whether `key` is visited in the cold tier, with its stored
    /// representative (symmetry mode).
    fn cold_lookup(
        &mut self,
        key: Fingerprint,
    ) -> Result<Option<Option<Fingerprint>>, CheckerError> {
        let Some(cold) = self.cold.as_mut() else {
            return Ok(None);
        };
        match cold.store.get(key.as_u128())? {
            None => Ok(None),
            Some(payload) => Ok(Some(decode_rep_payload(&payload)?)),
        }
    }

    /// [`BoundedSet::admit`] across both tiers.
    pub(crate) fn admit(
        &mut self,
        fp: Fingerprint,
        bytes: impl FnOnce() -> usize,
    ) -> Result<Admit, CheckerError> {
        if self.cold.is_none() {
            return Ok(self.hot.admit(fp, bytes));
        }
        if self.hot.seen.contains(&fp) || self.cold_lookup(fp)?.is_some() {
            return Ok(Admit::Seen);
        }
        if self.len() >= self.hot.max {
            return Ok(Admit::OverBound);
        }
        self.insert_hot(fp, bytes())?;
        Ok(Admit::New)
    }

    /// [`BoundedSet::admit_sleep`] across both tiers.
    pub(crate) fn admit_sleep(
        &mut self,
        fp: Fingerprint,
        bytes: impl FnOnce() -> usize,
        sleep: SleepSet,
    ) -> Result<AdmitSleep, CheckerError> {
        if self.cold.is_none() {
            return Ok(self.hot.admit_sleep(fp, bytes, sleep));
        }
        let visited = self.hot.seen.contains(&fp) || self.cold_lookup(fp)?.is_some();
        if !visited {
            if self.len() >= self.hot.max {
                return Ok(AdmitSleep::OverBound);
            }
            if sleep != SleepSet::empty() {
                self.hot.sleeps.insert(fp, sleep);
            }
            self.insert_hot(fp, bytes())?;
            return Ok(AdmitSleep::New);
        }
        // The revisit rule runs on the RAM-resident sleeps map whether
        // the fingerprint is hot or cold.
        let old = self.hot.sleeps.get(&fp).copied().unwrap_or_default();
        if old.is_subset_of(sleep) {
            return Ok(AdmitSleep::Covered);
        }
        let widened = old.intersect(sleep);
        if widened == SleepSet::empty() {
            self.hot.sleeps.remove(&fp);
        } else {
            self.hot.sleeps.insert(fp, widened);
        }
        Ok(AdmitSleep::Widen(widened))
    }

    /// [`BoundedSet::admit_sym`] across both tiers.
    pub(crate) fn admit_sym(
        &mut self,
        key: Fingerprint,
        concrete: Fingerprint,
        bytes: impl FnOnce() -> usize,
    ) -> Result<AdmitSym, CheckerError> {
        if self.cold.is_none() {
            return Ok(self.hot.admit_sym(key, concrete, bytes));
        }
        if self.hot.seen.contains(&key) {
            return Ok(AdmitSym::Seen {
                merged: self.hot.reps.get(&key) != Some(&concrete),
            });
        }
        if let Some(rep) = self.cold_lookup(key)? {
            return Ok(AdmitSym::Seen {
                merged: rep != Some(concrete),
            });
        }
        if self.len() >= self.hot.max {
            return Ok(AdmitSym::OverBound);
        }
        self.hot.reps.insert(key, concrete);
        self.insert_hot(key, bytes())?;
        Ok(AdmitSym::New)
    }

    /// [`BoundedSet::admit_sleep_sym`] across both tiers.
    pub(crate) fn admit_sleep_sym(
        &mut self,
        key: Fingerprint,
        concrete: Fingerprint,
        bytes: impl FnOnce() -> usize,
        sleep: SleepSet,
    ) -> Result<AdmitSleepSym, CheckerError> {
        if self.cold.is_none() {
            return Ok(self.hot.admit_sleep_sym(key, concrete, bytes, sleep));
        }
        let rep = if self.hot.seen.contains(&key) {
            Some(self.hot.reps.get(&key).copied())
        } else {
            self.cold_lookup(key)?
        };
        let Some(rep) = rep else {
            // Fresh orbit.
            if self.len() >= self.hot.max {
                return Ok(AdmitSleepSym::OverBound);
            }
            self.hot.reps.insert(key, concrete);
            if sleep != SleepSet::empty() {
                self.hot.sleeps.insert(key, sleep);
            }
            self.insert_hot(key, bytes())?;
            return Ok(AdmitSleepSym::New);
        };
        let old = self.hot.sleeps.get(&key).copied().unwrap_or_default();
        if rep == Some(concrete) {
            // Same concrete state: the classical rule.
            if old.is_subset_of(sleep) {
                return Ok(AdmitSleepSym::Covered { merged: false });
            }
            let widened = old.intersect(sleep);
            if widened == SleepSet::empty() {
                self.hot.sleeps.remove(&key);
            } else {
                self.hot.sleeps.insert(key, widened);
            }
            return Ok(AdmitSleepSym::Widen {
                sleep: widened,
                merged: false,
            });
        }
        // Symmetric sibling: only ∅ is permutation-invariant.
        if old == SleepSet::empty() {
            return Ok(AdmitSleepSym::Covered { merged: true });
        }
        self.hot.sleeps.remove(&key);
        Ok(AdmitSleepSym::Widen {
            sleep: SleepSet::empty(),
            merged: true,
        })
    }

    /// Every visited entry (hot then cold) for checkpointing. Sleep
    /// sets come from the RAM-resident map for both tiers.
    pub(crate) fn snapshot(&self) -> Result<Vec<VisitedEntry>, CheckerError> {
        let mut out = Vec::with_capacity(self.len());
        for &fp in &self.hot.seen {
            out.push(VisitedEntry {
                fp: fp.as_u128(),
                sleep: self.hot.sleeps.get(&fp).map_or(0, |s| s.0),
                rep: self.hot.reps.get(&fp).map(|r| r.as_u128()),
            });
        }
        if let Some(cold) = &self.cold {
            for (key, payload) in cold.store.iter_all()? {
                let fp = Fingerprint::from_u128(key);
                out.push(VisitedEntry {
                    fp: key,
                    sleep: self.hot.sleeps.get(&fp).map_or(0, |s| s.0),
                    rep: decode_rep_payload(&payload)?.map(|r| r.as_u128()),
                });
            }
        }
        Ok(out)
    }

    /// Rebuilds a set from checkpointed entries. Without spilling the
    /// entries become the hot tier and `stored_bytes` restores the
    /// checkpointed figure; with spilling every restored fingerprint
    /// goes straight to disk (their encoding lengths are no longer
    /// known, so the hot tier restarts empty and RAM-honest at zero).
    pub(crate) fn restore(
        max: usize,
        spill: Option<(&Path, usize)>,
        entries: &[VisitedEntry],
        stored_bytes: usize,
    ) -> Result<TieredSet, CheckerError> {
        let mut set = match spill {
            None => TieredSet::new(max),
            Some((dir, hot_cap)) => TieredSet::with_spill(max, dir, hot_cap)?,
        };
        match set.cold.as_mut() {
            None => {
                for e in entries {
                    let fp = Fingerprint::from_u128(e.fp);
                    set.hot.seen.insert(fp);
                    if e.sleep != 0 {
                        set.hot.sleeps.insert(fp, SleepSet(e.sleep));
                    }
                    if let Some(rep) = e.rep {
                        set.hot.reps.insert(fp, Fingerprint::from_u128(rep));
                    }
                }
                set.hot.stored_bytes = stored_bytes;
            }
            Some(cold) => {
                let mut batch = Vec::with_capacity(entries.len());
                for e in entries {
                    if e.sleep != 0 {
                        set.hot
                            .sleeps
                            .insert(Fingerprint::from_u128(e.fp), SleepSet(e.sleep));
                    }
                    batch.push((e.fp, encode_rep_payload(e.rep.map(Fingerprint::from_u128))));
                }
                cold.store.spill(batch)?;
            }
        }
        Ok(set)
    }
}

/// The disk-backed cold half of a [`TieredParents`].
#[derive(Debug)]
struct ColdParents {
    store: RunStore,
    hot_cap: usize,
}

/// A [`ParentMap`] with an optional disk-spilled cold tier, mirroring
/// [`TieredSet`]: under `--mem-limit` parent edges spill alongside the
/// visited fingerprints so counterexample reconstruction stays concrete
/// however deep the spilled history runs.
#[derive(Debug)]
pub(crate) struct TieredParents {
    hot: ParentMap,
    cold: Option<ColdParents>,
}

impl TieredParents {
    /// A RAM-only parent map (operations never fail).
    pub(crate) fn new() -> TieredParents {
        TieredParents {
            hot: ParentMap::new(),
            cold: None,
        }
    }

    /// A tiered map spilling to `dir` at `hot_cap` RAM-resident edges.
    pub(crate) fn with_spill(dir: &Path, hot_cap: usize) -> Result<TieredParents, CheckerError> {
        Ok(TieredParents {
            hot: ParentMap::new(),
            cold: Some(ColdParents {
                store: RunStore::create(dir, "parents")?,
                hot_cap: hot_cap.max(1),
            }),
        })
    }

    /// Spill activity of the cold tier (zeroed without one).
    pub(crate) fn spill_counters(&self) -> SpillCounters {
        self.cold
            .as_ref()
            .map_or(SpillCounters::default(), |c| c.store.counters)
    }

    fn maybe_spill(&mut self) -> Result<(), CheckerError> {
        let Some(cold) = self.cold.as_mut() else {
            return Ok(());
        };
        if self.hot.map.len() < cold.hot_cap {
            return Ok(());
        }
        let batch = self
            .hot
            .map
            .drain()
            .map(|(child, (parent, seed))| (child.as_u128(), encode_parent_payload(parent, &seed)))
            .collect();
        cold.store.spill(batch)
    }

    /// Records how `child` was first reached. `child` must be fresh
    /// (just admitted), so no cold-tier duplicate check is needed.
    pub(crate) fn record(
        &mut self,
        child: Fingerprint,
        parent: Fingerprint,
        step: StepSeed,
    ) -> Result<(), CheckerError> {
        self.hot.record(child, parent, step);
        self.maybe_spill()
    }

    /// [`ParentMap::record_if_absent`] across both tiers (first edge
    /// wins even if the first edge has been spilled).
    pub(crate) fn record_if_absent(
        &mut self,
        child: Fingerprint,
        parent: Fingerprint,
        step: impl FnOnce() -> StepSeed,
    ) -> Result<(), CheckerError> {
        if self.cold.is_none() {
            self.hot.record_if_absent(child, parent, step);
            return Ok(());
        }
        if self.hot.map.contains_key(&child) {
            return Ok(());
        }
        if let Some(cold) = self.cold.as_mut() {
            if cold.store.contains(child.as_u128())? {
                return Ok(());
            }
        }
        self.hot.record(child, parent, step());
        self.maybe_spill()
    }

    /// Walks the parent edges from the initial state to `state` across
    /// both tiers, rendering the stored seeds.
    pub(crate) fn reconstruct(
        &mut self,
        mut state: Fingerprint,
        program: &p_semantics::LoweredProgram,
    ) -> Result<Vec<TraceStep>, CheckerError> {
        let mut steps = Vec::new();
        loop {
            if let Some((parent, step)) = self.hot.map.get(&state) {
                steps.push(step.render(program));
                state = *parent;
                continue;
            }
            let Some(cold) = self.cold.as_mut() else {
                break;
            };
            let Some(payload) = cold.store.get(state.as_u128())? else {
                break;
            };
            let (parent, seed) = decode_parent_payload(&payload)?;
            steps.push(seed.render(program));
            state = parent;
        }
        steps.reverse();
        Ok(steps)
    }

    /// Every `(child, parent, seed)` record (hot then cold) for
    /// checkpointing.
    pub(crate) fn snapshot(&self) -> Result<Vec<ParentRecord>, CheckerError> {
        let mut out = Vec::with_capacity(self.hot.map.len());
        for (child, (parent, seed)) in &self.hot.map {
            out.push((child.as_u128(), parent.as_u128(), seed.clone()));
        }
        if let Some(cold) = &self.cold {
            for (child, payload) in cold.store.iter_all()? {
                let (parent, seed) = decode_parent_payload(&payload)?;
                out.push((child, parent.as_u128(), seed));
            }
        }
        Ok(out)
    }

    /// Rebuilds a map from checkpointed records (all into RAM without
    /// spilling, all onto disk with it — mirroring
    /// [`TieredSet::restore`]).
    pub(crate) fn restore(
        spill: Option<(&Path, usize)>,
        records: Vec<ParentRecord>,
    ) -> Result<TieredParents, CheckerError> {
        let mut parents = match spill {
            None => TieredParents::new(),
            Some((dir, hot_cap)) => TieredParents::with_spill(dir, hot_cap)?,
        };
        match parents.cold.as_mut() {
            None => {
                for (child, parent, seed) in records {
                    parents.hot.record(
                        Fingerprint::from_u128(child),
                        Fingerprint::from_u128(parent),
                        seed,
                    );
                }
            }
            Some(cold) => {
                let batch = records
                    .into_iter()
                    .map(|(child, parent, seed)| {
                        (
                            child,
                            encode_parent_payload(Fingerprint::from_u128(parent), &seed),
                        )
                    })
                    .collect();
                cold.store.spill(batch)?;
            }
        }
        Ok(parents)
    }
}

/// Shared additive totals for the parallel engine.
///
/// Workers keep cheap thread-local [`crate::ExplorationStats`] and
/// *flush deltas* here — once per expanded task and unconditionally on
/// exit — so the final totals are exact regardless of how a worker
/// leaves its loop (frontier drained, counterexample found elsewhere,
/// or the worker found the violation itself and broke out mid-task).
/// Reading these during the run gives monotone, slightly-stale values
/// suitable for progress snapshots.
#[derive(Debug, Default)]
pub(crate) struct SharedCounters {
    transitions: AtomicUsize,
    dedup_hits: AtomicUsize,
    sleep_pruned: AtomicUsize,
    quiescent_states: AtomicUsize,
    stuck_states: AtomicUsize,
    symmetry_merges: AtomicUsize,
    max_depth: AtomicUsize,
    max_queue_seen: AtomicUsize,
    /// Sampled phase nanoseconds (exec, digest, clone, canon, table).
    phase_nanos: [std::sync::atomic::AtomicU64; 5],
}

impl SharedCounters {
    /// Folds the delta between a worker's current local stats and the
    /// portion it already flushed into the shared totals, then advances
    /// the flushed watermark. Additive counters add their delta; maxima
    /// race via `fetch_max`.
    pub(crate) fn flush(
        &self,
        local: &crate::ExplorationStats,
        flushed: &mut crate::ExplorationStats,
    ) {
        let add = |cell: &AtomicUsize, now: usize, before: usize| {
            if now > before {
                cell.fetch_add(now - before, Ordering::Relaxed);
            }
        };
        add(&self.transitions, local.transitions, flushed.transitions);
        add(&self.dedup_hits, local.dedup_hits, flushed.dedup_hits);
        add(&self.sleep_pruned, local.sleep_pruned, flushed.sleep_pruned);
        add(
            &self.quiescent_states,
            local.quiescent_states,
            flushed.quiescent_states,
        );
        add(&self.stuck_states, local.stuck_states, flushed.stuck_states);
        add(
            &self.symmetry_merges,
            local.symmetry_merges,
            flushed.symmetry_merges,
        );
        self.max_depth.fetch_max(local.max_depth, Ordering::Relaxed);
        self.max_queue_seen
            .fetch_max(local.max_queue_seen, Ordering::Relaxed);
        let phases = |p: &crate::PhaseNanos| [p.exec, p.digest, p.clone, p.canon, p.table];
        let now = phases(&local.phases);
        let before = phases(&flushed.phases);
        for (cell, (now, before)) in self.phase_nanos.iter().zip(now.into_iter().zip(before)) {
            if now > before {
                cell.fetch_add(now - before, Ordering::Relaxed);
            }
        }
        *flushed = local.clone();
    }

    /// The flushed totals as an [`crate::ExplorationStats`] skeleton
    /// (state/byte counts and duration are owned elsewhere).
    pub(crate) fn totals(&self) -> crate::ExplorationStats {
        crate::ExplorationStats {
            transitions: self.transitions.load(Ordering::Relaxed),
            dedup_hits: self.dedup_hits.load(Ordering::Relaxed),
            sleep_pruned: self.sleep_pruned.load(Ordering::Relaxed),
            quiescent_states: self.quiescent_states.load(Ordering::Relaxed),
            stuck_states: self.stuck_states.load(Ordering::Relaxed),
            symmetry_merges: self.symmetry_merges.load(Ordering::Relaxed),
            max_depth: self.max_depth.load(Ordering::Relaxed),
            max_queue_seen: self.max_queue_seen.load(Ordering::Relaxed),
            phases: crate::PhaseNanos {
                exec: self.phase_nanos[0].load(Ordering::Relaxed),
                digest: self.phase_nanos[1].load(Ordering::Relaxed),
                clone: self.phase_nanos[2].load(Ordering::Relaxed),
                canon: self.phase_nanos[3].load(Ordering::Relaxed),
                table: self.phase_nanos[4].load(Ordering::Relaxed),
            },
            ..crate::ExplorationStats::default()
        }
    }
}

/// `child → (parent, step)` edges for counterexample reconstruction,
/// keyed by fingerprint.
#[derive(Debug, Default)]
pub(crate) struct ParentMap {
    map: FpHashMap<(Fingerprint, StepSeed)>,
}

impl ParentMap {
    pub(crate) fn new() -> ParentMap {
        ParentMap::default()
    }

    /// Records how `child` was first reached.
    pub(crate) fn record(&mut self, child: Fingerprint, parent: Fingerprint, step: StepSeed) {
        self.map.insert(child, (parent, step));
    }

    /// Records an edge only if `child` has none yet. Used by the
    /// symmetry engine when it re-expands a concrete sibling of an
    /// already-visited orbit: keeping the *first* edge preserves the
    /// acyclicity invariant (a child's recorded parent was admitted
    /// strictly earlier), which a later overwrite could break.
    pub(crate) fn record_if_absent(
        &mut self,
        child: Fingerprint,
        parent: Fingerprint,
        step: impl FnOnce() -> StepSeed,
    ) {
        self.map.entry(child).or_insert_with(|| (parent, step()));
    }

    /// Walks the parent edges from the initial state to `state`,
    /// rendering the stored seeds into human-readable steps.
    pub(crate) fn reconstruct(
        &self,
        mut state: Fingerprint,
        program: &p_semantics::LoweredProgram,
    ) -> Vec<TraceStep> {
        let mut steps = Vec::new();
        while let Some((parent, step)) = self.map.get(&state) {
            steps.push(step.render(program));
            state = *parent;
        }
        steps.reverse();
        steps
    }
}

/// Shard count of [`SharedTable`]. 64 shards keep lock contention low
/// for any plausible worker count while costing only 64 mutexes.
const SHARDS: usize = 64;

/// The concurrent visited set + parent map of the parallel engine:
/// sharded by fingerprint prefix, one mutex per shard, with global
/// retained-state accounting kept in atomics so the `max_states` bound
/// holds across shards.
#[derive(Debug)]
pub(crate) struct SharedTable {
    shards: Vec<Mutex<Shard>>,
    unique: AtomicUsize,
    stored: AtomicUsize,
    truncated: AtomicBool,
    max: usize,
    /// Disk-spilled cold tier (`--mem-limit` only).
    cold: Option<SharedCold>,
    /// Fingerprints across all shards' hot `visited` sets; compared
    /// against the hot cap to trigger spills. Only maintained when a
    /// cold tier exists.
    hot_count: AtomicUsize,
}

/// The cold tier of a [`SharedTable`]. Lock order is `shard(s) → store
/// mutexes`, everywhere: admits hold one shard lock and may briefly
/// take a store mutex under it; the spiller takes *every* shard lock
/// (ascending) and only then the store mutexes, so a spill is atomic
/// with respect to every admit and no cycle exists.
#[derive(Debug)]
struct SharedCold {
    visited: Mutex<RunStore>,
    parents: Mutex<RunStore>,
    /// Spill once the table's hot `stored` bytes reach this.
    hot_budget: usize,
    /// Serializes spillers (`try_lock`: losers skip — the winner is
    /// already draining the hot tier they noticed was full).
    spilling: Mutex<()>,
}

#[derive(Debug, Default)]
struct Shard {
    visited: FpHashSet,
    parents: FpHashMap<(Fingerprint, StepSeed)>,
    /// Sleep set each state was last explored with (absent = empty).
    /// Stays RAM-resident across spills, like [`TieredSet`]'s.
    sleeps: FpHashMap<SleepSet>,
    /// Concrete representative per canonical key (symmetry mode only).
    reps: FpHashMap<Fingerprint>,
    /// Encoding length per hot fingerprint (cold tier only), so spills
    /// keep `stored_bytes` an honest RAM figure.
    lens: FpHashMap<u32>,
}

impl SharedTable {
    /// An empty table admitting at most `max` states.
    pub(crate) fn new(max: usize) -> SharedTable {
        SharedTable {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            unique: AtomicUsize::new(0),
            stored: AtomicUsize::new(0),
            truncated: AtomicBool::new(false),
            max: max.max(1),
            cold: None,
            hot_count: AtomicUsize::new(0),
        }
    }

    /// An empty table spilling to `dir` whenever the hot tier reaches
    /// `hot_budget` bytes.
    pub(crate) fn with_spill(
        max: usize,
        dir: &Path,
        hot_budget: usize,
    ) -> Result<SharedTable, CheckerError> {
        let mut table = SharedTable::new(max);
        table.cold = Some(SharedCold {
            visited: Mutex::new(RunStore::create(dir, "visited")?),
            parents: Mutex::new(RunStore::create(dir, "parents")?),
            hot_budget: hot_budget.max(1),
            spilling: Mutex::new(()),
        });
        Ok(table)
    }

    /// Rebuilds a table from checkpointed entries (see
    /// [`TieredSet::restore`] for the tier placement rules).
    pub(crate) fn restore(
        max: usize,
        spill: Option<(&Path, usize)>,
        entries: &[VisitedEntry],
        parents: Vec<ParentRecord>,
        stored_bytes: usize,
    ) -> Result<SharedTable, CheckerError> {
        let table = match spill {
            None => SharedTable::new(max),
            Some((dir, hot_cap)) => SharedTable::with_spill(max, dir, hot_cap)?,
        };
        table.unique.store(entries.len(), Ordering::SeqCst);
        match &table.cold {
            None => {
                for e in entries {
                    let fp = Fingerprint::from_u128(e.fp);
                    let mut shard = table.shards[fp.shard(SHARDS)].lock();
                    shard.visited.insert(fp);
                    if e.sleep != 0 {
                        shard.sleeps.insert(fp, SleepSet(e.sleep));
                    }
                    if let Some(rep) = e.rep {
                        shard.reps.insert(fp, Fingerprint::from_u128(rep));
                    }
                }
                for (child, parent, seed) in parents {
                    let child = Fingerprint::from_u128(child);
                    let mut shard = table.shards[child.shard(SHARDS)].lock();
                    shard
                        .parents
                        .insert(child, (Fingerprint::from_u128(parent), seed));
                }
                table.stored.store(stored_bytes, Ordering::SeqCst);
            }
            Some(cold) => {
                let mut batch = Vec::with_capacity(entries.len());
                for e in entries {
                    let fp = Fingerprint::from_u128(e.fp);
                    if e.sleep != 0 {
                        let mut shard = table.shards[fp.shard(SHARDS)].lock();
                        shard.sleeps.insert(fp, SleepSet(e.sleep));
                    }
                    batch.push((e.fp, encode_rep_payload(e.rep.map(Fingerprint::from_u128))));
                }
                cold.visited.lock().spill(batch)?;
                let parent_batch = parents
                    .into_iter()
                    .map(|(child, parent, seed)| {
                        (
                            child,
                            encode_parent_payload(Fingerprint::from_u128(parent), &seed),
                        )
                    })
                    .collect();
                cold.parents.lock().spill(parent_batch)?;
            }
        }
        Ok(table)
    }

    /// Spill activity: `(spilled_states, spill_bytes, cold_hits)`,
    /// zeroed without a cold tier. `spill_bytes` and `cold_hits` cover
    /// the visited and parent stores; `spilled_states` counts visited
    /// fingerprints only.
    pub(crate) fn spill_stats(&self) -> (usize, u64, u64) {
        match &self.cold {
            None => (0, 0, 0),
            Some(cold) => {
                let v = cold.visited.lock().counters;
                let p = cold.parents.lock().counters;
                (
                    v.records as usize,
                    v.bytes_written + p.bytes_written,
                    v.hits + p.hits,
                )
            }
        }
    }

    /// Stop-the-world spill: when the hot tier is over its cap, take
    /// every shard lock (ascending — the same order prevents deadlock
    /// with admits, which hold exactly one), drain all hot fingerprints,
    /// representatives and parent edges, and write them to the cold
    /// store while still holding the shard locks, so no admit can
    /// observe a drained-but-not-yet-spilled fingerprint as unvisited.
    fn maybe_spill(&self) -> Result<(), CheckerError> {
        let Some(cold) = &self.cold else {
            return Ok(());
        };
        if self.stored.load(Ordering::Relaxed) < cold.hot_budget {
            return Ok(());
        }
        let Some(_guard) = cold.spilling.try_lock() else {
            return Ok(());
        };
        if self.stored.load(Ordering::Relaxed) < cold.hot_budget {
            return Ok(());
        }
        let mut shards: Vec<_> = self.shards.iter().map(|s| s.lock()).collect();
        let mut visited_batch = Vec::with_capacity(self.hot_count.load(Ordering::Relaxed));
        let mut parent_batch = Vec::new();
        let mut freed = 0usize;
        for shard in shards.iter_mut() {
            let fps: Vec<Fingerprint> = shard.visited.drain().collect();
            for fp in fps {
                let payload = encode_rep_payload(shard.reps.remove(&fp));
                freed += shard.lens.remove(&fp).unwrap_or(0) as usize;
                visited_batch.push((fp.as_u128(), payload));
            }
            for (child, (parent, seed)) in shard.parents.drain() {
                parent_batch.push((child.as_u128(), encode_parent_payload(parent, &seed)));
            }
        }
        self.hot_count.store(0, Ordering::Relaxed);
        let freed = freed.min(self.stored.load(Ordering::SeqCst));
        self.stored.fetch_sub(freed, Ordering::SeqCst);
        cold.visited.lock().spill(visited_batch)?;
        cold.parents.lock().spill(parent_batch)?;
        Ok(())
    }

    /// Hot-tier bookkeeping for one freshly inserted fingerprint.
    fn note_hot_insert(&self, shard: &mut Shard, fp: Fingerprint, bytes_len: usize) {
        self.stored.fetch_add(bytes_len, Ordering::Relaxed);
        if self.cold.is_some() {
            shard.lens.insert(fp, bytes_len as u32);
            self.hot_count.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Whether `fp` is visited in the cold tier; must be called with
    /// `fp`'s shard lock held (spills take all shard locks, so holding
    /// one makes the hot-miss + cold-miss check atomic).
    fn cold_visited(&self, fp: Fingerprint) -> Result<Option<Option<Fingerprint>>, CheckerError> {
        let Some(cold) = &self.cold else {
            return Ok(None);
        };
        match cold.visited.lock().get(fp.as_u128())? {
            None => Ok(None),
            Some(payload) => Ok(Some(decode_rep_payload(&payload)?)),
        }
    }

    /// Admits the initial state (no parent edge).
    pub(crate) fn admit_root(&self, fp: Fingerprint, bytes: impl FnOnce() -> usize) {
        let mut shard = self.shards[fp.shard(SHARDS)].lock();
        shard.visited.insert(fp);
        self.unique.fetch_add(1, Ordering::SeqCst);
        let bytes_len = bytes();
        self.note_hot_insert(&mut shard, fp, bytes_len);
    }

    /// [`SharedTable::admit_root`] keyed canonically, remembering the
    /// initial state's concrete fingerprint as its orbit representative.
    pub(crate) fn admit_root_sym(
        &self,
        key: Fingerprint,
        concrete: Fingerprint,
        bytes: impl FnOnce() -> usize,
    ) {
        let mut shard = self.shards[key.shard(SHARDS)].lock();
        shard.visited.insert(key);
        shard.reps.insert(key, concrete);
        self.unique.fetch_add(1, Ordering::SeqCst);
        let bytes_len = bytes();
        self.note_hot_insert(&mut shard, key, bytes_len);
    }

    /// Offers a successor reached from `parent` by the step `step()`
    /// builds. Exactly one concurrent caller gets [`Admit::New`] for a
    /// given fingerprint and must expand it; its parent edge is recorded
    /// before `New` is returned, so any later error below this state
    /// reconstructs a complete trace. `step` is a closure so the step
    /// construction (which moves the choice script) is skipped entirely
    /// on the `Seen` fast path — the overwhelming majority of offers.
    pub(crate) fn admit(
        &self,
        fp: Fingerprint,
        bytes: impl FnOnce() -> usize,
        parent: Fingerprint,
        step: impl FnOnce() -> StepSeed,
    ) -> Result<Admit, CheckerError> {
        {
            let mut shard = self.shards[fp.shard(SHARDS)].lock();
            if shard.visited.contains(&fp) {
                return Ok(Admit::Seen);
            }
            if self.cold_visited(fp)?.is_some() {
                return Ok(Admit::Seen);
            }
            // Reserve a slot under the global bound; undo on overflow.
            // The shard lock is held, so a concurrent duplicate of
            // *this* state cannot slip in between the check and the
            // insert (spills take every shard lock, so the cold check
            // above is covered too).
            let reserved = self.unique.fetch_add(1, Ordering::SeqCst);
            if reserved >= self.max {
                self.unique.fetch_sub(1, Ordering::SeqCst);
                self.truncated.store(true, Ordering::SeqCst);
                return Ok(Admit::OverBound);
            }
            shard.visited.insert(fp);
            shard.parents.insert(fp, (parent, step()));
            let bytes_len = bytes();
            self.note_hot_insert(&mut shard, fp, bytes_len);
        }
        self.maybe_spill()?;
        Ok(Admit::New)
    }

    /// Sleep-set-aware [`SharedTable::admit`]; see [`AdmitSleep`] for
    /// the revisit rule. The whole decision happens under the shard
    /// lock, so concurrent offers of the same state serialize and the
    /// stored sleep set only ever shrinks.
    pub(crate) fn admit_sleep(
        &self,
        fp: Fingerprint,
        bytes: impl FnOnce() -> usize,
        sleep: SleepSet,
        parent: Fingerprint,
        step: impl FnOnce() -> StepSeed,
    ) -> Result<AdmitSleep, CheckerError> {
        {
            let mut shard = self.shards[fp.shard(SHARDS)].lock();
            let visited = shard.visited.contains(&fp) || self.cold_visited(fp)?.is_some();
            if visited {
                // The revisit rule runs on the shard's RAM-resident
                // sleeps map whether the fingerprint is hot or cold.
                let old = shard.sleeps.get(&fp).copied().unwrap_or_default();
                if old.is_subset_of(sleep) {
                    return Ok(AdmitSleep::Covered);
                }
                let widened = old.intersect(sleep);
                if widened == SleepSet::empty() {
                    shard.sleeps.remove(&fp);
                } else {
                    shard.sleeps.insert(fp, widened);
                }
                return Ok(AdmitSleep::Widen(widened));
            }
            let reserved = self.unique.fetch_add(1, Ordering::SeqCst);
            if reserved >= self.max {
                self.unique.fetch_sub(1, Ordering::SeqCst);
                self.truncated.store(true, Ordering::SeqCst);
                return Ok(AdmitSleep::OverBound);
            }
            shard.visited.insert(fp);
            shard.parents.insert(fp, (parent, step()));
            if sleep != SleepSet::empty() {
                shard.sleeps.insert(fp, sleep);
            }
            let bytes_len = bytes();
            self.note_hot_insert(&mut shard, fp, bytes_len);
        }
        self.maybe_spill()?;
        Ok(AdmitSleep::New)
    }

    /// Symmetry-reduced [`SharedTable::admit`]: the visited set is keyed
    /// by the canonical fingerprint `key`; parent edges stay keyed by
    /// *concrete* fingerprints (they live in the concrete fingerprint's
    /// shard, taken after the key shard is released — the two locks are
    /// never nested, so there is no deadlock). The winner's edge is
    /// recorded before `New` returns, so any task ever pushed has a
    /// fully reconstructible trace.
    pub(crate) fn admit_sym(
        &self,
        key: Fingerprint,
        concrete: Fingerprint,
        bytes: impl FnOnce() -> usize,
        parent: Fingerprint,
        step: impl FnOnce() -> StepSeed,
    ) -> Result<AdmitSym, CheckerError> {
        {
            let mut shard = self.shards[key.shard(SHARDS)].lock();
            if shard.visited.contains(&key) {
                return Ok(AdmitSym::Seen {
                    merged: shard.reps.get(&key) != Some(&concrete),
                });
            }
            if let Some(rep) = self.cold_visited(key)? {
                return Ok(AdmitSym::Seen {
                    merged: rep != Some(concrete),
                });
            }
            let reserved = self.unique.fetch_add(1, Ordering::SeqCst);
            if reserved >= self.max {
                self.unique.fetch_sub(1, Ordering::SeqCst);
                self.truncated.store(true, Ordering::SeqCst);
                return Ok(AdmitSym::OverBound);
            }
            shard.visited.insert(key);
            shard.reps.insert(key, concrete);
            let bytes_len = bytes();
            self.note_hot_insert(&mut shard, key, bytes_len);
        }
        self.record_parent_edge(concrete, parent, step)?;
        self.maybe_spill()?;
        Ok(AdmitSym::New)
    }

    /// First-edge-wins parent record for `concrete`, across both tiers.
    /// Holds the concrete fingerprint's shard lock through the cold
    /// check (spills take every shard lock, so the check is atomic).
    fn record_parent_edge(
        &self,
        concrete: Fingerprint,
        parent: Fingerprint,
        step: impl FnOnce() -> StepSeed,
    ) -> Result<(), CheckerError> {
        let mut shard = self.shards[concrete.shard(SHARDS)].lock();
        if shard.parents.contains_key(&concrete) {
            return Ok(());
        }
        if let Some(cold) = &self.cold {
            if cold.parents.lock().contains(concrete.as_u128())? {
                return Ok(());
            }
        }
        shard.parents.insert(concrete, (parent, step()));
        Ok(())
    }

    /// Symmetry-reduced [`SharedTable::admit_sleep`]; the revisit rule
    /// of [`AdmitSleepSym`], decided entirely under the key shard's
    /// lock. `New` and sibling-`Widen` outcomes additionally record a
    /// parent edge for the concrete state (first edge wins) before
    /// returning, under the concrete fingerprint's shard lock.
    pub(crate) fn admit_sleep_sym(
        &self,
        key: Fingerprint,
        concrete: Fingerprint,
        bytes: impl FnOnce() -> usize,
        sleep: SleepSet,
        parent: Fingerprint,
        step: impl FnOnce() -> StepSeed,
    ) -> Result<AdmitSleepSym, CheckerError> {
        let outcome = {
            let mut shard = self.shards[key.shard(SHARDS)].lock();
            let rep = if shard.visited.contains(&key) {
                Some(shard.reps.get(&key).copied())
            } else {
                self.cold_visited(key)?
            };
            if let Some(rep) = rep {
                let old = shard.sleeps.get(&key).copied().unwrap_or_default();
                if rep == Some(concrete) {
                    // Same concrete state: the classical rule.
                    if old.is_subset_of(sleep) {
                        return Ok(AdmitSleepSym::Covered { merged: false });
                    }
                    let widened = old.intersect(sleep);
                    if widened == SleepSet::empty() {
                        shard.sleeps.remove(&key);
                    } else {
                        shard.sleeps.insert(key, widened);
                    }
                    return Ok(AdmitSleepSym::Widen {
                        sleep: widened,
                        merged: false,
                    });
                }
                // Symmetric sibling: ∅ is the only invariant sleep set.
                if old == SleepSet::empty() {
                    return Ok(AdmitSleepSym::Covered { merged: true });
                }
                shard.sleeps.remove(&key);
                AdmitSleepSym::Widen {
                    sleep: SleepSet::empty(),
                    merged: true,
                }
            } else {
                let reserved = self.unique.fetch_add(1, Ordering::SeqCst);
                if reserved >= self.max {
                    self.unique.fetch_sub(1, Ordering::SeqCst);
                    self.truncated.store(true, Ordering::SeqCst);
                    return Ok(AdmitSleepSym::OverBound);
                }
                shard.visited.insert(key);
                shard.reps.insert(key, concrete);
                if sleep != SleepSet::empty() {
                    shard.sleeps.insert(key, sleep);
                }
                let bytes_len = bytes();
                self.note_hot_insert(&mut shard, key, bytes_len);
                AdmitSleepSym::New
            }
        };
        self.record_parent_edge(concrete, parent, step)?;
        self.maybe_spill()?;
        Ok(outcome)
    }

    /// Retained states across all shards.
    pub(crate) fn unique(&self) -> usize {
        self.unique.load(Ordering::SeqCst)
    }

    /// Canonical-encoding bytes of the retained states.
    pub(crate) fn stored_bytes(&self) -> usize {
        self.stored.load(Ordering::SeqCst)
    }

    /// Whether the state bound dropped any state.
    pub(crate) fn truncated(&self) -> bool {
        self.truncated.load(Ordering::SeqCst)
    }

    /// Walks the parent edges from the initial state to `state` across
    /// both tiers, rendering the stored seeds. Call after the workers
    /// have quiesced; locks one shard per edge.
    pub(crate) fn reconstruct(
        &self,
        mut state: Fingerprint,
        program: &p_semantics::LoweredProgram,
    ) -> Result<Vec<TraceStep>, CheckerError> {
        let mut steps = Vec::new();
        loop {
            {
                let shard = self.shards[state.shard(SHARDS)].lock();
                if let Some((parent, step)) = shard.parents.get(&state) {
                    steps.push(step.render(program));
                    state = *parent;
                    continue;
                }
            }
            let Some(cold) = &self.cold else {
                break;
            };
            let Some(payload) = cold.parents.lock().get(state.as_u128())? else {
                break;
            };
            let (parent, seed) = decode_parent_payload(&payload)?;
            steps.push(seed.render(program));
            state = parent;
        }
        steps.reverse();
        Ok(steps)
    }

    /// Every visited entry and parent record (hot then cold) for
    /// checkpointing. Call only while the workers are quiescent (at the
    /// checkpoint rendezvous or after joining).
    pub(crate) fn snapshot(&self) -> Result<(Vec<VisitedEntry>, Vec<ParentRecord>), CheckerError> {
        let mut visited = Vec::with_capacity(self.unique());
        let mut parents = Vec::new();
        // Sleep sets stay in the shards even for spilled fingerprints;
        // collect them all first so cold entries can look theirs up.
        let mut sleeps: FpHashMap<u64> = FpHashMap::default();
        for shard in &self.shards {
            let shard = shard.lock();
            for (&fp, s) in &shard.sleeps {
                sleeps.insert(fp, s.0);
            }
            for &fp in &shard.visited {
                visited.push(VisitedEntry {
                    fp: fp.as_u128(),
                    sleep: shard.sleeps.get(&fp).map_or(0, |s| s.0),
                    rep: shard.reps.get(&fp).map(|r| r.as_u128()),
                });
            }
            for (child, (parent, seed)) in &shard.parents {
                parents.push((child.as_u128(), parent.as_u128(), seed.clone()));
            }
        }
        if let Some(cold) = &self.cold {
            for (key, payload) in cold.visited.lock().iter_all()? {
                visited.push(VisitedEntry {
                    fp: key,
                    sleep: sleeps
                        .get(&Fingerprint::from_u128(key))
                        .copied()
                        .unwrap_or(0),
                    rep: decode_rep_payload(&payload)?.map(|r| r.as_u128()),
                });
            }
            for (child, payload) in cold.parents.lock().iter_all()? {
                let (parent, seed) = decode_parent_payload(&payload)?;
                parents.push((child, parent.as_u128(), seed));
            }
        }
        Ok((visited, parents))
    }
}

/// The parallel work queue: one deque per worker plus work stealing.
/// Workers push and pop depth-first on their own deque (cache-friendly,
/// like the sequential DFS) and steal the *oldest* entry of another
/// worker's deque when idle — oldest entries sit closest to the root and
/// tend to head the largest unexplored subtrees.
#[derive(Debug)]
pub(crate) struct Frontier<T> {
    queues: Vec<Mutex<VecDeque<T>>>,
    /// Tasks queued or currently being expanded. The exploration is done
    /// when this reaches zero: nothing queued, nothing in flight.
    pending: AtomicUsize,
    stop: AtomicBool,
    /// Checkpoint rendezvous: when set, workers park in
    /// [`Frontier::next`] instead of taking tasks, until cleared.
    pause: AtomicBool,
    /// Workers currently parked at the rendezvous.
    parked: AtomicUsize,
    /// Workers still running their task loop ([`Frontier::retire`]d
    /// workers neither take tasks nor park, so the rendezvous leader
    /// must not wait for them).
    active: AtomicUsize,
}

impl<T> Frontier<T> {
    /// A frontier for `workers` workers, seeded with the root task.
    pub(crate) fn new(workers: usize, root: T) -> Frontier<T> {
        Frontier::from_tasks(workers, vec![root])
    }

    /// A frontier for `workers` workers, seeded with `tasks` dealt
    /// round-robin across the per-worker deques (checkpoint resume).
    pub(crate) fn from_tasks(workers: usize, tasks: Vec<T>) -> Frontier<T> {
        let workers = workers.max(1);
        let queues: Vec<Mutex<VecDeque<T>>> =
            (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
        let pending = tasks.len();
        for (i, task) in tasks.into_iter().enumerate() {
            queues[i % workers].lock().push_back(task);
        }
        Frontier {
            queues,
            pending: AtomicUsize::new(pending),
            stop: AtomicBool::new(false),
            pause: AtomicBool::new(false),
            parked: AtomicUsize::new(0),
            active: AtomicUsize::new(workers),
        }
    }

    /// Enqueues a task on `worker`'s own deque.
    pub(crate) fn push(&self, worker: usize, task: T) {
        self.pending.fetch_add(1, Ordering::SeqCst);
        self.queues[worker].lock().push_back(task);
    }

    /// Takes the next task for `worker`: its own newest entry, else a
    /// steal, else wait for in-flight work to produce some. Returns
    /// `None` when the exploration is finished or stopping.
    pub(crate) fn next(&self, worker: usize) -> Option<T> {
        loop {
            if self.stop.load(Ordering::SeqCst) {
                return None;
            }
            // Park *before* the pending check: a rendezvous must catch
            // idle workers too, and they must stay parked (not exit)
            // until the leader finishes serializing the queues.
            if self.pause.load(Ordering::SeqCst) {
                self.parked.fetch_add(1, Ordering::SeqCst);
                while self.pause.load(Ordering::SeqCst) && !self.stop.load(Ordering::SeqCst) {
                    std::thread::yield_now();
                }
                self.parked.fetch_sub(1, Ordering::SeqCst);
                continue;
            }
            if let Some(task) = self.queues[worker].lock().pop_back() {
                return Some(task);
            }
            for offset in 1..self.queues.len() {
                let victim = (worker + offset) % self.queues.len();
                if let Some(task) = self.queues[victim].lock().pop_front() {
                    return Some(task);
                }
            }
            if self.pending.load(Ordering::SeqCst) == 0 {
                return None;
            }
            std::thread::yield_now();
        }
    }

    /// Marks the calling worker done for good (its loop is exiting);
    /// the rendezvous leader stops waiting for it.
    pub(crate) fn retire(&self) {
        self.active.fetch_sub(1, Ordering::SeqCst);
    }

    /// Starts a rendezvous: workers park at their next
    /// [`Frontier::next`] call until [`Frontier::resume`].
    pub(crate) fn pause_workers(&self) {
        self.pause.store(true, Ordering::SeqCst);
    }

    /// Blocks until every non-retired worker but the caller is parked
    /// (the caller is the rendezvous leader). With the workers parked
    /// the queues are quiescent and `pending` counts exactly the queued
    /// tasks — nothing is in flight.
    pub(crate) fn await_rendezvous(&self) {
        while self.parked.load(Ordering::SeqCst) + 1 < self.active.load(Ordering::SeqCst) {
            std::thread::yield_now();
        }
    }

    /// Ends the rendezvous; parked workers resume taking tasks.
    pub(crate) fn resume_workers(&self) {
        self.pause.store(false, Ordering::SeqCst);
    }

    /// Marks one previously [`Frontier::next`]-ed task fully expanded.
    pub(crate) fn task_done(&self) {
        self.pending.fetch_sub(1, Ordering::SeqCst);
    }

    /// Tasks queued or in flight — the parallel frontier-size gauge.
    #[cfg(feature = "telemetry")]
    pub(crate) fn pending(&self) -> usize {
        self.pending.load(Ordering::SeqCst)
    }

    /// Clones every queued task (per-worker deques front-to-back) for
    /// checkpointing. Call only at a rendezvous, when nothing is in
    /// flight.
    pub(crate) fn snapshot_tasks(&self) -> Vec<T>
    where
        T: Clone,
    {
        let mut tasks = Vec::new();
        for queue in &self.queues {
            tasks.extend(queue.lock().iter().cloned());
        }
        tasks
    }

    /// First-counterexample-wins shutdown: all workers drain on their
    /// next [`Frontier::next`] call.
    pub(crate) fn request_stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }

    /// Whether shutdown was requested.
    #[cfg(test)]
    pub(crate) fn stopping(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p_semantics::MachineId;

    fn fp(n: u32) -> Fingerprint {
        Fingerprint::of(&n.to_le_bytes())
    }

    /// A distinguishable parent edge: a quiescent run of machine `n`.
    /// Rendered steps are told apart by their machine id.
    fn step(n: u32) -> StepSeed {
        StepSeed::test_blocked(MachineId(n))
    }

    /// Any program works for rendering machine-run steps; reconstruction
    /// only needs names for event/machine-type lookups, which quiescent
    /// runs never perform.
    fn program() -> p_semantics::LoweredProgram {
        let mut b = p_ast::ProgramBuilder::new();
        let mut m = b.machine("M");
        m.state("S").entry(p_ast::Stmt::block(vec![]));
        m.finish();
        p_semantics::lower(&b.finish("M")).unwrap()
    }

    #[test]
    fn bounded_set_admits_counts_and_dedups() {
        let mut set = BoundedSet::new(10);
        assert_eq!(set.admit(fp(1), || 4), Admit::New);
        assert_eq!(set.admit(fp(1), || 4), Admit::Seen);
        assert_eq!(set.len(), 1);
        assert_eq!(set.stored_bytes(), 4);
    }

    /// Regression for the `max_states` truncation bug: a state dropped
    /// for exceeding the bound must NOT be marked visited (the old code
    /// inserted the hash before the bound check, permanently hiding the
    /// state), and must not be counted in `unique_states`/`stored_bytes`.
    #[test]
    fn over_bound_state_is_not_poisoned_as_visited() {
        let mut set = BoundedSet::new(2);
        assert_eq!(set.admit(fp(1), || 10), Admit::New);
        assert_eq!(set.admit(fp(2), || 10), Admit::New);
        assert_eq!(set.admit(fp(3), || 10), Admit::OverBound);
        assert!(!set.contains(fp(3)), "dropped state must stay unvisited");
        assert_eq!(set.len(), 2, "only retained states are counted");
        assert_eq!(set.stored_bytes(), 20, "dropped bytes are not accounted");
        // Duplicates of retained states still dedup at the full bound.
        assert_eq!(set.admit(fp(2), || 10), Admit::Seen);
    }

    fn sleep(ids: &[u32]) -> SleepSet {
        let mut s = SleepSet::empty();
        for &i in ids {
            s.insert(MachineId(i));
        }
        s
    }

    /// The sleep-set revisit rule: covered iff stored ⊆ offered, else
    /// widen to the intersection; the stored set strictly shrinks until
    /// the state counts as fully explored.
    #[test]
    fn bounded_set_sleep_covered_and_widen() {
        let mut set = BoundedSet::new(10);
        assert_eq!(
            set.admit_sleep(fp(1), || 4, sleep(&[1, 2])),
            AdmitSleep::New
        );
        assert_eq!(
            set.admit_sleep(fp(1), || 4, sleep(&[1, 2])),
            AdmitSleep::Covered
        );
        // Stored {1,2} ⊄ offered {1}: re-explore with the intersection.
        assert_eq!(
            set.admit_sleep(fp(1), || 4, sleep(&[1])),
            AdmitSleep::Widen(sleep(&[1]))
        );
        // Stored {1} ⊄ offered {3}: widen to ∅ — fully explored.
        assert_eq!(
            set.admit_sleep(fp(1), || 4, sleep(&[3])),
            AdmitSleep::Widen(SleepSet::empty())
        );
        assert_eq!(
            set.admit_sleep(fp(1), || 4, sleep(&[7])),
            AdmitSleep::Covered,
            "empty stored sleep covers every offer"
        );
        // The state is retained and counted exactly once throughout.
        assert_eq!(set.len(), 1);
        assert_eq!(set.stored_bytes(), 4);
        // The bound still holds for fresh states.
        let mut tiny = BoundedSet::new(1);
        assert_eq!(tiny.admit_sleep(fp(1), || 4, sleep(&[])), AdmitSleep::New);
        assert_eq!(
            tiny.admit_sleep(fp(2), || 4, sleep(&[])),
            AdmitSleep::OverBound
        );
    }

    #[test]
    fn shared_table_sleep_covered_and_widen() {
        let table = SharedTable::new(usize::MAX);
        table.admit_root(fp(0), || 0);
        // Roots are stored with an empty sleep set: always covered.
        assert_eq!(
            table
                .admit_sleep(fp(0), || 0, sleep(&[5]), fp(0), || step(9))
                .unwrap(),
            AdmitSleep::Covered
        );
        assert_eq!(
            table
                .admit_sleep(fp(1), || 8, sleep(&[1, 2]), fp(0), || step(1))
                .unwrap(),
            AdmitSleep::New
        );
        assert_eq!(
            table
                .admit_sleep(fp(1), || 8, sleep(&[2, 3]), fp(0), || step(1))
                .unwrap(),
            AdmitSleep::Widen(sleep(&[2]))
        );
        assert_eq!(
            table
                .admit_sleep(fp(1), || 8, sleep(&[2, 4]), fp(0), || step(1))
                .unwrap(),
            AdmitSleep::Covered
        );
        // Widening never re-counts the state.
        assert_eq!(table.unique(), 2);
        assert_eq!(table.stored_bytes(), 8);
        // Parent edges recorded on first admit survive widening.
        let trace = table.reconstruct(fp(1), &program()).unwrap();
        assert_eq!(trace.len(), 1);
        assert_eq!(trace[0].machine, MachineId(1));
        assert_eq!(trace[0].summary, "ran to quiescence");
    }

    /// Symmetry-mode admits: the first concrete state of an orbit is the
    /// representative; re-offers of it are plain dedups, offers of a
    /// different concrete sibling are merges.
    #[test]
    fn bounded_set_admit_sym_tells_merges_from_dedups() {
        let mut set = BoundedSet::new(10);
        // Orbit keyed fp(100); representative fp(1).
        assert_eq!(set.admit_sym(fp(100), fp(1), || 4), AdmitSym::New);
        assert_eq!(
            set.admit_sym(fp(100), fp(1), || 4),
            AdmitSym::Seen { merged: false }
        );
        assert_eq!(
            set.admit_sym(fp(100), fp(2), || 4),
            AdmitSym::Seen { merged: true }
        );
        assert_eq!(set.len(), 1, "one orbit, one counted state");
        // The bound applies per orbit.
        let mut tiny = BoundedSet::new(1);
        assert_eq!(tiny.admit_sym(fp(100), fp(1), || 4), AdmitSym::New);
        assert_eq!(tiny.admit_sym(fp(200), fp(2), || 4), AdmitSym::OverBound);
        assert_eq!(
            tiny.admit_sym(fp(100), fp(3), || 4),
            AdmitSym::Seen { merged: true }
        );
    }

    /// The symmetry×POR revisit rule: the classical subset/intersection
    /// rule for the representative itself; for a symmetric sibling,
    /// covered iff the stored sleep is ∅, else one re-expansion with ∅.
    #[test]
    fn bounded_set_admit_sleep_sym_sibling_rule() {
        let mut set = BoundedSet::new(10);
        assert_eq!(
            set.admit_sleep_sym(fp(100), fp(1), || 4, sleep(&[1, 2])),
            AdmitSleepSym::New
        );
        // Representative: classical widening still applies.
        assert_eq!(
            set.admit_sleep_sym(fp(100), fp(1), || 4, sleep(&[2, 3])),
            AdmitSleepSym::Widen {
                sleep: sleep(&[2]),
                merged: false
            }
        );
        // Sibling with stored sleep {2} ≠ ∅: re-expand once with ∅.
        assert_eq!(
            set.admit_sleep_sym(fp(100), fp(9), || 4, sleep(&[1])),
            AdmitSleepSym::Widen {
                sleep: SleepSet::empty(),
                merged: true
            }
        );
        // Orbit now fully explored: every offer (sibling or not) covers.
        assert_eq!(
            set.admit_sleep_sym(fp(100), fp(9), || 4, sleep(&[5])),
            AdmitSleepSym::Covered { merged: true }
        );
        assert_eq!(
            set.admit_sleep_sym(fp(100), fp(1), || 4, sleep(&[5])),
            AdmitSleepSym::Covered { merged: false }
        );
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn shared_table_admit_sym_records_concrete_parent_edges() {
        let table = SharedTable::new(usize::MAX);
        table.admit_root_sym(fp(100), fp(0), || 0);
        // New orbit reached from concrete fp(0) by step 1.
        assert_eq!(
            table
                .admit_sym(fp(200), fp(1), || 8, fp(0), || step(1))
                .unwrap(),
            AdmitSym::New
        );
        assert_eq!(
            table
                .admit_sym(fp(200), fp(1), || 8, fp(0), || step(7))
                .unwrap(),
            AdmitSym::Seen { merged: false }
        );
        assert_eq!(
            table
                .admit_sym(fp(200), fp(2), || 8, fp(0), || step(7))
                .unwrap(),
            AdmitSym::Seen { merged: true }
        );
        assert_eq!(table.unique(), 2);
        assert_eq!(table.stored_bytes(), 8);
        // The trace walks *concrete* fingerprints.
        let trace = table.reconstruct(fp(1), &program()).unwrap();
        let machines: Vec<MachineId> = trace.iter().map(|s| s.machine).collect();
        assert_eq!(machines, [MachineId(1)]);
        assert!(table.reconstruct(fp(2), &program()).unwrap().is_empty());
    }

    #[test]
    fn shared_table_admit_sleep_sym_sibling_gets_an_edge() {
        let table = SharedTable::new(usize::MAX);
        table.admit_root_sym(fp(100), fp(0), || 0);
        assert_eq!(
            table
                .admit_sleep_sym(fp(200), fp(1), || 8, sleep(&[3]), fp(0), || step(1))
                .unwrap(),
            AdmitSleepSym::New
        );
        // Sibling fp(2) while stored sleep {3} ≠ ∅: widen to ∅ and
        // record the sibling's own parent edge so its re-expansion is
        // traceable.
        assert_eq!(
            table
                .admit_sleep_sym(fp(200), fp(2), || 8, sleep(&[4]), fp(1), || step(2))
                .unwrap(),
            AdmitSleepSym::Widen {
                sleep: SleepSet::empty(),
                merged: true
            }
        );
        let trace = table.reconstruct(fp(2), &program()).unwrap();
        let machines: Vec<MachineId> = trace.iter().map(|s| s.machine).collect();
        assert_eq!(machines, [MachineId(1), MachineId(2)]);
        // Fully explored orbit covers everything thereafter.
        assert_eq!(
            table
                .admit_sleep_sym(fp(200), fp(3), || 8, sleep(&[6]), fp(0), || step(3))
                .unwrap(),
            AdmitSleepSym::Covered { merged: true }
        );
        assert_eq!(table.unique(), 2, "siblings never re-count the orbit");
    }

    #[test]
    fn parent_map_reconstructs_in_root_to_leaf_order() {
        let mut parents = ParentMap::new();
        parents.record(fp(2), fp(1), step(1));
        parents.record(fp(3), fp(2), step(2));
        let prog = program();
        let trace = parents.reconstruct(fp(3), &prog);
        let machines: Vec<MachineId> = trace.iter().map(|s| s.machine).collect();
        assert_eq!(machines, [MachineId(1), MachineId(2)]);
        assert!(parents.reconstruct(fp(1), &prog).is_empty());
    }

    #[test]
    fn shared_table_enforces_bound_without_poisoning() {
        let table = SharedTable::new(2);
        table.admit_root(fp(0), || 8);
        assert_eq!(
            table.admit(fp(1), || 8, fp(0), || step(1)).unwrap(),
            Admit::New
        );
        assert_eq!(
            table.admit(fp(2), || 8, fp(0), || step(2)).unwrap(),
            Admit::OverBound
        );
        assert!(table.truncated());
        assert_eq!(table.unique(), 2);
        assert_eq!(table.stored_bytes(), 16);
        // The dropped state was not marked visited.
        assert_eq!(
            table.admit(fp(2), || 8, fp(1), || step(3)).unwrap(),
            Admit::OverBound
        );
        // Retained states still dedup.
        assert_eq!(
            table.admit(fp(1), || 8, fp(0), || step(1)).unwrap(),
            Admit::Seen
        );
    }

    #[test]
    fn shared_table_admits_exactly_once_across_threads() {
        let table = SharedTable::new(usize::MAX);
        table.admit_root(fp(0), || 0);
        let wins = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for n in 1..500u32 {
                        if table.admit(fp(n), || 1, fp(0), || step(0)).unwrap() == Admit::New {
                            wins.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                });
            }
        });
        assert_eq!(wins.load(Ordering::SeqCst), 499);
        assert_eq!(table.unique(), 500);
        assert_eq!(table.stored_bytes(), 499);
    }

    #[test]
    fn shared_table_reconstructs_traces() {
        let table = SharedTable::new(usize::MAX);
        table.admit_root(fp(0), || 0);
        table.admit(fp(1), || 0, fp(0), || step(1)).unwrap();
        table.admit(fp(2), || 0, fp(1), || step(2)).unwrap();
        let trace = table.reconstruct(fp(2), &program()).unwrap();
        let machines: Vec<MachineId> = trace.iter().map(|s| s.machine).collect();
        assert_eq!(machines, [MachineId(1), MachineId(2)]);
    }

    #[test]
    fn frontier_drains_and_terminates() {
        let frontier: Frontier<u32> = Frontier::new(2, 0);
        let seen = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for w in 0..2 {
                let (frontier, seen) = (&frontier, &seen);
                scope.spawn(move || {
                    while let Some(task) = frontier.next(w) {
                        seen.lock().push(task);
                        if task < 10 {
                            frontier.push(w, task * 2 + 1);
                            frontier.push(w, task * 2 + 2);
                        }
                        frontier.task_done();
                    }
                });
            }
        });
        // Binary tree rooted at 0 (children 2n+1, 2n+2), expanded only
        // for n < 10: exactly the nodes 0..=20 get visited.
        let mut tasks = seen.into_inner();
        tasks.sort_unstable();
        assert_eq!(tasks, (0..=20).collect::<Vec<u32>>());
    }

    #[test]
    fn frontier_stop_drains_workers() {
        let frontier: Frontier<u32> = Frontier::new(1, 7);
        frontier.request_stop();
        assert!(frontier.stopping());
        assert_eq!(frontier.next(0), None);
    }

    fn temp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("p-engine-test-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn tiered_set_dedups_across_spill() {
        let dir = temp_dir("tiered-dedup");
        let mut set = TieredSet::with_spill(usize::MAX, &dir, 4).unwrap();
        for n in 0..20u32 {
            assert_eq!(set.admit(fp(n), || 8).unwrap(), Admit::New);
        }
        assert!(
            set.spill_counters().records >= 16,
            "hot cap 4 must have spilled most of 20 states"
        );
        assert_eq!(set.len(), 20);
        // Every state — hot or cold — still dedups exactly.
        for n in 0..20u32 {
            assert_eq!(set.admit(fp(n), || 8).unwrap(), Admit::Seen);
        }
        assert_eq!(set.len(), 20);
        // RAM accounting covers only the hot tier.
        assert!(set.stored_bytes() <= 4 * 8, "spilled bytes must be freed");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Intern-aware accounting invariant: `bytes` closures run only on
    /// the New path, `stored_bytes` is the exact sum of the admitted
    /// *marginal* costs (a machine slot shared between two states is
    /// counted once, by whichever state stored it first), and a spill
    /// frees exactly that sum — keeping `--mem-limit` triggers
    /// byte-accurate.
    #[test]
    fn tiered_spill_keeps_marginal_byte_accounting_exact() {
        use p_ast::{ProgramBuilder, Ty};
        use p_semantics::{lower, Config, SlotInterner, Value};

        let mut b = ProgramBuilder::new();
        b.event("go");
        let mut m = b.machine("M");
        m.var("n", Ty::Int);
        m.state("A");
        m.finish();
        let p = lower(&b.finish("M")).unwrap();

        // Two states over two machines that share slot 0: interning
        // must charge the shared slot's bytes to the first state only.
        let mut a = Config::default();
        a.allocate(&p, p.main);
        a.allocate(&p, p.main);
        let mut c = a.clone();
        c.machine_mut(p_semantics::MachineId(1)).unwrap().locals[0] = Value::Int(7);
        let full_a = a.canonical_bytes().len();
        let overhead = 4 + 2; // length prefix + one tag byte per slot
        let slot_len = (full_a - overhead) / 2;
        let mutated_slot = c.canonical_bytes().len() - overhead - slot_len;

        let dir = temp_dir("tiered-marginal");
        let mut set = TieredSet::with_spill(usize::MAX, &dir, usize::MAX).unwrap();
        let mut interner = SlotInterner::new();
        let fp_a = Fingerprint::from_u128(a.digest());
        let fp_c = Fingerprint::from_u128(c.digest());
        assert_eq!(
            set.admit(fp_a, || a.intern_slots(&mut interner)).unwrap(),
            Admit::New
        );
        // `a`'s two machines are identical, so even the first state pays
        // for that slot once — not the full `canonical_bytes` encoding.
        assert_eq!(set.stored_bytes(), overhead + slot_len);
        assert_eq!(
            set.admit(fp_c, || c.intern_slots(&mut interner)).unwrap(),
            Admit::New
        );
        // Second state pays only its overhead plus the one fresh slot;
        // its copy of slot 0 is shared with (and was paid by) `a`.
        assert_eq!(set.stored_bytes(), 2 * overhead + slot_len + mutated_slot);
        assert!(std::sync::Arc::ptr_eq(
            a.machine_arc(p_semantics::MachineId(0)).unwrap(),
            c.machine_arc(p_semantics::MachineId(0)).unwrap()
        ));
        // A revisit never invokes the closure (marginal bytes would be
        // double-counted otherwise).
        let before = set.stored_bytes();
        assert_eq!(
            set.admit(fp_a, || unreachable!("Seen must not re-account"))
                .unwrap(),
            Admit::Seen
        );
        assert_eq!(set.stored_bytes(), before);
        // Hot budget 1 byte: every admit spills immediately, and each
        // spill must free *exactly* the marginal bytes recorded for the
        // drained states — any mismatch leaves `stored_bytes` drifting
        // away from zero and `--mem-limit` triggers lose accuracy.
        let dir2 = temp_dir("tiered-marginal-spill");
        let mut spilly = TieredSet::with_spill(usize::MAX, &dir2, 1).unwrap();
        for n in 0..4u32 {
            assert_eq!(spilly.admit(fp(n), || 10).unwrap(), Admit::New);
            assert_eq!(spilly.stored_bytes(), 0, "spill freed the exact lens");
        }
        assert_eq!(spilly.spill_counters().records, 4);
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&dir2);
    }

    #[test]
    fn tiered_set_respects_bound_across_tiers() {
        let dir = temp_dir("tiered-bound");
        let mut set = TieredSet::with_spill(6, &dir, 2).unwrap();
        for n in 0..6u32 {
            assert_eq!(set.admit(fp(n), || 1).unwrap(), Admit::New);
        }
        // max_states counts both tiers, not just the (nearly empty) hot one.
        assert_eq!(set.admit(fp(99), || 1).unwrap(), Admit::OverBound);
        assert_eq!(set.len(), 6);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tiered_set_symmetry_rep_survives_spill() {
        let dir = temp_dir("tiered-sym");
        let mut set = TieredSet::with_spill(usize::MAX, &dir, 2).unwrap();
        assert_eq!(
            set.admit_sym(fp(100), fp(1), || 8).unwrap(),
            AdmitSym::New,
            "first concrete state of the orbit wins"
        );
        // Force the orbit key onto disk.
        for n in 0..8u32 {
            set.admit(fp(n), || 8).unwrap();
        }
        assert_eq!(
            set.admit_sym(fp(100), fp(1), || 8).unwrap(),
            AdmitSym::Seen { merged: false },
            "the representative itself is not a merge, even spilled"
        );
        assert_eq!(
            set.admit_sym(fp(100), fp(2), || 8).unwrap(),
            AdmitSym::Seen { merged: true },
            "a symmetric sibling merges against the spilled representative"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tiered_set_sleep_rule_runs_on_cold_states() {
        let dir = temp_dir("tiered-sleep");
        let mut set = TieredSet::with_spill(usize::MAX, &dir, 2).unwrap();
        assert_eq!(
            set.admit_sleep(fp(1), || 8, sleep(&[1, 2])).unwrap(),
            AdmitSleep::New
        );
        for n in 10..18u32 {
            set.admit(fp(n), || 8).unwrap();
        }
        assert!(set.spill_counters().records > 0);
        // fp(1) now lives on disk but its sleep set stayed in RAM: the
        // POR revisit rule must still widen, not re-admit.
        assert_eq!(
            set.admit_sleep(fp(1), || 8, sleep(&[2, 3])).unwrap(),
            AdmitSleep::Widen(sleep(&[2]))
        );
        assert_eq!(
            set.admit_sleep(fp(1), || 8, sleep(&[2, 4])).unwrap(),
            AdmitSleep::Covered
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tiered_parents_reconstruct_across_spill() {
        let dir = temp_dir("tiered-parents");
        let mut parents = TieredParents::with_spill(&dir, 2).unwrap();
        for n in 1..10u32 {
            parents.record(fp(n), fp(n - 1), step(n)).unwrap();
        }
        assert!(
            parents.spill_counters().records >= 6,
            "hot cap 2 must spill most of the chain"
        );
        let trace = parents.reconstruct(fp(9), &program()).unwrap();
        let machines: Vec<MachineId> = trace.iter().map(|s| s.machine).collect();
        let expected: Vec<MachineId> = (1..10).map(MachineId).collect();
        assert_eq!(machines, expected, "edges across both tiers, in order");
        // First edge wins across tiers: fp(5)'s edge is on disk.
        parents.record_if_absent(fp(5), fp(0), || step(99)).unwrap();
        let trace = parents.reconstruct(fp(5), &program()).unwrap();
        assert_eq!(trace.len(), 5, "spilled edge was not overwritten");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tiered_set_snapshot_restore_round_trips() {
        let dir = temp_dir("tiered-snapshot");
        let mut set = TieredSet::with_spill(usize::MAX, &dir, 3).unwrap();
        set.admit_sleep(fp(1), || 8, sleep(&[1])).unwrap();
        set.admit_sym(fp(100), fp(2), || 8).unwrap();
        for n in 10..16u32 {
            set.admit(fp(n), || 8).unwrap();
        }
        let mut entries = set.snapshot().unwrap();
        assert_eq!(entries.len(), set.len());
        entries.sort_by_key(|e| e.fp);

        // Restore RAM-only: everything becomes hot again.
        let mut ram = TieredSet::restore(usize::MAX, None, &entries, 64).unwrap();
        assert_eq!(ram.len(), entries.len());
        assert_eq!(ram.stored_bytes(), 64);
        assert_eq!(ram.admit(fp(10), || 8).unwrap(), Admit::Seen);
        assert_eq!(
            ram.admit_sleep(fp(1), || 8, sleep(&[1])).unwrap(),
            AdmitSleep::Covered,
            "sleep sets survive the round trip"
        );
        assert_eq!(
            ram.admit_sym(fp(100), fp(3), || 8).unwrap(),
            AdmitSym::Seen { merged: true },
            "representatives survive the round trip"
        );

        // Restore with spilling: everything lands cold, same behavior.
        let dir2 = temp_dir("tiered-snapshot-2");
        let mut cold = TieredSet::restore(usize::MAX, Some((&dir2, 4)), &entries, 64).unwrap();
        assert_eq!(cold.len(), entries.len());
        assert_eq!(
            cold.stored_bytes(),
            0,
            "restored-to-disk states hold no RAM"
        );
        assert_eq!(cold.admit(fp(10), || 8).unwrap(), Admit::Seen);
        assert_eq!(
            cold.admit_sleep(fp(1), || 8, sleep(&[1])).unwrap(),
            AdmitSleep::Covered
        );
        assert_eq!(
            cold.admit_sym(fp(100), fp(3), || 8).unwrap(),
            AdmitSym::Seen { merged: true }
        );
        let mut re = cold.snapshot().unwrap();
        re.sort_by_key(|e| e.fp);
        assert_eq!(re, entries, "snapshot → restore → snapshot is lossless");
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&dir2);
    }

    #[test]
    fn shared_table_spills_and_stays_exact_across_threads() {
        let dir = temp_dir("shared-spill");
        let table = SharedTable::with_spill(usize::MAX, &dir, 64).unwrap();
        table.admit_root(fp(0), || 1);
        let wins = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let (table, wins) = (&table, &wins);
                scope.spawn(move || {
                    for n in 1..500u32 {
                        if table.admit(fp(n), || 1, fp(0), || step(n)).unwrap() == Admit::New {
                            wins.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                });
            }
        });
        assert_eq!(
            wins.load(Ordering::SeqCst),
            499,
            "exactly-once across spills"
        );
        assert_eq!(table.unique(), 500);
        let (spilled, bytes, _hits) = table.spill_stats();
        assert!(spilled >= 400, "hot cap 64 must have spilled: {spilled}");
        assert!(bytes > 0);
        // Parent edges spilled alongside: traces stay reconstructible.
        let trace = table.reconstruct(fp(499), &program()).unwrap();
        assert_eq!(trace.len(), 1);
        assert_eq!(trace[0].machine, MachineId(499));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shared_table_snapshot_restore_round_trips() {
        let dir = temp_dir("shared-snapshot");
        let table = SharedTable::with_spill(usize::MAX, &dir, 4).unwrap();
        table.admit_root(fp(0), || 1);
        for n in 1..12u32 {
            table.admit(fp(n), || 1, fp(n - 1), || step(n)).unwrap();
        }
        let (mut visited, mut parents) = table.snapshot().unwrap();
        visited.sort_by_key(|e| e.fp);
        parents.sort_by_key(|&(child, _, _)| child);
        assert_eq!(visited.len(), 12);
        assert_eq!(parents.len(), 11);

        let restored =
            SharedTable::restore(usize::MAX, None, &visited, parents.clone(), 12).unwrap();
        assert_eq!(restored.unique(), 12);
        assert_eq!(restored.stored_bytes(), 12);
        assert_eq!(
            restored.admit(fp(5), || 1, fp(0), || step(99)).unwrap(),
            Admit::Seen
        );
        let trace = restored.reconstruct(fp(11), &program()).unwrap();
        assert_eq!(trace.len(), 11, "full chain survives a RAM restore");

        let dir2 = temp_dir("shared-snapshot-2");
        let respilled =
            SharedTable::restore(usize::MAX, Some((&dir2, 4)), &visited, parents, 12).unwrap();
        assert_eq!(respilled.unique(), 12);
        assert_eq!(respilled.stored_bytes(), 0);
        assert_eq!(
            respilled.admit(fp(5), || 1, fp(0), || step(99)).unwrap(),
            Admit::Seen
        );
        let trace = respilled.reconstruct(fp(11), &program()).unwrap();
        assert_eq!(trace.len(), 11, "full chain survives a disk restore");
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&dir2);
    }

    #[test]
    fn frontier_rendezvous_parks_workers_and_resumes() {
        let frontier: Frontier<u32> = Frontier::from_tasks(3, vec![1, 2, 3, 4, 5]);
        let processed = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            // Two follower workers; the test thread acts as the leader.
            for w in 0..2 {
                let (frontier, processed) = (&frontier, &processed);
                scope.spawn(move || {
                    while let Some(_task) = frontier.next(w) {
                        processed.fetch_add(1, Ordering::SeqCst);
                        frontier.task_done();
                    }
                    frontier.retire();
                });
            }
            frontier.pause_workers();
            frontier.await_rendezvous();
            // Parked workers are not taking tasks: the snapshot is
            // consistent with `pending`.
            let snapshot = frontier.snapshot_tasks();
            assert_eq!(
                snapshot.len() + processed.load(Ordering::SeqCst),
                5,
                "every task is either processed or still queued"
            );
            frontier.resume_workers();
            frontier.retire(); // the leader takes no tasks
        });
        assert_eq!(processed.load(Ordering::SeqCst), 5);
        assert_eq!(frontier.snapshot_tasks().len(), 0);
    }
}
