//! The exploration engine: the frontier/visited/parents bookkeeping
//! shared by every search strategy, in two flavors — single-threaded
//! tables for the sequential explorers, and a sharded concurrent table
//! plus a work-stealing frontier for the parallel engine.
//!
//! Two soundness rules are centralized here so no explorer can get them
//! wrong again:
//!
//! * states are keyed by the collision-safe 128-bit [`Fingerprint`],
//!   never by a 64-bit hash (a 64-bit collision silently prunes a
//!   distinct state *and* corrupts trace reconstruction);
//! * the `max_states` bound is checked **before** a state is marked
//!   visited — a state dropped for exceeding the bound must not be
//!   remembered as explored, and `unique_states`/`stored_bytes` must
//!   count exactly the states actually retained.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use parking_lot::Mutex;

use crate::fingerprint::{Fingerprint, FpHashMap, FpHashSet};
use crate::por::SleepSet;
use crate::trace::{StepSeed, TraceStep};

/// Outcome of offering a state to a visited set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Admit {
    /// Fresh state, now retained; the caller should expand it.
    New,
    /// Already visited; skip.
    Seen,
    /// The state bound is full. The state is **not** marked visited and
    /// not counted — the exploration is truncated, not misled.
    OverBound,
}

/// Outcome of offering a state *with a sleep set* to a visited set
/// (partial-order-reduced exploration).
///
/// With sleep sets, "visited" is not binary: a state explored with sleep
/// set `S` had the runs of machines in `S` pruned, so a later visit with
/// an incomparable sleep set may still owe the state some transitions.
/// The classical sound rule (Godefroid): skip the revisit iff the stored
/// sleep set is a **subset** of the new one (everything the new visit
/// would explore, an earlier visit already did); otherwise re-explore
/// with the **intersection** and store it. The stored set strictly
/// shrinks on every re-exploration, so each state is re-expanded at most
/// 64 times and termination is preserved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AdmitSleep {
    /// Fresh state, now retained; expand it with the offered sleep set.
    New,
    /// Already explored with a sleep set ⊆ the offered one; skip.
    Covered,
    /// Already explored, but only with an incomparable sleep set:
    /// re-expand with the carried (intersected) sleep set. The state is
    /// *not* re-counted; diagnostics for it were already noted.
    Widen(SleepSet),
    /// The state bound is full (see [`Admit::OverBound`]).
    OverBound,
}

/// [`Admit`] for symmetry-reduced exploration, where the visited set is
/// keyed by *canonical* fingerprints while traces and tasks stay
/// concrete. `merged` distinguishes a re-derivation of the exact stored
/// state from a merge with a symmetric sibling (a different concrete
/// state in the same orbit) — the quantity `symmetry_merges` counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AdmitSym {
    /// Fresh orbit, now retained; expand this concrete representative.
    New,
    /// The orbit was already visited.
    Seen {
        /// Whether the stored representative is a *different* concrete
        /// state (a genuine symmetry merge, not a plain dedup).
        merged: bool,
    },
    /// The state bound is full (see [`Admit::OverBound`]).
    OverBound,
}

/// [`AdmitSleep`] for symmetry-reduced POR exploration.
///
/// Sleep sets name concrete machine ids, but the visited set is keyed
/// per orbit, so the classical subset/intersection rule only applies
/// when the offer's concrete state *is* the stored representative. For
/// a symmetric sibling the permutation relating the two is unknown
/// here, and the only sleep set invariant under every permutation is ∅:
///
/// * stored sleep = ∅ — the representative was fully explored, and by
///   symmetry so is every sibling: `Covered`;
/// * stored sleep ≠ ∅ — the representative's expansion pruned some
///   machines; the sibling must be re-expanded with ∅, and ∅ becomes
///   the stored sleep (`Widen`). The stored set still only ever
///   shrinks, so termination is preserved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AdmitSleepSym {
    /// Fresh orbit; expand this concrete representative with the
    /// offered sleep set.
    New,
    /// Covered by an earlier exploration of the orbit.
    Covered {
        /// Whether coverage came from a symmetric sibling.
        merged: bool,
    },
    /// Re-expand with `sleep`. When `merged`, the offer's concrete
    /// state differs from the stored representative and `sleep` is ∅;
    /// the caller must ensure the concrete state has a parent edge
    /// before expanding it (its orbit's edge belongs to the
    /// representative).
    Widen {
        /// The sleep set to re-expand with (now also stored).
        sleep: SleepSet,
        /// Whether this revisit crossed to a symmetric sibling.
        merged: bool,
    },
    /// The state bound is full (see [`Admit::OverBound`]).
    OverBound,
}

/// A visited set with a state bound, counting only retained states.
#[derive(Debug)]
pub(crate) struct BoundedSet {
    seen: FpHashSet,
    /// Sleep set each state was last explored with. Absent entry = empty
    /// sleep set (fully explored) — the common case stays out of the map.
    sleeps: FpHashMap<SleepSet>,
    /// Concrete representative first admitted for each canonical key
    /// (symmetry mode only; empty otherwise).
    reps: FpHashMap<Fingerprint>,
    stored_bytes: usize,
    max: usize,
}

impl BoundedSet {
    /// An empty set admitting at most `max` states (at least one, so the
    /// initial state is always representable).
    pub(crate) fn new(max: usize) -> BoundedSet {
        BoundedSet {
            seen: FpHashSet::default(),
            sleeps: FpHashMap::default(),
            reps: FpHashMap::default(),
            stored_bytes: 0,
            max: max.max(1),
        }
    }

    /// An unbounded set (for node spaces whose size is already bounded
    /// by a bounded configuration space times a finite annotation).
    pub(crate) fn unbounded() -> BoundedSet {
        BoundedSet::new(usize::MAX)
    }

    /// Offers a state; `bytes_len` is the length of its canonical
    /// encoding, accounted only when the state is retained.
    pub(crate) fn admit(&mut self, fp: Fingerprint, bytes_len: usize) -> Admit {
        // Below the bound (the overwhelmingly common case) a single
        // `insert` answers New-vs-Seen in one lookup. At the bound, fall
        // back to `contains` so a dropped state is never marked visited.
        if self.seen.len() >= self.max {
            if self.seen.contains(&fp) {
                return Admit::Seen;
            }
            return Admit::OverBound;
        }
        if self.seen.insert(fp) {
            self.stored_bytes += bytes_len;
            Admit::New
        } else {
            Admit::Seen
        }
    }

    /// Sleep-set-aware [`BoundedSet::admit`]; see [`AdmitSleep`] for the
    /// revisit rule.
    pub(crate) fn admit_sleep(
        &mut self,
        fp: Fingerprint,
        bytes_len: usize,
        sleep: SleepSet,
    ) -> AdmitSleep {
        // Mirror [`BoundedSet::admit`]: one lookup below the bound.
        if self.seen.len() < self.max {
            if self.seen.insert(fp) {
                if sleep != SleepSet::empty() {
                    self.sleeps.insert(fp, sleep);
                }
                self.stored_bytes += bytes_len;
                return AdmitSleep::New;
            }
        } else if !self.seen.contains(&fp) {
            return AdmitSleep::OverBound;
        }
        let old = self.sleeps.get(&fp).copied().unwrap_or_default();
        if old.is_subset_of(sleep) {
            return AdmitSleep::Covered;
        }
        let widened = old.intersect(sleep);
        if widened == SleepSet::empty() {
            self.sleeps.remove(&fp);
        } else {
            self.sleeps.insert(fp, widened);
        }
        AdmitSleep::Widen(widened)
    }

    /// Symmetry-reduced [`BoundedSet::admit`]: the visited set is keyed
    /// by the canonical fingerprint `key`, and the first `concrete`
    /// fingerprint admitted for a key is remembered as the orbit's
    /// representative so later offers can tell plain dedups from
    /// symmetry merges.
    pub(crate) fn admit_sym(
        &mut self,
        key: Fingerprint,
        concrete: Fingerprint,
        bytes_len: usize,
    ) -> AdmitSym {
        match self.admit(key, bytes_len) {
            Admit::New => {
                self.reps.insert(key, concrete);
                AdmitSym::New
            }
            Admit::Seen => AdmitSym::Seen {
                merged: self.reps.get(&key) != Some(&concrete),
            },
            Admit::OverBound => AdmitSym::OverBound,
        }
    }

    /// Symmetry-reduced [`BoundedSet::admit_sleep`]; see
    /// [`AdmitSleepSym`] for the revisit rule.
    pub(crate) fn admit_sleep_sym(
        &mut self,
        key: Fingerprint,
        concrete: Fingerprint,
        bytes_len: usize,
        sleep: SleepSet,
    ) -> AdmitSleepSym {
        if self.seen.len() < self.max {
            if self.seen.insert(key) {
                self.reps.insert(key, concrete);
                if sleep != SleepSet::empty() {
                    self.sleeps.insert(key, sleep);
                }
                self.stored_bytes += bytes_len;
                return AdmitSleepSym::New;
            }
        } else if !self.seen.contains(&key) {
            return AdmitSleepSym::OverBound;
        }
        let old = self.sleeps.get(&key).copied().unwrap_or_default();
        if self.reps.get(&key) == Some(&concrete) {
            // Same concrete state: the classical Godefroid rule.
            if old.is_subset_of(sleep) {
                return AdmitSleepSym::Covered { merged: false };
            }
            let widened = old.intersect(sleep);
            if widened == SleepSet::empty() {
                self.sleeps.remove(&key);
            } else {
                self.sleeps.insert(key, widened);
            }
            return AdmitSleepSym::Widen {
                sleep: widened,
                merged: false,
            };
        }
        // Symmetric sibling: only ∅ is permutation-invariant.
        if old == SleepSet::empty() {
            return AdmitSleepSym::Covered { merged: true };
        }
        self.sleeps.remove(&key);
        AdmitSleepSym::Widen {
            sleep: SleepSet::empty(),
            merged: true,
        }
    }

    /// Whether `fp` is retained as visited.
    #[cfg(test)]
    pub(crate) fn contains(&self, fp: Fingerprint) -> bool {
        self.seen.contains(&fp)
    }

    /// Retained states.
    pub(crate) fn len(&self) -> usize {
        self.seen.len()
    }

    /// Canonical-encoding bytes of the retained states.
    pub(crate) fn stored_bytes(&self) -> usize {
        self.stored_bytes
    }
}

/// Shared additive totals for the parallel engine.
///
/// Workers keep cheap thread-local [`crate::ExplorationStats`] and
/// *flush deltas* here — once per expanded task and unconditionally on
/// exit — so the final totals are exact regardless of how a worker
/// leaves its loop (frontier drained, counterexample found elsewhere,
/// or the worker found the violation itself and broke out mid-task).
/// Reading these during the run gives monotone, slightly-stale values
/// suitable for progress snapshots.
#[derive(Debug, Default)]
pub(crate) struct SharedCounters {
    transitions: AtomicUsize,
    dedup_hits: AtomicUsize,
    sleep_pruned: AtomicUsize,
    quiescent_states: AtomicUsize,
    stuck_states: AtomicUsize,
    symmetry_merges: AtomicUsize,
    max_depth: AtomicUsize,
    max_queue_seen: AtomicUsize,
}

impl SharedCounters {
    /// Folds the delta between a worker's current local stats and the
    /// portion it already flushed into the shared totals, then advances
    /// the flushed watermark. Additive counters add their delta; maxima
    /// race via `fetch_max`.
    pub(crate) fn flush(
        &self,
        local: &crate::ExplorationStats,
        flushed: &mut crate::ExplorationStats,
    ) {
        let add = |cell: &AtomicUsize, now: usize, before: usize| {
            if now > before {
                cell.fetch_add(now - before, Ordering::Relaxed);
            }
        };
        add(&self.transitions, local.transitions, flushed.transitions);
        add(&self.dedup_hits, local.dedup_hits, flushed.dedup_hits);
        add(&self.sleep_pruned, local.sleep_pruned, flushed.sleep_pruned);
        add(
            &self.quiescent_states,
            local.quiescent_states,
            flushed.quiescent_states,
        );
        add(&self.stuck_states, local.stuck_states, flushed.stuck_states);
        add(
            &self.symmetry_merges,
            local.symmetry_merges,
            flushed.symmetry_merges,
        );
        self.max_depth.fetch_max(local.max_depth, Ordering::Relaxed);
        self.max_queue_seen
            .fetch_max(local.max_queue_seen, Ordering::Relaxed);
        *flushed = local.clone();
    }

    /// The flushed totals as an [`crate::ExplorationStats`] skeleton
    /// (state/byte counts and duration are owned elsewhere).
    pub(crate) fn totals(&self) -> crate::ExplorationStats {
        crate::ExplorationStats {
            transitions: self.transitions.load(Ordering::Relaxed),
            dedup_hits: self.dedup_hits.load(Ordering::Relaxed),
            sleep_pruned: self.sleep_pruned.load(Ordering::Relaxed),
            quiescent_states: self.quiescent_states.load(Ordering::Relaxed),
            stuck_states: self.stuck_states.load(Ordering::Relaxed),
            symmetry_merges: self.symmetry_merges.load(Ordering::Relaxed),
            max_depth: self.max_depth.load(Ordering::Relaxed),
            max_queue_seen: self.max_queue_seen.load(Ordering::Relaxed),
            ..crate::ExplorationStats::default()
        }
    }
}

/// `child → (parent, step)` edges for counterexample reconstruction,
/// keyed by fingerprint.
#[derive(Debug, Default)]
pub(crate) struct ParentMap {
    map: FpHashMap<(Fingerprint, StepSeed)>,
}

impl ParentMap {
    pub(crate) fn new() -> ParentMap {
        ParentMap::default()
    }

    /// Records how `child` was first reached.
    pub(crate) fn record(&mut self, child: Fingerprint, parent: Fingerprint, step: StepSeed) {
        self.map.insert(child, (parent, step));
    }

    /// Records an edge only if `child` has none yet. Used by the
    /// symmetry engine when it re-expands a concrete sibling of an
    /// already-visited orbit: keeping the *first* edge preserves the
    /// acyclicity invariant (a child's recorded parent was admitted
    /// strictly earlier), which a later overwrite could break.
    pub(crate) fn record_if_absent(
        &mut self,
        child: Fingerprint,
        parent: Fingerprint,
        step: impl FnOnce() -> StepSeed,
    ) {
        self.map.entry(child).or_insert_with(|| (parent, step()));
    }

    /// Walks the parent edges from the initial state to `state`,
    /// rendering the stored seeds into human-readable steps.
    pub(crate) fn reconstruct(
        &self,
        mut state: Fingerprint,
        program: &p_semantics::LoweredProgram,
    ) -> Vec<TraceStep> {
        let mut steps = Vec::new();
        while let Some((parent, step)) = self.map.get(&state) {
            steps.push(step.render(program));
            state = *parent;
        }
        steps.reverse();
        steps
    }
}

/// Shard count of [`SharedTable`]. 64 shards keep lock contention low
/// for any plausible worker count while costing only 64 mutexes.
const SHARDS: usize = 64;

/// The concurrent visited set + parent map of the parallel engine:
/// sharded by fingerprint prefix, one mutex per shard, with global
/// retained-state accounting kept in atomics so the `max_states` bound
/// holds across shards.
#[derive(Debug)]
pub(crate) struct SharedTable {
    shards: Vec<Mutex<Shard>>,
    unique: AtomicUsize,
    stored: AtomicUsize,
    truncated: AtomicBool,
    max: usize,
}

#[derive(Debug, Default)]
struct Shard {
    visited: FpHashSet,
    parents: FpHashMap<(Fingerprint, StepSeed)>,
    /// Sleep set each state was last explored with (absent = empty).
    sleeps: FpHashMap<SleepSet>,
    /// Concrete representative per canonical key (symmetry mode only).
    reps: FpHashMap<Fingerprint>,
}

impl SharedTable {
    /// An empty table admitting at most `max` states.
    pub(crate) fn new(max: usize) -> SharedTable {
        SharedTable {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            unique: AtomicUsize::new(0),
            stored: AtomicUsize::new(0),
            truncated: AtomicBool::new(false),
            max: max.max(1),
        }
    }

    /// Admits the initial state (no parent edge).
    pub(crate) fn admit_root(&self, fp: Fingerprint, bytes_len: usize) {
        let mut shard = self.shards[fp.shard(SHARDS)].lock();
        shard.visited.insert(fp);
        self.unique.fetch_add(1, Ordering::SeqCst);
        self.stored.fetch_add(bytes_len, Ordering::Relaxed);
    }

    /// [`SharedTable::admit_root`] keyed canonically, remembering the
    /// initial state's concrete fingerprint as its orbit representative.
    pub(crate) fn admit_root_sym(&self, key: Fingerprint, concrete: Fingerprint, bytes_len: usize) {
        let mut shard = self.shards[key.shard(SHARDS)].lock();
        shard.visited.insert(key);
        shard.reps.insert(key, concrete);
        self.unique.fetch_add(1, Ordering::SeqCst);
        self.stored.fetch_add(bytes_len, Ordering::Relaxed);
    }

    /// Offers a successor reached from `parent` by the step `step()`
    /// builds. Exactly one concurrent caller gets [`Admit::New`] for a
    /// given fingerprint and must expand it; its parent edge is recorded
    /// before `New` is returned, so any later error below this state
    /// reconstructs a complete trace. `step` is a closure so the step
    /// construction (which moves the choice script) is skipped entirely
    /// on the `Seen` fast path — the overwhelming majority of offers.
    pub(crate) fn admit(
        &self,
        fp: Fingerprint,
        bytes_len: usize,
        parent: Fingerprint,
        step: impl FnOnce() -> StepSeed,
    ) -> Admit {
        let mut shard = self.shards[fp.shard(SHARDS)].lock();
        if shard.visited.contains(&fp) {
            return Admit::Seen;
        }
        // Reserve a slot under the global bound; undo on overflow. The
        // shard lock is held, so a concurrent duplicate of *this* state
        // cannot slip in between the check and the insert.
        let reserved = self.unique.fetch_add(1, Ordering::SeqCst);
        if reserved >= self.max {
            self.unique.fetch_sub(1, Ordering::SeqCst);
            self.truncated.store(true, Ordering::SeqCst);
            return Admit::OverBound;
        }
        shard.visited.insert(fp);
        shard.parents.insert(fp, (parent, step()));
        self.stored.fetch_add(bytes_len, Ordering::Relaxed);
        Admit::New
    }

    /// Sleep-set-aware [`SharedTable::admit`]; see [`AdmitSleep`] for
    /// the revisit rule. The whole decision happens under the shard
    /// lock, so concurrent offers of the same state serialize and the
    /// stored sleep set only ever shrinks.
    pub(crate) fn admit_sleep(
        &self,
        fp: Fingerprint,
        bytes_len: usize,
        sleep: SleepSet,
        parent: Fingerprint,
        step: impl FnOnce() -> StepSeed,
    ) -> AdmitSleep {
        let mut shard = self.shards[fp.shard(SHARDS)].lock();
        if shard.visited.contains(&fp) {
            let old = shard.sleeps.get(&fp).copied().unwrap_or_default();
            if old.is_subset_of(sleep) {
                return AdmitSleep::Covered;
            }
            let widened = old.intersect(sleep);
            if widened == SleepSet::empty() {
                shard.sleeps.remove(&fp);
            } else {
                shard.sleeps.insert(fp, widened);
            }
            return AdmitSleep::Widen(widened);
        }
        let reserved = self.unique.fetch_add(1, Ordering::SeqCst);
        if reserved >= self.max {
            self.unique.fetch_sub(1, Ordering::SeqCst);
            self.truncated.store(true, Ordering::SeqCst);
            return AdmitSleep::OverBound;
        }
        shard.visited.insert(fp);
        shard.parents.insert(fp, (parent, step()));
        if sleep != SleepSet::empty() {
            shard.sleeps.insert(fp, sleep);
        }
        self.stored.fetch_add(bytes_len, Ordering::Relaxed);
        AdmitSleep::New
    }

    /// Symmetry-reduced [`SharedTable::admit`]: the visited set is keyed
    /// by the canonical fingerprint `key`; parent edges stay keyed by
    /// *concrete* fingerprints (they live in the concrete fingerprint's
    /// shard, taken after the key shard is released — the two locks are
    /// never nested, so there is no deadlock). The winner's edge is
    /// recorded before `New` returns, so any task ever pushed has a
    /// fully reconstructible trace.
    pub(crate) fn admit_sym(
        &self,
        key: Fingerprint,
        concrete: Fingerprint,
        bytes_len: usize,
        parent: Fingerprint,
        step: impl FnOnce() -> StepSeed,
    ) -> AdmitSym {
        {
            let mut shard = self.shards[key.shard(SHARDS)].lock();
            if shard.visited.contains(&key) {
                return AdmitSym::Seen {
                    merged: shard.reps.get(&key) != Some(&concrete),
                };
            }
            let reserved = self.unique.fetch_add(1, Ordering::SeqCst);
            if reserved >= self.max {
                self.unique.fetch_sub(1, Ordering::SeqCst);
                self.truncated.store(true, Ordering::SeqCst);
                return AdmitSym::OverBound;
            }
            shard.visited.insert(key);
            shard.reps.insert(key, concrete);
            self.stored.fetch_add(bytes_len, Ordering::Relaxed);
        }
        let mut shard = self.shards[concrete.shard(SHARDS)].lock();
        shard
            .parents
            .entry(concrete)
            .or_insert_with(|| (parent, step()));
        AdmitSym::New
    }

    /// Symmetry-reduced [`SharedTable::admit_sleep`]; the revisit rule
    /// of [`AdmitSleepSym`], decided entirely under the key shard's
    /// lock. `New` and sibling-`Widen` outcomes additionally record a
    /// parent edge for the concrete state (first edge wins) before
    /// returning, under the concrete fingerprint's shard lock.
    pub(crate) fn admit_sleep_sym(
        &self,
        key: Fingerprint,
        concrete: Fingerprint,
        bytes_len: usize,
        sleep: SleepSet,
        parent: Fingerprint,
        step: impl FnOnce() -> StepSeed,
    ) -> AdmitSleepSym {
        let outcome = {
            let mut shard = self.shards[key.shard(SHARDS)].lock();
            if shard.visited.contains(&key) {
                let old = shard.sleeps.get(&key).copied().unwrap_or_default();
                if shard.reps.get(&key) == Some(&concrete) {
                    // Same concrete state: the classical rule.
                    if old.is_subset_of(sleep) {
                        return AdmitSleepSym::Covered { merged: false };
                    }
                    let widened = old.intersect(sleep);
                    if widened == SleepSet::empty() {
                        shard.sleeps.remove(&key);
                    } else {
                        shard.sleeps.insert(key, widened);
                    }
                    return AdmitSleepSym::Widen {
                        sleep: widened,
                        merged: false,
                    };
                }
                // Symmetric sibling: ∅ is the only invariant sleep set.
                if old == SleepSet::empty() {
                    return AdmitSleepSym::Covered { merged: true };
                }
                shard.sleeps.remove(&key);
                AdmitSleepSym::Widen {
                    sleep: SleepSet::empty(),
                    merged: true,
                }
            } else {
                let reserved = self.unique.fetch_add(1, Ordering::SeqCst);
                if reserved >= self.max {
                    self.unique.fetch_sub(1, Ordering::SeqCst);
                    self.truncated.store(true, Ordering::SeqCst);
                    return AdmitSleepSym::OverBound;
                }
                shard.visited.insert(key);
                shard.reps.insert(key, concrete);
                if sleep != SleepSet::empty() {
                    shard.sleeps.insert(key, sleep);
                }
                self.stored.fetch_add(bytes_len, Ordering::Relaxed);
                AdmitSleepSym::New
            }
        };
        let mut shard = self.shards[concrete.shard(SHARDS)].lock();
        shard
            .parents
            .entry(concrete)
            .or_insert_with(|| (parent, step()));
        outcome
    }

    /// Retained states across all shards.
    pub(crate) fn unique(&self) -> usize {
        self.unique.load(Ordering::SeqCst)
    }

    /// Canonical-encoding bytes of the retained states.
    pub(crate) fn stored_bytes(&self) -> usize {
        self.stored.load(Ordering::SeqCst)
    }

    /// Whether the state bound dropped any state.
    pub(crate) fn truncated(&self) -> bool {
        self.truncated.load(Ordering::SeqCst)
    }

    /// Walks the parent edges from the initial state to `state`,
    /// rendering the stored seeds. Call after the workers have quiesced;
    /// locks one shard per edge.
    pub(crate) fn reconstruct(
        &self,
        mut state: Fingerprint,
        program: &p_semantics::LoweredProgram,
    ) -> Vec<TraceStep> {
        let mut steps = Vec::new();
        loop {
            let shard = self.shards[state.shard(SHARDS)].lock();
            match shard.parents.get(&state) {
                None => break,
                Some((parent, step)) => {
                    steps.push(step.render(program));
                    state = *parent;
                }
            }
        }
        steps.reverse();
        steps
    }
}

/// The parallel work queue: one deque per worker plus work stealing.
/// Workers push and pop depth-first on their own deque (cache-friendly,
/// like the sequential DFS) and steal the *oldest* entry of another
/// worker's deque when idle — oldest entries sit closest to the root and
/// tend to head the largest unexplored subtrees.
#[derive(Debug)]
pub(crate) struct Frontier<T> {
    queues: Vec<Mutex<VecDeque<T>>>,
    /// Tasks queued or currently being expanded. The exploration is done
    /// when this reaches zero: nothing queued, nothing in flight.
    pending: AtomicUsize,
    stop: AtomicBool,
}

impl<T> Frontier<T> {
    /// A frontier for `workers` workers, seeded with the root task.
    pub(crate) fn new(workers: usize, root: T) -> Frontier<T> {
        let queues: Vec<Mutex<VecDeque<T>>> = (0..workers.max(1))
            .map(|_| Mutex::new(VecDeque::new()))
            .collect();
        queues[0].lock().push_back(root);
        Frontier {
            queues,
            pending: AtomicUsize::new(1),
            stop: AtomicBool::new(false),
        }
    }

    /// Enqueues a task on `worker`'s own deque.
    pub(crate) fn push(&self, worker: usize, task: T) {
        self.pending.fetch_add(1, Ordering::SeqCst);
        self.queues[worker].lock().push_back(task);
    }

    /// Takes the next task for `worker`: its own newest entry, else a
    /// steal, else wait for in-flight work to produce some. Returns
    /// `None` when the exploration is finished or stopping.
    pub(crate) fn next(&self, worker: usize) -> Option<T> {
        loop {
            if self.stop.load(Ordering::SeqCst) {
                return None;
            }
            if let Some(task) = self.queues[worker].lock().pop_back() {
                return Some(task);
            }
            for offset in 1..self.queues.len() {
                let victim = (worker + offset) % self.queues.len();
                if let Some(task) = self.queues[victim].lock().pop_front() {
                    return Some(task);
                }
            }
            if self.pending.load(Ordering::SeqCst) == 0 {
                return None;
            }
            std::thread::yield_now();
        }
    }

    /// Marks one previously [`Frontier::next`]-ed task fully expanded.
    pub(crate) fn task_done(&self) {
        self.pending.fetch_sub(1, Ordering::SeqCst);
    }

    /// Tasks queued or in flight — the parallel frontier-size gauge.
    #[cfg(feature = "telemetry")]
    pub(crate) fn pending(&self) -> usize {
        self.pending.load(Ordering::SeqCst)
    }

    /// First-counterexample-wins shutdown: all workers drain on their
    /// next [`Frontier::next`] call.
    pub(crate) fn request_stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }

    /// Whether shutdown was requested.
    #[cfg(test)]
    pub(crate) fn stopping(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p_semantics::MachineId;

    fn fp(n: u32) -> Fingerprint {
        Fingerprint::of(&n.to_le_bytes())
    }

    /// A distinguishable parent edge: a quiescent run of machine `n`.
    /// Rendered steps are told apart by their machine id.
    fn step(n: u32) -> StepSeed {
        StepSeed::test_blocked(MachineId(n))
    }

    /// Any program works for rendering machine-run steps; reconstruction
    /// only needs names for event/machine-type lookups, which quiescent
    /// runs never perform.
    fn program() -> p_semantics::LoweredProgram {
        let mut b = p_ast::ProgramBuilder::new();
        let mut m = b.machine("M");
        m.state("S").entry(p_ast::Stmt::block(vec![]));
        m.finish();
        p_semantics::lower(&b.finish("M")).unwrap()
    }

    #[test]
    fn bounded_set_admits_counts_and_dedups() {
        let mut set = BoundedSet::new(10);
        assert_eq!(set.admit(fp(1), 4), Admit::New);
        assert_eq!(set.admit(fp(1), 4), Admit::Seen);
        assert_eq!(set.len(), 1);
        assert_eq!(set.stored_bytes(), 4);
    }

    /// Regression for the `max_states` truncation bug: a state dropped
    /// for exceeding the bound must NOT be marked visited (the old code
    /// inserted the hash before the bound check, permanently hiding the
    /// state), and must not be counted in `unique_states`/`stored_bytes`.
    #[test]
    fn over_bound_state_is_not_poisoned_as_visited() {
        let mut set = BoundedSet::new(2);
        assert_eq!(set.admit(fp(1), 10), Admit::New);
        assert_eq!(set.admit(fp(2), 10), Admit::New);
        assert_eq!(set.admit(fp(3), 10), Admit::OverBound);
        assert!(!set.contains(fp(3)), "dropped state must stay unvisited");
        assert_eq!(set.len(), 2, "only retained states are counted");
        assert_eq!(set.stored_bytes(), 20, "dropped bytes are not accounted");
        // Duplicates of retained states still dedup at the full bound.
        assert_eq!(set.admit(fp(2), 10), Admit::Seen);
    }

    fn sleep(ids: &[u32]) -> SleepSet {
        let mut s = SleepSet::empty();
        for &i in ids {
            s.insert(MachineId(i));
        }
        s
    }

    /// The sleep-set revisit rule: covered iff stored ⊆ offered, else
    /// widen to the intersection; the stored set strictly shrinks until
    /// the state counts as fully explored.
    #[test]
    fn bounded_set_sleep_covered_and_widen() {
        let mut set = BoundedSet::new(10);
        assert_eq!(set.admit_sleep(fp(1), 4, sleep(&[1, 2])), AdmitSleep::New);
        assert_eq!(
            set.admit_sleep(fp(1), 4, sleep(&[1, 2])),
            AdmitSleep::Covered
        );
        // Stored {1,2} ⊄ offered {1}: re-explore with the intersection.
        assert_eq!(
            set.admit_sleep(fp(1), 4, sleep(&[1])),
            AdmitSleep::Widen(sleep(&[1]))
        );
        // Stored {1} ⊄ offered {3}: widen to ∅ — fully explored.
        assert_eq!(
            set.admit_sleep(fp(1), 4, sleep(&[3])),
            AdmitSleep::Widen(SleepSet::empty())
        );
        assert_eq!(
            set.admit_sleep(fp(1), 4, sleep(&[7])),
            AdmitSleep::Covered,
            "empty stored sleep covers every offer"
        );
        // The state is retained and counted exactly once throughout.
        assert_eq!(set.len(), 1);
        assert_eq!(set.stored_bytes(), 4);
        // The bound still holds for fresh states.
        let mut tiny = BoundedSet::new(1);
        assert_eq!(tiny.admit_sleep(fp(1), 4, sleep(&[])), AdmitSleep::New);
        assert_eq!(
            tiny.admit_sleep(fp(2), 4, sleep(&[])),
            AdmitSleep::OverBound
        );
    }

    #[test]
    fn shared_table_sleep_covered_and_widen() {
        let table = SharedTable::new(usize::MAX);
        table.admit_root(fp(0), 0);
        // Roots are stored with an empty sleep set: always covered.
        assert_eq!(
            table.admit_sleep(fp(0), 0, sleep(&[5]), fp(0), || step(9)),
            AdmitSleep::Covered
        );
        assert_eq!(
            table.admit_sleep(fp(1), 8, sleep(&[1, 2]), fp(0), || step(1)),
            AdmitSleep::New
        );
        assert_eq!(
            table.admit_sleep(fp(1), 8, sleep(&[2, 3]), fp(0), || step(1)),
            AdmitSleep::Widen(sleep(&[2]))
        );
        assert_eq!(
            table.admit_sleep(fp(1), 8, sleep(&[2, 4]), fp(0), || step(1)),
            AdmitSleep::Covered
        );
        // Widening never re-counts the state.
        assert_eq!(table.unique(), 2);
        assert_eq!(table.stored_bytes(), 8);
        // Parent edges recorded on first admit survive widening.
        let trace = table.reconstruct(fp(1), &program());
        assert_eq!(trace.len(), 1);
        assert_eq!(trace[0].machine, MachineId(1));
        assert_eq!(trace[0].summary, "ran to quiescence");
    }

    /// Symmetry-mode admits: the first concrete state of an orbit is the
    /// representative; re-offers of it are plain dedups, offers of a
    /// different concrete sibling are merges.
    #[test]
    fn bounded_set_admit_sym_tells_merges_from_dedups() {
        let mut set = BoundedSet::new(10);
        // Orbit keyed fp(100); representative fp(1).
        assert_eq!(set.admit_sym(fp(100), fp(1), 4), AdmitSym::New);
        assert_eq!(
            set.admit_sym(fp(100), fp(1), 4),
            AdmitSym::Seen { merged: false }
        );
        assert_eq!(
            set.admit_sym(fp(100), fp(2), 4),
            AdmitSym::Seen { merged: true }
        );
        assert_eq!(set.len(), 1, "one orbit, one counted state");
        // The bound applies per orbit.
        let mut tiny = BoundedSet::new(1);
        assert_eq!(tiny.admit_sym(fp(100), fp(1), 4), AdmitSym::New);
        assert_eq!(tiny.admit_sym(fp(200), fp(2), 4), AdmitSym::OverBound);
        assert_eq!(
            tiny.admit_sym(fp(100), fp(3), 4),
            AdmitSym::Seen { merged: true }
        );
    }

    /// The symmetry×POR revisit rule: the classical subset/intersection
    /// rule for the representative itself; for a symmetric sibling,
    /// covered iff the stored sleep is ∅, else one re-expansion with ∅.
    #[test]
    fn bounded_set_admit_sleep_sym_sibling_rule() {
        let mut set = BoundedSet::new(10);
        assert_eq!(
            set.admit_sleep_sym(fp(100), fp(1), 4, sleep(&[1, 2])),
            AdmitSleepSym::New
        );
        // Representative: classical widening still applies.
        assert_eq!(
            set.admit_sleep_sym(fp(100), fp(1), 4, sleep(&[2, 3])),
            AdmitSleepSym::Widen {
                sleep: sleep(&[2]),
                merged: false
            }
        );
        // Sibling with stored sleep {2} ≠ ∅: re-expand once with ∅.
        assert_eq!(
            set.admit_sleep_sym(fp(100), fp(9), 4, sleep(&[1])),
            AdmitSleepSym::Widen {
                sleep: SleepSet::empty(),
                merged: true
            }
        );
        // Orbit now fully explored: every offer (sibling or not) covers.
        assert_eq!(
            set.admit_sleep_sym(fp(100), fp(9), 4, sleep(&[5])),
            AdmitSleepSym::Covered { merged: true }
        );
        assert_eq!(
            set.admit_sleep_sym(fp(100), fp(1), 4, sleep(&[5])),
            AdmitSleepSym::Covered { merged: false }
        );
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn shared_table_admit_sym_records_concrete_parent_edges() {
        let table = SharedTable::new(usize::MAX);
        table.admit_root_sym(fp(100), fp(0), 0);
        // New orbit reached from concrete fp(0) by step 1.
        assert_eq!(
            table.admit_sym(fp(200), fp(1), 8, fp(0), || step(1)),
            AdmitSym::New
        );
        assert_eq!(
            table.admit_sym(fp(200), fp(1), 8, fp(0), || step(7)),
            AdmitSym::Seen { merged: false }
        );
        assert_eq!(
            table.admit_sym(fp(200), fp(2), 8, fp(0), || step(7)),
            AdmitSym::Seen { merged: true }
        );
        assert_eq!(table.unique(), 2);
        assert_eq!(table.stored_bytes(), 8);
        // The trace walks *concrete* fingerprints.
        let trace = table.reconstruct(fp(1), &program());
        let machines: Vec<MachineId> = trace.iter().map(|s| s.machine).collect();
        assert_eq!(machines, [MachineId(1)]);
        assert!(table.reconstruct(fp(2), &program()).is_empty());
    }

    #[test]
    fn shared_table_admit_sleep_sym_sibling_gets_an_edge() {
        let table = SharedTable::new(usize::MAX);
        table.admit_root_sym(fp(100), fp(0), 0);
        assert_eq!(
            table.admit_sleep_sym(fp(200), fp(1), 8, sleep(&[3]), fp(0), || step(1)),
            AdmitSleepSym::New
        );
        // Sibling fp(2) while stored sleep {3} ≠ ∅: widen to ∅ and
        // record the sibling's own parent edge so its re-expansion is
        // traceable.
        assert_eq!(
            table.admit_sleep_sym(fp(200), fp(2), 8, sleep(&[4]), fp(1), || step(2)),
            AdmitSleepSym::Widen {
                sleep: SleepSet::empty(),
                merged: true
            }
        );
        let trace = table.reconstruct(fp(2), &program());
        let machines: Vec<MachineId> = trace.iter().map(|s| s.machine).collect();
        assert_eq!(machines, [MachineId(1), MachineId(2)]);
        // Fully explored orbit covers everything thereafter.
        assert_eq!(
            table.admit_sleep_sym(fp(200), fp(3), 8, sleep(&[6]), fp(0), || step(3)),
            AdmitSleepSym::Covered { merged: true }
        );
        assert_eq!(table.unique(), 2, "siblings never re-count the orbit");
    }

    #[test]
    fn parent_map_reconstructs_in_root_to_leaf_order() {
        let mut parents = ParentMap::new();
        parents.record(fp(2), fp(1), step(1));
        parents.record(fp(3), fp(2), step(2));
        let prog = program();
        let trace = parents.reconstruct(fp(3), &prog);
        let machines: Vec<MachineId> = trace.iter().map(|s| s.machine).collect();
        assert_eq!(machines, [MachineId(1), MachineId(2)]);
        assert!(parents.reconstruct(fp(1), &prog).is_empty());
    }

    #[test]
    fn shared_table_enforces_bound_without_poisoning() {
        let table = SharedTable::new(2);
        table.admit_root(fp(0), 8);
        assert_eq!(table.admit(fp(1), 8, fp(0), || step(1)), Admit::New);
        assert_eq!(table.admit(fp(2), 8, fp(0), || step(2)), Admit::OverBound);
        assert!(table.truncated());
        assert_eq!(table.unique(), 2);
        assert_eq!(table.stored_bytes(), 16);
        // The dropped state was not marked visited.
        assert_eq!(table.admit(fp(2), 8, fp(1), || step(3)), Admit::OverBound);
        // Retained states still dedup.
        assert_eq!(table.admit(fp(1), 8, fp(0), || step(1)), Admit::Seen);
    }

    #[test]
    fn shared_table_admits_exactly_once_across_threads() {
        let table = SharedTable::new(usize::MAX);
        table.admit_root(fp(0), 0);
        let wins = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for n in 1..500u32 {
                        if table.admit(fp(n), 1, fp(0), || step(0)) == Admit::New {
                            wins.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                });
            }
        });
        assert_eq!(wins.load(Ordering::SeqCst), 499);
        assert_eq!(table.unique(), 500);
        assert_eq!(table.stored_bytes(), 499);
    }

    #[test]
    fn shared_table_reconstructs_traces() {
        let table = SharedTable::new(usize::MAX);
        table.admit_root(fp(0), 0);
        table.admit(fp(1), 0, fp(0), || step(1));
        table.admit(fp(2), 0, fp(1), || step(2));
        let trace = table.reconstruct(fp(2), &program());
        let machines: Vec<MachineId> = trace.iter().map(|s| s.machine).collect();
        assert_eq!(machines, [MachineId(1), MachineId(2)]);
    }

    #[test]
    fn frontier_drains_and_terminates() {
        let frontier: Frontier<u32> = Frontier::new(2, 0);
        let seen = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for w in 0..2 {
                let (frontier, seen) = (&frontier, &seen);
                scope.spawn(move || {
                    while let Some(task) = frontier.next(w) {
                        seen.lock().push(task);
                        if task < 10 {
                            frontier.push(w, task * 2 + 1);
                            frontier.push(w, task * 2 + 2);
                        }
                        frontier.task_done();
                    }
                });
            }
        });
        // Binary tree rooted at 0 (children 2n+1, 2n+2), expanded only
        // for n < 10: exactly the nodes 0..=20 get visited.
        let mut tasks = seen.into_inner();
        tasks.sort_unstable();
        assert_eq!(tasks, (0..=20).collect::<Vec<u32>>());
    }

    #[test]
    fn frontier_stop_drains_workers() {
        let frontier: Frontier<u32> = Frontier::new(1, 7);
        frontier.request_stop();
        assert!(frontier.stopping());
        assert_eq!(frontier.next(0), None);
    }
}
