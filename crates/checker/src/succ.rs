//! Successor generation: all outcomes of running one machine from one
//! configuration, across every resolution of its ghost `*` choices.

use p_semantics::{
    ChoiceSource, Config, Engine, ExecError, ExecOutcome, Granularity, MachineId, RunResult,
};

/// One successor: the configuration after running `machine` with choice
/// script `choices`.
#[derive(Debug, Clone)]
pub(crate) struct Successor {
    pub config: Config,
    pub machine: MachineId,
    pub choices: Vec<bool>,
    pub result: RunResult,
}

/// A choice script that never exhausts: past its recorded bits it
/// answers `false` and keeps counting. A run driven by it always
/// completes, and `used` afterwards tells how long the *actual* script
/// was — the recorded prefix plus implicit `false`s.
struct PaddedScript<'a> {
    bits: &'a [bool],
    used: usize,
}

impl ChoiceSource for PaddedScript<'_> {
    fn next_choice(&mut self) -> Option<bool> {
        let bit = self.bits.get(self.used).copied().unwrap_or(false);
        self.used += 1;
        Some(bit)
    }
}

/// Enumerates all atomic runs of `machine` from `config`: one successor
/// per complete ghost-choice script.
///
/// The enumeration backtracks over a single reusable script buffer
/// instead of keeping a worklist of cloned scripts. Each run is driven
/// by a [`PaddedScript`] — `false` past the end of the buffer — so a run
/// that hits fresh choice points completes in that same execution
/// (descending into the all-`false` subtree) instead of aborting with
/// `NeedChoice` and re-running; the buffer is then extended to the bits
/// actually consumed. Backtracking pops trailing `true`s and flips the
/// last `false` to `true`. Determinism makes this sound: two runs from
/// the same configuration consume identical prefixes, so the flipped bit
/// is reached again, and `used` only ever grows past the buffer. The
/// enumeration thus costs exactly one `run_machine`, one config clone
/// and one script allocation per successor, and emits in lexicographic
/// (`false < true`) order.
pub(crate) fn successors_for(
    engine: &Engine<'_>,
    config: &Config,
    machine: MachineId,
    granularity: Granularity,
) -> Result<Vec<Successor>, ExecError> {
    let mut out = Vec::new();
    successors_into(engine, config, machine, granularity, &mut out)?;
    Ok(out)
}

/// [`successors_for`] into a caller-owned buffer, so the per-state
/// expansion loops can reuse one allocation across the whole search.
pub(crate) fn successors_into(
    engine: &Engine<'_>,
    config: &Config,
    machine: MachineId,
    granularity: Granularity,
    out: &mut Vec<Successor>,
) -> Result<(), ExecError> {
    let mut script: Vec<bool> = Vec::new();
    loop {
        let mut candidate = config.clone();
        let mut source = PaddedScript {
            bits: &script,
            used: 0,
        };
        let result = engine.run_machine(&mut candidate, machine, &mut source, granularity)?;
        let used = source.used;
        debug_assert!(
            !matches!(result.outcome, ExecOutcome::NeedChoice),
            "a padded script never exhausts"
        );
        debug_assert!(
            used >= script.len(),
            "prefix replay must consume the script"
        );
        script.resize(used, false);
        out.push(Successor {
            config: candidate,
            machine,
            choices: script.clone(),
            result,
        });
        // Backtrack to the next unexplored branch.
        loop {
            match script.pop() {
                None => return Ok(()),
                Some(false) => {
                    script.push(true);
                    break;
                }
                Some(true) => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p_ast::{Expr, ProgramBuilder, Stmt, Ty};
    use p_semantics::{lower, ForeignEnv, Value};

    #[test]
    fn enumerates_all_choice_combinations() {
        // Two sequential `*` choices → 4 successors.
        let mut b = ProgramBuilder::new();
        let mut g = b.ghost_machine("G");
        g.var("x", Ty::Int);
        let x = g.sym("x");
        g.state("S").entry(Stmt::block(vec![
            Stmt::assign(x, Expr::int(0)),
            Stmt::if_then(
                Expr::nondet(),
                Stmt::assign(
                    x,
                    Expr::binary(p_ast::BinOp::Add, Expr::name(x), Expr::int(1)),
                ),
            ),
            Stmt::if_then(
                Expr::nondet(),
                Stmt::assign(
                    x,
                    Expr::binary(p_ast::BinOp::Add, Expr::name(x), Expr::int(2)),
                ),
            ),
        ]));
        g.finish();
        let program = lower(&b.finish("G")).unwrap();
        let engine = Engine::new(&program, ForeignEnv::empty());
        let config = engine.initial_config();
        let succs = successors_for(&engine, &config, MachineId(0), Granularity::Atomic).unwrap();
        assert_eq!(succs.len(), 4);
        // Deterministic lexicographic emission, no post-sort needed.
        assert!(
            succs.windows(2).all(|w| w[0].choices < w[1].choices),
            "successors must come out in script order"
        );
        let mut values: Vec<i64> = succs
            .iter()
            .map(|s| {
                s.config.machine(MachineId(0)).unwrap().locals[0]
                    .as_int()
                    .unwrap()
            })
            .collect();
        values.sort();
        assert_eq!(values, vec![0, 1, 2, 3]);
    }

    #[test]
    fn deterministic_machine_has_single_successor() {
        let mut b = ProgramBuilder::new();
        let mut m = b.machine("M");
        m.var("x", Ty::Int);
        let x = m.sym("x");
        m.state("S").entry(Stmt::assign(x, Expr::int(9)));
        m.finish();
        let program = lower(&b.finish("M")).unwrap();
        let engine = Engine::new(&program, ForeignEnv::empty());
        let config = engine.initial_config();
        let succs = successors_for(&engine, &config, MachineId(0), Granularity::Atomic).unwrap();
        assert_eq!(succs.len(), 1);
        assert!(succs[0].choices.is_empty());
        assert_eq!(
            succs[0].config.machine(MachineId(0)).unwrap().locals[0],
            Value::Int(9)
        );
    }

    #[test]
    fn original_config_is_untouched() {
        let mut b = ProgramBuilder::new();
        let mut g = b.ghost_machine("G");
        g.var("x", Ty::Int);
        let x = g.sym("x");
        g.state("S")
            .entry(Stmt::if_then(Expr::nondet(), Stmt::assign(x, Expr::int(1))));
        g.finish();
        let program = lower(&b.finish("G")).unwrap();
        let engine = Engine::new(&program, ForeignEnv::empty());
        let config = engine.initial_config();
        let before = config.canonical_bytes();
        let _ = successors_for(&engine, &config, MachineId(0), Granularity::Atomic).unwrap();
        assert_eq!(config.canonical_bytes(), before);
    }
}
