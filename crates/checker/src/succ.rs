//! Successor generation: all outcomes of running one machine from one
//! configuration, across every resolution of its ghost `*` choices.

use p_semantics::{Config, Engine, ExecOutcome, Granularity, MachineId, RunResult, Script};

/// One successor: the configuration after running `machine` with choice
/// script `choices`.
#[derive(Debug, Clone)]
pub(crate) struct Successor {
    pub config: Config,
    pub machine: MachineId,
    pub choices: Vec<bool>,
    pub result: RunResult,
}

/// Enumerates all atomic runs of `machine` from `config`: one successor
/// per complete ghost-choice script. A run that requests a choice beyond
/// its script is re-executed with the script extended both ways, so the
/// enumeration is exhaustive.
pub(crate) fn successors_for(
    engine: &Engine<'_>,
    config: &Config,
    machine: MachineId,
    granularity: Granularity,
) -> Vec<Successor> {
    let mut out = Vec::new();
    // Depth-first over scripts; `false` is explored first for determinism.
    let mut pending: Vec<Vec<bool>> = vec![Vec::new()];
    while let Some(script) = pending.pop() {
        let mut candidate = config.clone();
        let mut source = Script::new(&script);
        let result = engine.run_machine(&mut candidate, machine, &mut source, granularity);
        match result.outcome {
            ExecOutcome::NeedChoice => {
                let mut t = script.clone();
                t.push(true);
                pending.push(t);
                let mut f = script;
                f.push(false);
                pending.push(f);
            }
            _ => out.push(Successor {
                config: candidate,
                machine,
                choices: script,
                result,
            }),
        }
    }
    // Deterministic order regardless of the pending-stack discipline.
    out.sort_by(|a, b| a.choices.cmp(&b.choices));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use p_ast::{Expr, ProgramBuilder, Stmt, Ty};
    use p_semantics::{lower, ForeignEnv, Value};

    #[test]
    fn enumerates_all_choice_combinations() {
        // Two sequential `*` choices → 4 successors.
        let mut b = ProgramBuilder::new();
        let mut g = b.ghost_machine("G");
        g.var("x", Ty::Int);
        let x = g.sym("x");
        g.state("S").entry(Stmt::block(vec![
            Stmt::assign(x, Expr::int(0)),
            Stmt::if_then(
                Expr::nondet(),
                Stmt::assign(
                    x,
                    Expr::binary(p_ast::BinOp::Add, Expr::name(x), Expr::int(1)),
                ),
            ),
            Stmt::if_then(
                Expr::nondet(),
                Stmt::assign(
                    x,
                    Expr::binary(p_ast::BinOp::Add, Expr::name(x), Expr::int(2)),
                ),
            ),
        ]));
        g.finish();
        let program = lower(&b.finish("G")).unwrap();
        let engine = Engine::new(&program, ForeignEnv::empty());
        let config = engine.initial_config();
        let succs = successors_for(&engine, &config, MachineId(0), Granularity::Atomic);
        assert_eq!(succs.len(), 4);
        let mut values: Vec<i64> = succs
            .iter()
            .map(|s| {
                s.config.machine(MachineId(0)).unwrap().locals[0]
                    .as_int()
                    .unwrap()
            })
            .collect();
        values.sort();
        assert_eq!(values, vec![0, 1, 2, 3]);
    }

    #[test]
    fn deterministic_machine_has_single_successor() {
        let mut b = ProgramBuilder::new();
        let mut m = b.machine("M");
        m.var("x", Ty::Int);
        let x = m.sym("x");
        m.state("S").entry(Stmt::assign(x, Expr::int(9)));
        m.finish();
        let program = lower(&b.finish("M")).unwrap();
        let engine = Engine::new(&program, ForeignEnv::empty());
        let config = engine.initial_config();
        let succs = successors_for(&engine, &config, MachineId(0), Granularity::Atomic);
        assert_eq!(succs.len(), 1);
        assert!(succs[0].choices.is_empty());
        assert_eq!(
            succs[0].config.machine(MachineId(0)).unwrap().locals[0],
            Value::Int(9)
        );
    }

    #[test]
    fn original_config_is_untouched() {
        let mut b = ProgramBuilder::new();
        let mut g = b.ghost_machine("G");
        g.var("x", Ty::Int);
        let x = g.sym("x");
        g.state("S")
            .entry(Stmt::if_then(Expr::nondet(), Stmt::assign(x, Expr::int(1))));
        g.finish();
        let program = lower(&b.finish("G")).unwrap();
        let engine = Engine::new(&program, ForeignEnv::empty());
        let config = engine.initial_config();
        let before = config.canonical_bytes();
        let _ = successors_for(&engine, &config, MachineId(0), Granularity::Atomic);
        assert_eq!(config.canonical_bytes(), before);
    }
}
