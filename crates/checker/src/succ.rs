//! Successor generation: all outcomes of running one machine from one
//! configuration, across every resolution of its ghost `*` choices.

use p_semantics::{
    ChoiceSource, Config, Engine, ExecError, ExecOutcome, Granularity, MachineId, RunResult,
};

/// One successor: the configuration after running `machine` with choice
/// script `choices`.
#[derive(Debug, Clone)]
pub(crate) struct Successor {
    pub config: Config,
    pub machine: MachineId,
    pub choices: Vec<bool>,
    pub result: RunResult,
}

/// Recycling pool for the successor hot path: rejected candidates'
/// configurations (with their machine-state buffers) and choice
/// scripts come back here and are re-derived from the next parent via
/// [`Config::prepare_candidate`] / `clone_from` instead of fresh
/// allocations. In the steady state a successor costs zero mallocs:
/// the candidate reuses a pooled config whose uniquely-owned runner
/// slot absorbs the copy-on-write unsharing, and the choices vector
/// reuses a pooled buffer.
#[derive(Debug, Default)]
pub(crate) struct SuccArena {
    configs: Vec<Config>,
    scripts: Vec<Vec<bool>>,
    /// Sole-owned machine buffers harvested from retired candidates;
    /// [`Config::prepare_candidate`] primes the next runner slot from
    /// here so the run's `Arc::make_mut` never deep-clones.
    slots: Vec<std::sync::Arc<p_semantics::MachineState>>,
    /// The enumeration's working script buffer, kept across tasks.
    script_buf: Vec<bool>,
    /// Sampled phase attribution for the loop this arena serves (the
    /// arena is already threaded through the hot path, so the sampler
    /// rides along instead of widening every signature).
    pub(crate) phases: crate::phase::PhaseTimes,
}

/// Pool growth cap: the pool only needs to cover one expansion's worth
/// of successors plus a popped task per step; anything beyond that is a
/// leak, not a working set.
const ARENA_CAP: usize = 64;

impl SuccArena {
    pub(crate) fn new() -> SuccArena {
        SuccArena::default()
    }

    /// Returns a rejected successor's buffers to the pool.
    pub(crate) fn recycle(&mut self, succ: Successor) {
        self.recycle_config(succ.config);
        if self.scripts.len() < ARENA_CAP {
            self.scripts.push(succ.choices);
        }
    }

    /// Returns a retired configuration (rejected successor or expanded
    /// task) to the pool, harvesting its sole-owned machine buffers for
    /// runner-slot priming.
    pub(crate) fn recycle_config(&mut self, mut config: Config) {
        config.harvest_unique_slots(&mut self.slots, ARENA_CAP);
        if self.configs.len() < ARENA_CAP {
            self.configs.push(config);
        }
    }

    /// A candidate configuration primed from `config` for running
    /// `machine`: pooled buffers when available, fresh allocations
    /// otherwise.
    fn candidate(&mut self, config: &Config, machine: MachineId) -> Config {
        let mut c = self.configs.pop().unwrap_or_default();
        c.prepare_candidate(config, machine, &mut self.slots);
        c
    }

    /// A choices vector holding `bits`, reusing a pooled buffer.
    fn choices(&mut self, bits: &[bool]) -> Vec<bool> {
        let mut v = self.scripts.pop().unwrap_or_default();
        v.clear();
        v.extend_from_slice(bits);
        v
    }
}

/// A choice script that never exhausts: past its recorded bits it
/// answers `false` and keeps counting. A run driven by it always
/// completes, and `used` afterwards tells how long the *actual* script
/// was — the recorded prefix plus implicit `false`s.
struct PaddedScript<'a> {
    bits: &'a [bool],
    used: usize,
}

impl ChoiceSource for PaddedScript<'_> {
    fn next_choice(&mut self) -> Option<bool> {
        let bit = self.bits.get(self.used).copied().unwrap_or(false);
        self.used += 1;
        Some(bit)
    }
}

/// Enumerates all atomic runs of `machine` from `config`: one successor
/// per complete ghost-choice script.
///
/// The enumeration backtracks over a single reusable script buffer
/// instead of keeping a worklist of cloned scripts. Each run is driven
/// by a [`PaddedScript`] — `false` past the end of the buffer — so a run
/// that hits fresh choice points completes in that same execution
/// (descending into the all-`false` subtree) instead of aborting with
/// `NeedChoice` and re-running; the buffer is then extended to the bits
/// actually consumed. Backtracking pops trailing `true`s and flips the
/// last `false` to `true`. Determinism makes this sound: two runs from
/// the same configuration consume identical prefixes, so the flipped bit
/// is reached again, and `used` only ever grows past the buffer. The
/// enumeration thus costs exactly one `run_machine`, one config clone
/// and one script allocation per successor, and emits in lexicographic
/// (`false < true`) order.
pub(crate) fn successors_for(
    engine: &Engine<'_>,
    config: &Config,
    machine: MachineId,
    granularity: Granularity,
) -> Result<Vec<Successor>, ExecError> {
    let mut out = Vec::new();
    let mut arena = SuccArena::new();
    successors_into(engine, config, machine, granularity, &mut out, &mut arena)?;
    Ok(out)
}

/// [`successors_for`] into a caller-owned buffer, drawing candidate
/// configurations and script buffers from `arena`, so the per-state
/// expansion loops reuse allocations across the whole search.
pub(crate) fn successors_into(
    engine: &Engine<'_>,
    config: &Config,
    machine: MachineId,
    granularity: Granularity,
    out: &mut Vec<Successor>,
    arena: &mut SuccArena,
) -> Result<(), ExecError> {
    let mut script = std::mem::take(&mut arena.script_buf);
    script.clear();
    let r = successors_loop(
        engine,
        config,
        machine,
        granularity,
        out,
        arena,
        &mut script,
    );
    arena.script_buf = script;
    r
}

fn successors_loop(
    engine: &Engine<'_>,
    config: &Config,
    machine: MachineId,
    granularity: Granularity,
    out: &mut Vec<Successor>,
    arena: &mut SuccArena,
    script: &mut Vec<bool>,
) -> Result<(), ExecError> {
    loop {
        let t = arena.phases.start();
        let mut candidate = arena.candidate(config, machine);
        arena.phases.stop(crate::phase::Phase::Clone, t);
        let mut source = PaddedScript {
            bits: script.as_slice(),
            used: 0,
        };
        let t = arena.phases.start();
        let result = engine.run_machine(&mut candidate, machine, &mut source, granularity)?;
        arena.phases.stop(crate::phase::Phase::Exec, t);
        let used = source.used;
        debug_assert!(
            !matches!(result.outcome, ExecOutcome::NeedChoice),
            "a padded script never exhausts"
        );
        debug_assert!(
            used >= script.len(),
            "prefix replay must consume the script"
        );
        script.resize(used, false);
        out.push(Successor {
            config: candidate,
            machine,
            choices: arena.choices(script),
            result,
        });
        // Backtrack to the next unexplored branch.
        loop {
            match script.pop() {
                None => return Ok(()),
                Some(false) => {
                    script.push(true);
                    break;
                }
                Some(true) => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p_ast::{Expr, ProgramBuilder, Stmt, Ty};
    use p_semantics::{lower, ForeignEnv, Value};

    #[test]
    fn enumerates_all_choice_combinations() {
        // Two sequential `*` choices → 4 successors.
        let mut b = ProgramBuilder::new();
        let mut g = b.ghost_machine("G");
        g.var("x", Ty::Int);
        let x = g.sym("x");
        g.state("S").entry(Stmt::block(vec![
            Stmt::assign(x, Expr::int(0)),
            Stmt::if_then(
                Expr::nondet(),
                Stmt::assign(
                    x,
                    Expr::binary(p_ast::BinOp::Add, Expr::name(x), Expr::int(1)),
                ),
            ),
            Stmt::if_then(
                Expr::nondet(),
                Stmt::assign(
                    x,
                    Expr::binary(p_ast::BinOp::Add, Expr::name(x), Expr::int(2)),
                ),
            ),
        ]));
        g.finish();
        let program = lower(&b.finish("G")).unwrap();
        let engine = Engine::new(&program, ForeignEnv::empty());
        let config = engine.initial_config();
        let succs = successors_for(&engine, &config, MachineId(0), Granularity::Atomic).unwrap();
        assert_eq!(succs.len(), 4);
        // Deterministic lexicographic emission, no post-sort needed.
        assert!(
            succs.windows(2).all(|w| w[0].choices < w[1].choices),
            "successors must come out in script order"
        );
        let mut values: Vec<i64> = succs
            .iter()
            .map(|s| {
                s.config.machine(MachineId(0)).unwrap().locals[0]
                    .as_int()
                    .unwrap()
            })
            .collect();
        values.sort();
        assert_eq!(values, vec![0, 1, 2, 3]);
    }

    #[test]
    fn deterministic_machine_has_single_successor() {
        let mut b = ProgramBuilder::new();
        let mut m = b.machine("M");
        m.var("x", Ty::Int);
        let x = m.sym("x");
        m.state("S").entry(Stmt::assign(x, Expr::int(9)));
        m.finish();
        let program = lower(&b.finish("M")).unwrap();
        let engine = Engine::new(&program, ForeignEnv::empty());
        let config = engine.initial_config();
        let succs = successors_for(&engine, &config, MachineId(0), Granularity::Atomic).unwrap();
        assert_eq!(succs.len(), 1);
        assert!(succs[0].choices.is_empty());
        assert_eq!(
            succs[0].config.machine(MachineId(0)).unwrap().locals[0],
            Value::Int(9)
        );
    }

    #[test]
    fn original_config_is_untouched() {
        let mut b = ProgramBuilder::new();
        let mut g = b.ghost_machine("G");
        g.var("x", Ty::Int);
        let x = g.sym("x");
        g.state("S")
            .entry(Stmt::if_then(Expr::nondet(), Stmt::assign(x, Expr::int(1))));
        g.finish();
        let program = lower(&b.finish("G")).unwrap();
        let engine = Engine::new(&program, ForeignEnv::empty());
        let config = engine.initial_config();
        let before = config.canonical_bytes();
        let _ = successors_for(&engine, &config, MachineId(0), Granularity::Atomic).unwrap();
        assert_eq!(config.canonical_bytes(), before);
    }
}
