//! Cross-strategy tests for the model checker.

use p_semantics::{lower, ErrorKind, LoweredProgram};

use crate::{CheckerOptions, LivenessViolation, Verifier};

fn lowered(src: &str) -> LoweredProgram {
    let program = p_parser::parse(src).unwrap();
    p_typecheck::check(&program).unwrap();
    lower(&program).unwrap()
}

/// Two senders race to deliver `a`; Main asserts the first payload is 1.
/// The causal (d = 0) schedule always delivers 1 first; one delay lets the
/// second sender overtake.
const RACE: &str = r#"
    event a : int;

    machine Main {
        var s1 : id;
        var s2 : id;
        state Init {
            entry {
                s1 := new Sender(val = 1, boss = this);
                s2 := new Sender(val = 2, boss = this);
            }
            on a goto GotFirst;
        }
        state GotFirst {
            defer a;
            entry { assert(arg == 1); }
        }
    }

    machine Sender {
        var val : int;
        var boss : id;
        state Go {
            entry { send(boss, a, val); }
        }
    }

    main Main();
"#;

#[test]
fn exhaustive_finds_race_assertion() {
    let p = lowered(RACE);
    let report = Verifier::new(&p).check_exhaustive();
    let cx = report.counterexample.expect("race must be found");
    assert_eq!(cx.error.kind, ErrorKind::AssertionFailure);
    assert!(!cx.trace.is_empty());
    // The trace must mention the send of `a`.
    let rendered = cx.to_string();
    assert!(rendered.contains("sent a"), "{rendered}");
}

#[test]
fn delay_zero_is_causal_and_misses_the_race() {
    let p = lowered(RACE);
    let report = Verifier::new(&p).check_delay_bounded(0);
    assert!(
        report.report.passed(),
        "d=0 must follow the causal schedule: {:?}",
        report.report.counterexample
    );
    assert!(report.report.complete);
}

#[test]
fn delay_one_finds_the_race() {
    let p = lowered(RACE);
    let report = Verifier::new(&p).check_delay_bounded(1);
    let cx = report
        .report
        .counterexample
        .expect("d=1 must find the race");
    assert_eq!(cx.error.kind, ErrorKind::AssertionFailure);
}

#[test]
fn delay_bound_coverage_is_monotone() {
    // Use a passing variant so exploration runs to completion.
    let src = RACE.replace("assert(arg == 1)", "assert(arg > 0)");
    let p = lowered(&src);
    let verifier = Verifier::new(&p);
    let mut last = 0;
    for d in 0..6 {
        let report = verifier.check_delay_bounded(d);
        assert!(report.report.passed());
        let states = report.report.stats.unique_states;
        assert!(
            states >= last,
            "coverage shrank at d={d}: {states} < {last}"
        );
        last = states;
    }
}

#[test]
fn high_delay_bound_matches_exhaustive_coverage() {
    let src = RACE.replace("assert(arg == 1)", "assert(arg > 0)");
    let p = lowered(&src);
    let verifier = Verifier::new(&p);
    let exhaustive = verifier.check_exhaustive();
    assert!(exhaustive.passed());
    assert!(exhaustive.complete);
    let delayed = verifier.check_delay_bounded(16);
    assert_eq!(
        delayed.report.stats.unique_states, exhaustive.stats.unique_states,
        "a large delay budget must cover the full state space"
    );
}

#[test]
fn random_walks_find_the_race() {
    let p = lowered(RACE);
    let report = Verifier::new(&p).check_random(42, 200, 64);
    let cx = report
        .counterexample
        .expect("random walks should stumble on it");
    assert_eq!(cx.error.kind, ErrorKind::AssertionFailure);
}

#[test]
fn unhandled_event_detected_with_trace() {
    let src = r#"
        event req;
        machine Server { state Idle { } }
        ghost machine Env {
            var s : id;
            state Init {
                entry { s := new Server(); send(s, req); }
            }
        }
        main Env();
    "#;
    let p = lowered(src);
    let report = Verifier::new(&p).check_exhaustive();
    let cx = report.counterexample.expect("unhandled event");
    assert!(matches!(cx.error.kind, ErrorKind::UnhandledEvent { .. }));
}

#[test]
fn deferred_event_is_not_an_unhandled_violation() {
    let src = r#"
        event req;
        machine Server { state Idle { defer req; } }
        ghost machine Env {
            var s : id;
            state Init {
                entry { s := new Server(); send(s, req); }
            }
        }
        main Env();
    "#;
    let p = lowered(src);
    let report = Verifier::new(&p).check_exhaustive();
    assert!(report.passed());
    assert!(report.complete);
}

#[test]
fn ghost_choice_branches_are_both_explored() {
    // The bug hides behind a specific ghost choice.
    let src = r#"
        event hit;
        machine Target {
            state Idle {
                on hit goto Bad;
            }
            state Bad { entry { assert(false); } }
        }
        ghost machine Env {
            var t : id;
            state Init {
                entry {
                    t := new Target();
                    if (*) { send(t, hit); }
                }
            }
        }
        main Env();
    "#;
    let p = lowered(src);
    let report = Verifier::new(&p).check_exhaustive();
    let cx = report.counterexample.expect("choice true must be explored");
    assert_eq!(cx.error.kind, ErrorKind::AssertionFailure);
    // The trace records the ghost choice that triggered it.
    assert!(cx.trace.iter().any(|s| !s.choices.is_empty()));
}

#[test]
fn state_bound_truncates() {
    let src = r#"
        event tick : int;
        machine Clock {
            var n : int;
            state Run {
                entry {
                    n := n + 1;
                    send(this, tick, n);
                }
                on tick goto Run;
            }
        }
        main Clock(n = 0);
    "#;
    let p = lowered(src);
    let options = CheckerOptions {
        max_states: 50,
        ..CheckerOptions::default()
    };
    let report = Verifier::new(&p).with_options(options).check_exhaustive();
    assert!(report.passed());
    assert!(!report.complete);
    assert!(report.stats.truncated);
}

#[test]
fn liveness_flags_machine_running_forever() {
    let src = r#"
        event tick;
        machine Loop {
            state S {
                entry { send(this, tick); }
                on tick goto S;
            }
        }
        main Loop();
    "#;
    let p = lowered(src);
    let report = Verifier::new(&p).check_liveness();
    assert!(!report.passed());
    assert!(report
        .violations
        .iter()
        .any(|v| matches!(v, LivenessViolation::MachineRunsForever { .. })));
}

const STARVATION: &str = r#"
    event work;
    event tick;
    machine Busy {
        state S {
            defer work;
            entry { send(this, tick); }
            on tick goto S;
        }
    }
    ghost machine Env {
        var b : id;
        state Init {
            entry { b := new Busy(); send(b, work); }
        }
    }
    main Env();
"#;

#[test]
fn liveness_flags_forever_deferred_event() {
    let p = lowered(STARVATION);
    let report = Verifier::new(&p).check_liveness();
    assert!(
        report.violations.iter().any(|v| matches!(
            v,
            LivenessViolation::EventNeverDequeued { event_name, .. } if event_name == "work"
        )),
        "got {:?}",
        report.violations
    );
}

#[test]
fn postpone_annotation_silences_starvation() {
    let src = STARVATION.replace("defer work;", "defer work; postpone work;");
    let p = lowered(&src);
    let report = Verifier::new(&p).check_liveness();
    assert!(
        !report
            .violations
            .iter()
            .any(|v| matches!(v, LivenessViolation::EventNeverDequeued { .. })),
        "postponed events must not be reported: {:?}",
        report.violations
    );
}

#[test]
fn liveness_passes_on_quiescent_program() {
    let src = r#"
        event go;
        machine M {
            state A { entry { raise(go); } on go goto B; }
            state B { }
        }
        main M();
    "#;
    let p = lowered(src);
    let report = Verifier::new(&p).check_liveness();
    assert!(report.passed(), "{:?}", report.violations);
    assert!(report.complete);
}

#[test]
fn fine_granularity_finds_same_race_with_more_states() {
    let p = lowered(RACE);
    let atomic = Verifier::new(&p).check_exhaustive();
    let fine = Verifier::new(&p)
        .with_options(CheckerOptions {
            granularity: p_semantics::Granularity::Fine,
            ..CheckerOptions::default()
        })
        .check_exhaustive();
    // Same verdict (atomicity reduction is sound)…
    assert_eq!(atomic.passed(), fine.passed());
    assert!(!fine.passed());
    assert_eq!(
        atomic.counterexample.unwrap().error.kind,
        fine.counterexample.unwrap().error.kind
    );
}

#[test]
fn atomicity_reduction_shrinks_passing_state_space() {
    let src = RACE.replace("assert(arg == 1)", "assert(arg > 0)");
    let p = lowered(&src);
    let atomic = Verifier::new(&p).check_exhaustive();
    let fine = Verifier::new(&p)
        .with_options(CheckerOptions {
            granularity: p_semantics::Granularity::Fine,
            ..CheckerOptions::default()
        })
        .check_exhaustive();
    assert!(atomic.passed() && fine.passed());
    assert!(
        atomic.stats.unique_states < fine.stats.unique_states,
        "atomic {} vs fine {}",
        atomic.stats.unique_states,
        fine.stats.unique_states
    );
}

#[test]
fn exploration_is_deterministic() {
    let p = lowered(RACE);
    let r1 = Verifier::new(&p).check_exhaustive();
    let r2 = Verifier::new(&p).check_exhaustive();
    assert_eq!(r1.stats.unique_states, r2.stats.unique_states);
    assert_eq!(r1.stats.transitions, r2.stats.transitions);
    assert_eq!(
        r1.counterexample.map(|c| c.trace.len()),
        r2.counterexample.map(|c| c.trace.len())
    );
}

#[test]
fn delete_and_send_race_detected() {
    // Env may delete the worker before Main's send lands.
    let src = r#"
        event job;
        event die;
        machine Worker {
            state Idle {
                on job goto Idle;
                on die goto Dying;
            }
            state Dying { entry { delete; } }
        }
        ghost machine Env {
            var w : id;
            state Init {
                entry {
                    w := new Worker();
                    send(w, die);
                    send(w, job);
                }
            }
        }
        main Env();
    "#;
    let p = lowered(src);
    let report = Verifier::new(&p).check_exhaustive();
    let cx = report.counterexample.expect("send after delete");
    assert!(matches!(cx.error.kind, ErrorKind::SendToDeleted { .. }));
}

#[test]
fn stuck_state_diagnostics_are_reported() {
    // `work` is sent once and deferred forever; the system quiesces with
    // the event still queued.
    let src = r#"
        event work;
        machine Sink { state S { defer work; } }
        ghost machine Env {
            var s : id;
            state D { entry { s := new Sink(); send(s, work); } }
        }
        main Env();
    "#;
    let p = lowered(src);
    let report = Verifier::new(&p).check_exhaustive();
    assert!(report.passed());
    assert!(report.stats.stuck_states >= 1, "{:?}", report.stats);
    assert!(report.stats.quiescent_states >= 1);
    assert!(report.stats.max_queue_seen >= 1);
}

#[test]
fn clean_termination_is_quiescent_but_not_stuck() {
    let src = r#"
        event go;
        machine M {
            state A { entry { raise(go); } on go goto B; }
            state B { }
        }
        main M();
    "#;
    let p = lowered(src);
    let report = Verifier::new(&p).check_exhaustive();
    assert!(report.passed());
    assert!(report.stats.quiescent_states >= 1);
    assert_eq!(report.stats.stuck_states, 0);
}

#[test]
fn parallel_agrees_with_sequential_on_buggy_program() {
    let p = lowered(RACE);
    let verifier = Verifier::new(&p);
    let sequential = verifier.check_exhaustive();
    for jobs in [2, 4] {
        let parallel = verifier.check_exhaustive_parallel(jobs);
        assert_eq!(sequential.passed(), parallel.passed(), "jobs={jobs}");
        let cx = parallel.counterexample.expect("race found in parallel");
        assert_eq!(cx.error.kind, ErrorKind::AssertionFailure);
        // Whichever worker won, its trace must replay to the same error.
        assert!(
            verifier.replay(&cx).reproduced(),
            "parallel trace must replay (jobs={jobs}): {cx}"
        );
    }
}

#[test]
fn parallel_agrees_with_sequential_on_passing_program() {
    let src = RACE.replace("assert(arg == 1)", "assert(arg > 0)");
    let p = lowered(&src);
    let verifier = Verifier::new(&p);
    let sequential = verifier.check_exhaustive();
    assert!(sequential.passed() && sequential.complete);
    for jobs in [2, 4] {
        let parallel = verifier.check_exhaustive_parallel(jobs);
        assert!(parallel.passed() && parallel.complete, "jobs={jobs}");
        assert_eq!(
            sequential.stats.unique_states, parallel.stats.unique_states,
            "jobs={jobs}"
        );
        assert_eq!(
            sequential.stats.transitions, parallel.stats.transitions,
            "complete runs expand every state exactly once (jobs={jobs})"
        );
        assert_eq!(sequential.stats.stored_bytes, parallel.stats.stored_bytes);
    }
}

#[test]
fn options_jobs_selects_the_parallel_engine() {
    let src = RACE.replace("assert(arg == 1)", "assert(arg > 0)");
    let p = lowered(&src);
    let sequential = Verifier::new(&p).check_exhaustive();
    let via_options = Verifier::new(&p)
        .with_options(CheckerOptions {
            jobs: 4,
            ..CheckerOptions::default()
        })
        .check_exhaustive();
    assert!(via_options.passed() && via_options.complete);
    assert_eq!(
        sequential.stats.unique_states,
        via_options.stats.unique_states
    );
}

#[test]
fn parallel_respects_state_bound_without_poisoning() {
    let src = r#"
        event tick : int;
        machine Clock {
            var n : int;
            state Run {
                entry {
                    n := n + 1;
                    send(this, tick, n);
                }
                on tick goto Run;
            }
        }
        main Clock(n = 0);
    "#;
    let p = lowered(src);
    let options = CheckerOptions {
        max_states: 50,
        ..CheckerOptions::default()
    };
    let verifier = Verifier::new(&p).with_options(options);
    let sequential = verifier.check_exhaustive();
    assert!(sequential.stats.truncated);
    assert!(
        sequential.stats.unique_states <= 50,
        "retained-state count must respect the bound: {}",
        sequential.stats.unique_states
    );
    let parallel = verifier.check_exhaustive_parallel(4);
    assert!(parallel.passed());
    assert!(!parallel.complete);
    assert!(parallel.stats.truncated);
    assert!(parallel.stats.unique_states <= 50);
}

/// The collision-regression test of the fingerprint switch: enumerate
/// the reachable configurations by their full canonical encodings (no
/// hashing at all) and check that the fingerprint-deduplicated search
/// retains exactly as many states — a 64-bit-style silent merge of
/// distinct canonical byte strings would make the counts diverge.
#[test]
fn fingerprints_never_merge_distinct_canonical_bytes() {
    use std::collections::HashSet;

    let src = RACE.replace("assert(arg == 1)", "assert(arg > 0)");
    let p = lowered(&src);
    let verifier = Verifier::new(&p);
    let engine = crate::Verifier::new(&p).engine();

    let mut by_bytes: HashSet<Vec<u8>> = HashSet::new();
    let mut by_fingerprint: HashSet<crate::Fingerprint> = HashSet::new();
    let init = engine.initial_config();
    by_bytes.insert(init.canonical_bytes());
    by_fingerprint.insert(crate::Fingerprint::of(&init.canonical_bytes()));
    let mut stack = vec![init];
    while let Some(config) = stack.pop() {
        for id in engine.enabled_machines(&config) {
            for succ in
                crate::succ::successors_for(&engine, &config, id, p_semantics::Granularity::Atomic)
                    .unwrap()
            {
                if matches!(succ.result.outcome, p_semantics::ExecOutcome::Error(_)) {
                    continue;
                }
                let bytes = succ.config.canonical_bytes();
                by_fingerprint.insert(crate::Fingerprint::of(&bytes));
                if by_bytes.insert(bytes) {
                    stack.push(succ.config);
                }
            }
        }
    }
    assert_eq!(
        by_bytes.len(),
        by_fingerprint.len(),
        "distinct canonical encodings must have distinct fingerprints"
    );
    let report = verifier.check_exhaustive();
    assert_eq!(
        report.stats.unique_states,
        by_bytes.len(),
        "the fingerprint-deduplicated search must retain every distinct state"
    );
}

#[test]
fn replayed_delay_traces_match_recorded_length() {
    let p = lowered(RACE);
    let verifier = Verifier::new(&p);
    let r = verifier.check_delay_bounded(2);
    let cx = r.report.counterexample.expect("race found at d<=2");
    // replay() must accept traces produced by the delay-bounded explorer.
    assert!(verifier.replay(&cx).reproduced());
    // And the last-good prefix is reachable.
    assert!(verifier.replay_to_last_good(&cx).is_some());
}

/// Two workers that, once kicked off by Env, only ever self-send: their
/// runs are pairwise independent, so sleep sets can prune the redundant
/// interleavings between them while visiting every state.
const INDEPENDENT_WORKERS: &str = r#"
    event go;

    machine Worker {
        var n : int;
        state Idle {
            entry { n := 0; }
            on go goto Work;
        }
        state Work {
            entry {
                n := n + 1;
                if (n < 4) { send(this, go); }
            }
            on go goto Work;
        }
    }

    ghost machine Env {
        var a : id;
        var b : id;
        state E {
            entry {
                a := new Worker();
                b := new Worker();
                send(a, go);
                send(b, go);
            }
            defer go;
        }
    }

    main Env();
"#;

fn por_options() -> CheckerOptions {
    CheckerOptions {
        por: true,
        ..CheckerOptions::default()
    }
}

#[test]
fn por_visits_every_state_with_fewer_transitions() {
    let p = lowered(INDEPENDENT_WORKERS);
    let full = Verifier::new(&p).check_exhaustive();
    let reduced = Verifier::new(&p)
        .with_options(por_options())
        .check_exhaustive();
    assert!(full.passed() && full.complete);
    assert!(reduced.passed() && reduced.complete);
    // Sleep sets prune transitions, never states.
    assert_eq!(full.stats.unique_states, reduced.stats.unique_states);
    assert_eq!(full.stats.stored_bytes, reduced.stats.stored_bytes);
    assert!(
        reduced.stats.transitions < full.stats.transitions,
        "independent workers must yield an actual reduction: {} !< {}",
        reduced.stats.transitions,
        full.stats.transitions
    );
    // Diagnostics are per-state and must not drift under re-visits.
    assert_eq!(full.stats.quiescent_states, reduced.stats.quiescent_states);
    assert_eq!(full.stats.stuck_states, reduced.stats.stuck_states);
}

#[test]
fn por_agrees_with_full_exploration_on_racy_program() {
    // RACE's senders share the boss, so their sends are dependent — but
    // a sender's trailing "finish the entry after the send" run touches
    // only the sender itself and may legitimately be slept. States must
    // match exactly; transitions may only shrink.
    let src = RACE.replace("assert(arg == 1)", "assert(arg > 0)");
    let p = lowered(&src);
    let full = Verifier::new(&p).check_exhaustive();
    let reduced = Verifier::new(&p)
        .with_options(por_options())
        .check_exhaustive();
    assert!(full.passed() && full.complete && reduced.passed() && reduced.complete);
    assert_eq!(full.stats.unique_states, reduced.stats.unique_states);
    assert!(reduced.stats.transitions <= full.stats.transitions);
}

#[test]
fn por_is_exact_when_only_one_machine_is_ever_enabled() {
    // A single self-driving machine has no independence to exploit: the
    // reduced search must coincide with the full one transition for
    // transition.
    let src = r#"
        event tick;
        machine Solo {
            var n : int;
            state Init {
                entry { n := 0; send(this, tick); }
                on tick goto S;
            }
            state S {
                entry {
                    n := n + 1;
                    if (n < 5) { send(this, tick); }
                }
                on tick goto S;
            }
        }
        main Solo();
    "#;
    let p = lowered(src);
    let full = Verifier::new(&p).check_exhaustive();
    let reduced = Verifier::new(&p)
        .with_options(por_options())
        .check_exhaustive();
    assert!(full.passed() && full.complete && reduced.passed() && reduced.complete);
    assert_eq!(full.stats.unique_states, reduced.stats.unique_states);
    assert_eq!(full.stats.transitions, reduced.stats.transitions);
}

#[test]
fn por_preserves_the_race_and_its_trace_replays() {
    let p = lowered(RACE);
    let verifier = Verifier::new(&p).with_options(por_options());
    let report = verifier.check_exhaustive();
    let cx = report
        .counterexample
        .expect("race must survive the reduction");
    assert_eq!(cx.error.kind, ErrorKind::AssertionFailure);
    assert!(verifier.replay(&cx).reproduced(), "{cx}");
}

#[test]
fn por_parallel_matches_por_sequential() {
    let p = lowered(INDEPENDENT_WORKERS);
    let sequential = Verifier::new(&p)
        .with_options(por_options())
        .check_exhaustive();
    for jobs in [2, 4] {
        let options = CheckerOptions {
            jobs,
            ..por_options()
        };
        let parallel = Verifier::new(&p).with_options(options).check_exhaustive();
        assert!(parallel.passed() && parallel.complete, "jobs={jobs}");
        assert_eq!(
            sequential.stats.unique_states, parallel.stats.unique_states,
            "jobs={jobs}"
        );
        assert_eq!(sequential.stats.stored_bytes, parallel.stats.stored_bytes);
    }
}
