//! Sleep-set partial-order reduction for the exhaustive engines.
//!
//! Two atomic runs on *different* machines commute unless they touch a
//! common resource. An atomic run of machine `m` (which, by the
//! atomicity reduction of §5, stops at its first `send` or `new`)
//! reads and writes:
//!
//! * `m`'s own machine configuration (stack, locals, registers,
//!   continuation, queue — including the dequeue that may start the
//!   run; the `en(m)` predicate is likewise a function of `m` alone);
//! * on `send(t, e, v)`: the *target* slot `t` — its liveness (rule
//!   SEND-FAIL2) and its queue, which the ⊕ append both reads (for the
//!   dedup scan) and writes;
//! * on `new M(...)`: the machine-id allocator (ids are dense creation
//!   indices) and the freshly appended slot;
//! * `delete` only ever removes the running machine itself.
//!
//! So the *footprint* of a taken run is exact and tiny: the machine, an
//! optional send target, and optionally the created id plus an `ALLOC`
//! pseudo-resource (two creations race on id allocation — swapping them
//! swaps the ids they return — so they never commute). Two runs are
//! *independent* iff their footprints are disjoint; then they commute
//! as state transformers and neither enables or disables the other.
//!
//! For a machine that is *asleep* (its runs deferred to an ancestor
//! state), the run has not been executed, so we over-approximate its
//! footprint statically: the machine itself, every machine id stored
//! anywhere in its values (locals, `msg`/`arg` registers, pending raise
//! payload, queued payloads), and `ALLOC` when its machine type can
//! ever execute `new`. This is sound because [`p_semantics::Value`] is
//! a scalar: operators on machine values yield only booleans, literals
//! cannot denote machines, and `this` is the machine itself — so any
//! send target the next run can compute is already among the machine's
//! stored ids. Foreign functions are the one escape hatch (a native
//! implementation could fabricate an id), so machine types declaring
//! foreign functions get an unknown (⊤) footprint and are never treated
//! as independent.
//!
//! Sleep sets prune *transitions*, never states: on a complete run the
//! reduced search reaches exactly the states full exploration reaches
//! (Godefroid's classical result), which `tests/por_consistency.rs`
//! checks over the whole corpus, buggy variants included.

use p_semantics::lower::{LStmt, LoweredProgram, StmtId};
use p_semantics::{Config, ExecOutcome, MachineId, RunResult, Value, YieldKind};

/// A set of machines whose runs are deferred (already explored from an
/// ancestor state). Machines with id ≥ 64 are simply never slept —
/// conservative, hence sound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub(crate) struct SleepSet(pub u64);

impl SleepSet {
    /// The empty sleep set (nothing deferred; full exploration).
    pub(crate) fn empty() -> SleepSet {
        SleepSet(0)
    }

    /// Whether `id`'s runs are deferred here.
    pub(crate) fn contains(self, id: MachineId) -> bool {
        id.0 < 64 && self.0 & (1u64 << id.0) != 0
    }

    /// Adds `id` (no-op for untrackable ids ≥ 64).
    pub(crate) fn insert(&mut self, id: MachineId) {
        if id.0 < 64 {
            self.0 |= 1u64 << id.0;
        }
    }

    /// Whether every machine asleep in `self` is also asleep in `other`.
    pub(crate) fn is_subset_of(self, other: SleepSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// Machines asleep in both.
    pub(crate) fn intersect(self, other: SleepSet) -> SleepSet {
        SleepSet(self.0 & other.0)
    }

    /// Iterates the member machine ids.
    fn iter(self) -> impl Iterator<Item = MachineId> {
        let mut bits = self.0;
        std::iter::from_fn(move || {
            if bits == 0 {
                return None;
            }
            let i = bits.trailing_zeros();
            bits &= bits - 1;
            Some(MachineId(i))
        })
    }
}

/// The set of resources an atomic run touches. Machine ids < 64 are a
/// bitmask; `overflow` stands for "some machine with id ≥ 64", `alloc`
/// for the machine-id allocator, and `unknown` poisons the footprint to
/// ⊤ (dependent with everything).
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct Footprint {
    machines: u64,
    overflow: bool,
    alloc: bool,
    unknown: bool,
}

impl Footprint {
    fn add_machine(&mut self, id: MachineId) {
        if id.0 < 64 {
            self.machines |= 1u64 << id.0;
        } else {
            self.overflow = true;
        }
    }

    /// Whether two footprints may overlap (conservatively).
    pub(crate) fn overlaps(&self, other: &Footprint) -> bool {
        self.unknown
            || other.unknown
            || (self.machines & other.machines) != 0
            || (self.alloc && other.alloc)
            || (self.overflow && other.overflow)
    }
}

/// Per-machine-type facts needed by the static footprint.
#[derive(Debug, Clone, Copy, Default)]
struct TypeCaps {
    /// The type's code can execute `new` somewhere.
    may_create: bool,
    /// The type declares foreign functions (whose native implementations
    /// could fabricate machine ids) — footprint is unknowable.
    has_foreign: bool,
}

/// Precomputed independence context for one program.
#[derive(Debug)]
pub(crate) struct Por {
    caps: Vec<TypeCaps>,
}

impl Por {
    /// Scans the lowered code of every machine type once.
    pub(crate) fn new(program: &LoweredProgram) -> Por {
        let caps = program
            .machines
            .iter()
            .map(|mt| {
                let mut roots: Vec<StmtId> = Vec::new();
                for s in &mt.states {
                    roots.push(s.entry);
                    roots.push(s.exit);
                }
                for a in &mt.actions {
                    roots.push(a.body);
                }
                for f in &mt.foreign {
                    if let Some(model) = &f.model {
                        roots.push(model.body);
                    }
                }
                TypeCaps {
                    may_create: roots.iter().any(|&r| stmt_may_create(program, r)),
                    has_foreign: !mt.foreign.is_empty(),
                }
            })
            .collect();
        Por { caps }
    }

    /// The exact footprint of a run of `machine` that produced `result`.
    pub(crate) fn run_footprint(&self, machine: MachineId, result: &RunResult) -> Footprint {
        let mut fp = Footprint::default();
        fp.add_machine(machine);
        match &result.outcome {
            ExecOutcome::Yield(YieldKind::Sent { to, .. }) => fp.add_machine(*to),
            ExecOutcome::Yield(YieldKind::Created { id, .. }) => {
                fp.add_machine(*id);
                fp.alloc = true;
            }
            _ => {}
        }
        fp
    }

    /// The static over-approximation of any run machine `id` could take
    /// from `config`.
    pub(crate) fn static_footprint(&self, config: &Config, id: MachineId) -> Footprint {
        let mut fp = Footprint::default();
        fp.add_machine(id);
        let Some(m) = config.machine(id) else {
            return fp; // dead machines take no runs
        };
        let caps = self.caps[m.ty.0 as usize];
        if caps.has_foreign {
            fp.unknown = true;
            return fp;
        }
        fp.alloc = caps.may_create;
        let mut note = |v: &Value| {
            if let Value::Machine(target) = v {
                fp.add_machine(*target);
            }
        };
        for v in &m.locals {
            note(v);
        }
        note(&m.msg);
        note(&m.arg);
        if let Some((_, v)) = &m.pending {
            note(v);
        }
        for (_, v) in &m.queue {
            note(v);
        }
        fp
    }

    /// The sleep set a successor inherits: machines stay asleep only if
    /// their (statically approximated) next run is independent of the
    /// run just taken. `config` is the state the run was taken *from* —
    /// an independent sleeper's state is identical before and after, so
    /// evaluating its footprint at the parent is exact.
    pub(crate) fn filter_sleep(
        &self,
        config: &Config,
        sleep: SleepSet,
        taken: &Footprint,
    ) -> SleepSet {
        let mut out = SleepSet::empty();
        for p in sleep.iter() {
            if !self.static_footprint(config, p).overlaps(taken) {
                out.insert(p);
            }
        }
        out
    }
}

/// Whether the statement tree rooted at `root` contains a `new`.
fn stmt_may_create(program: &LoweredProgram, root: StmtId) -> bool {
    match program.code.stmt(root) {
        LStmt::New { .. } => true,
        LStmt::Block(children) => children.iter().any(|&c| stmt_may_create(program, c)),
        LStmt::If { then, els, .. } => {
            stmt_may_create(program, *then) || stmt_may_create(program, *els)
        }
        LStmt::While { body, .. } => stmt_may_create(program, *body),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p_semantics::{lower, Engine, ForeignEnv, Granularity};

    fn compile(src: &str) -> LoweredProgram {
        lower(&p_parser::parse(src).unwrap()).unwrap()
    }

    #[test]
    fn sleep_set_ops() {
        let mut s = SleepSet::empty();
        assert!(!s.contains(MachineId(3)));
        s.insert(MachineId(3));
        s.insert(MachineId(0));
        assert!(s.contains(MachineId(3)));
        assert!(s.contains(MachineId(0)));
        // Untrackable ids are silently not slept.
        s.insert(MachineId(64));
        assert!(!s.contains(MachineId(64)));
        let mut t = SleepSet::empty();
        t.insert(MachineId(3));
        assert!(t.is_subset_of(s));
        assert!(!s.is_subset_of(t));
        assert_eq!(s.intersect(t), t);
        assert_eq!(t.iter().collect::<Vec<_>>(), vec![MachineId(3)]);
    }

    #[test]
    fn footprint_overlap_rules() {
        let mut a = Footprint::default();
        a.add_machine(MachineId(1));
        let mut b = Footprint::default();
        b.add_machine(MachineId(2));
        assert!(!a.overlaps(&b));
        b.add_machine(MachineId(1));
        assert!(a.overlaps(&b));

        // Two allocators race even with disjoint machines.
        let alloc_a = Footprint {
            alloc: true,
            ..Footprint::default()
        };
        let alloc_b = Footprint {
            alloc: true,
            ..Footprint::default()
        };
        assert!(alloc_a.overlaps(&alloc_b));

        // Unknown is dependent with everything, even the empty footprint.
        let unknown = Footprint {
            unknown: true,
            ..Footprint::default()
        };
        assert!(unknown.overlaps(&Footprint::default()));

        // Untracked big ids conservatively collide with each other only.
        let mut big_a = Footprint::default();
        big_a.add_machine(MachineId(100));
        let mut big_b = Footprint::default();
        big_b.add_machine(MachineId(200));
        assert!(big_a.overlaps(&big_b));
        let small = Footprint {
            machines: 1,
            ..Footprint::default()
        };
        assert!(!big_a.overlaps(&small));
    }

    #[test]
    fn caps_detect_creation_anywhere_in_the_tree() {
        let program = compile(
            r#"
            event go;
            machine Worker { state W { defer go; } }
            ghost machine Spawner {
                var w : id;
                state S { entry { if (*) { w := new Worker(); } } }
            }
            main Spawner();
        "#,
        );
        let por = Por::new(&program);
        let spawner = program.machine_type_named("Spawner").unwrap();
        let worker = program.machine_type_named("Worker").unwrap();
        assert!(por.caps[spawner.0 as usize].may_create);
        assert!(!por.caps[worker.0 as usize].may_create);
    }

    #[test]
    fn run_footprint_covers_send_target_and_allocation() {
        let program = compile(
            r#"
            event ping;
            machine Pong { state P { defer ping; } }
            ghost machine Env {
                var p : id;
                state E { entry { p := new Pong(); send(p, ping); } }
            }
            main Env();
        "#,
        );
        let por = Por::new(&program);
        let engine = Engine::new(&program, ForeignEnv::empty());
        let mut config = engine.initial_config();
        // First atomic run stops at the `new`.
        let r1 = engine
            .run_machine(
                &mut config,
                MachineId(0),
                &mut || false,
                Granularity::Atomic,
            )
            .unwrap();
        let fp1 = por.run_footprint(MachineId(0), &r1);
        assert!(fp1.alloc, "creation must claim the allocator: {r1:?}");
        assert!(fp1.machines & 0b10 != 0, "created id in footprint");
        // Second run stops at the send.
        let r2 = engine
            .run_machine(
                &mut config,
                MachineId(0),
                &mut || false,
                Granularity::Atomic,
            )
            .unwrap();
        let fp2 = por.run_footprint(MachineId(0), &r2);
        assert!(!fp2.alloc);
        assert!(fp2.machines & 0b10 != 0, "send target in footprint");

        // Env's static footprint sees its stored reference to Pong and
        // its ability to create.
        let sfp = por.static_footprint(&config, MachineId(0));
        assert!(sfp.alloc);
        assert!(sfp.machines & 0b10 != 0);
        // Pong holds no machine values: its static footprint is itself.
        let pong_fp = por.static_footprint(&config, MachineId(1));
        assert_eq!(pong_fp.machines, 0b10);
        assert!(!pong_fp.alloc && !pong_fp.unknown);
        assert!(!pong_fp.overlaps(&Footprint {
            machines: 0b1,
            ..Footprint::default()
        }));
    }
}
