//! Seeded random-walk testing — a cheap complement to systematic search,
//! useful for quick smoke checks and for cross-validating the systematic
//! strategies in tests.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use p_semantics::ExecOutcome;

use crate::error::CheckerError;
use crate::explore::{Report, Verifier};
use crate::fingerprint::Fingerprint;
use crate::stats::ExplorationStats;
use crate::trace::{Counterexample, TraceStep};

impl Verifier<'_> {
    /// Runs `walks` random executions of up to `max_steps` scheduler
    /// decisions each, resolving scheduling and ghost choices with a
    /// deterministic RNG seeded by `seed`.
    ///
    /// Returns at the first violation; otherwise reports the states
    /// touched. Random walks are *not* exhaustive — `complete` is always
    /// `false` unless a walk ends with no enabled machines everywhere.
    ///
    /// # Panics
    ///
    /// Panics on a fatal [`CheckerError`] (a corrupt lowering — an engine
    /// bug, not a property violation). Use [`Verifier::try_check_random`]
    /// to handle it.
    pub fn check_random(&self, seed: u64, walks: usize, max_steps: usize) -> Report {
        self.try_check_random(seed, walks, max_steps)
            .expect("random-walk search failed; use try_check_random to handle errors")
    }

    /// [`Verifier::check_random`], surfacing fatal semantics errors
    /// instead of panicking.
    pub fn try_check_random(
        &self,
        seed: u64,
        walks: usize,
        max_steps: usize,
    ) -> Result<Report, CheckerError> {
        let engine = self.engine();
        let start = Instant::now();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut stats = ExplorationStats::default();
        let mut seen = std::collections::HashSet::new();

        for _ in 0..walks {
            let mut config = engine.initial_config();
            let mut trace: Vec<TraceStep> = Vec::new();
            seen.insert(Fingerprint::from_u128(config.digest()));

            for depth in 0..max_steps {
                stats.max_depth = stats.max_depth.max(depth);
                let enabled = engine.enabled_machines(&config);
                if enabled.is_empty() {
                    break;
                }
                let id = enabled[rng.gen_range(0..enabled.len())];
                let mut recorded: Vec<bool> = Vec::new();
                let result = {
                    let mut chooser = || {
                        let bit = rng.gen_bool(0.5);
                        recorded.push(bit);
                        bit
                    };
                    engine.run_machine(&mut config, id, &mut chooser, self.options().granularity)?
                };
                stats.transitions += 1;
                let step = TraceStep::from_run(self.program(), id, &result, recorded);
                trace.push(step);
                if let ExecOutcome::Error(e) = &result.outcome {
                    stats.unique_states = seen.len();
                    stats.duration = start.elapsed();
                    return Ok(Report {
                        counterexample: Some(Counterexample {
                            error: e.clone(),
                            trace,
                        }),
                        stats,
                        complete: false,
                        interrupted: false,
                    });
                }
                seen.insert(Fingerprint::from_u128(config.digest()));
            }
        }

        stats.unique_states = seen.len();
        stats.duration = start.elapsed();
        Ok(Report {
            counterexample: None,
            stats,
            complete: false,
            interrupted: false,
        })
    }
}
