//! Exploration statistics — the quantities reported in Figures 7 and 8 of
//! the paper (states explored, time, memory).

use std::fmt;
use std::time::Duration;

/// Sampled per-phase attribution of exploration time, in nanoseconds.
///
/// Filled by the exhaustive explorers from a 1-in-N task sample scaled
/// back to the whole run (see `crate::phase`), so each figure is an
/// estimate of where wall-clock time went rather than an exact meter:
/// `exec` is the interpreter/compiled machine runs, `digest` the
/// incremental fingerprint maintenance, `clone` the candidate
/// configuration derivation (arena priming), `canon` the symmetry
/// canonicalization, and `table` the visited-set/parent-map admission.
/// The phases deliberately do not sum to the run duration — enabled-set
/// computation, scheduling and bookkeeping are unattributed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseNanos {
    /// Machine execution (interpreter or compiled stepper).
    pub exec: u64,
    /// Incremental digest/fingerprint maintenance.
    pub digest: u64,
    /// Candidate configuration cloning/priming.
    pub clone: u64,
    /// Symmetry canonicalization.
    pub canon: u64,
    /// Visited-table/parent-map admission and the bookkeeping it
    /// triggers (parent edges, frontier pushes).
    pub table: u64,
}

impl PhaseNanos {
    /// Adds another sample's nanoseconds phase-wise.
    pub fn add(&mut self, other: &PhaseNanos) {
        self.exec += other.exec;
        self.digest += other.digest;
        self.clone += other.clone;
        self.canon += other.canon;
        self.table += other.table;
    }

    /// Total attributed nanoseconds across all phases.
    pub fn total(&self) -> u64 {
        self.exec + self.digest + self.clone + self.canon + self.table
    }
}

/// Statistics of one exploration run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExplorationStats {
    /// Unique global configurations visited.
    pub unique_states: usize,
    /// Atomic machine runs executed (edges of the exploration graph,
    /// including re-visits).
    pub transitions: usize,
    /// Deepest path (in atomic runs) reached from the initial state.
    pub max_depth: usize,
    /// Wall-clock exploration time.
    pub duration: Duration,
    /// Total bytes of canonical state encodings stored — the analog of the
    /// memory column in Figure 8.
    pub stored_bytes: usize,
    /// True if a bound (states, depth, delays) cut the exploration short.
    pub truncated: bool,
    /// Longest input queue observed in any visited configuration — a
    /// flooding diagnostic (the ⊕ rule bounds per-payload duplicates, not
    /// distinct payloads).
    pub max_queue_seen: usize,
    /// Visited configurations with no enabled machine (the system is
    /// quiescent there).
    pub quiescent_states: usize,
    /// Quiescent configurations that still hold undelivered events (every
    /// pending event is deferred) — potential lost-work states, the
    /// safety-level shadow of the second liveness property.
    pub stuck_states: usize,
    /// Transitions whose successor was already in the visited set — the
    /// dedup hit count. `dedup_hits / transitions` is the share of
    /// exploration effort spent re-deriving known states.
    pub dedup_hits: usize,
    /// Machine runs skipped by sleep-set POR (counted per skipped
    /// enabled machine at a state, zero with POR off).
    pub sleep_pruned: usize,
    /// Successors merged with a *symmetric* (id-permuted) visited state
    /// rather than an identical one — the extra dedup the canonical
    /// fingerprint buys (zero with symmetry reduction off).
    pub symmetry_merges: usize,
    /// Fingerprints resident in the disk-spilled cold tier at the end of
    /// the run (zero without `--mem-limit`). `unique_states` already
    /// includes these — this counts where they live, so the hot-tier
    /// share is `unique_states - spilled_states` and `stored_bytes`
    /// honestly reports RAM only.
    pub spilled_states: usize,
    /// Bytes written to spill files over the run (visited + parent
    /// runs, merges included). An I/O-activity counter: it describes
    /// this process, so a resumed run reports its own spill traffic.
    pub spill_bytes: u64,
    /// Visited/parent lookups answered from the cold tier.
    pub cold_hits: u64,
    /// Sampled per-phase time attribution (all zero for engines that
    /// do not meter their hot loop).
    pub phases: PhaseNanos,
}

impl ExplorationStats {
    /// Approximate memory in mebibytes.
    pub fn stored_mib(&self) -> f64 {
        self.stored_bytes as f64 / (1024.0 * 1024.0)
    }

    /// Folds another worker's statistics into this one (parallel
    /// engine): additive counters sum, path/queue maxima take the max,
    /// truncation flags OR. `unique_states`/`stored_bytes` sum too, but
    /// parallel workers report those as zero — the shared visited table
    /// owns the authoritative counts, assigned after the merge.
    pub fn merge(&mut self, other: &ExplorationStats) {
        self.unique_states += other.unique_states;
        self.transitions += other.transitions;
        self.stored_bytes += other.stored_bytes;
        self.quiescent_states += other.quiescent_states;
        self.stuck_states += other.stuck_states;
        self.dedup_hits += other.dedup_hits;
        self.sleep_pruned += other.sleep_pruned;
        self.symmetry_merges += other.symmetry_merges;
        self.spilled_states += other.spilled_states;
        self.spill_bytes += other.spill_bytes;
        self.cold_hits += other.cold_hits;
        self.phases.add(&other.phases);
        self.max_depth = self.max_depth.max(other.max_depth);
        self.max_queue_seen = self.max_queue_seen.max(other.max_queue_seen);
        self.duration = self.duration.max(other.duration);
        self.truncated |= other.truncated;
    }

    /// States visited per second.
    pub fn states_per_second(&self) -> f64 {
        let secs = self.duration.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.unique_states as f64 / secs
        }
    }
}

impl fmt::Display for ExplorationStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} states, {} transitions, depth {}, {:.2?}, {:.2} MiB{}",
            self.unique_states,
            self.transitions,
            self.max_depth,
            self.duration,
            self.stored_mib(),
            if self.truncated { " (truncated)" } else { "" }
        )?;
        if self.spilled_states > 0 {
            write!(f, ", {} spilled", self.spilled_states)?;
        }
        if self.phases.total() > 0 {
            let ms = |n: u64| n as f64 / 1e6;
            write!(
                f,
                " [exec {:.0}ms, digest {:.0}ms, clone {:.0}ms, canon {:.0}ms, table {:.0}ms]",
                ms(self.phases.exec),
                ms(self.phases.digest),
                ms(self.phases.clone),
                ms(self.phases.canon),
                ms(self.phases.table),
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_counts() {
        let s = ExplorationStats {
            unique_states: 10,
            transitions: 20,
            max_depth: 5,
            duration: Duration::from_millis(3),
            stored_bytes: 2048,
            truncated: true,
            max_queue_seen: 4,
            quiescent_states: 1,
            stuck_states: 0,
            dedup_hits: 6,
            sleep_pruned: 2,
            symmetry_merges: 0,
            spilled_states: 0,
            spill_bytes: 0,
            cold_hits: 0,
            phases: PhaseNanos::default(),
        };
        let text = s.to_string();
        assert!(text.contains("10 states"));
        assert!(text.contains("truncated"));
        assert!(!text.contains("spilled"), "{text}");
        let spilling = ExplorationStats {
            spilled_states: 7,
            ..s
        };
        assert!(spilling.to_string().ends_with(", 7 spilled"));
    }

    #[test]
    fn merge_sums_counters_and_maxes_maxima() {
        let mut a = ExplorationStats {
            unique_states: 0,
            transitions: 7,
            max_depth: 3,
            duration: Duration::from_millis(5),
            stored_bytes: 0,
            truncated: false,
            max_queue_seen: 2,
            quiescent_states: 1,
            stuck_states: 0,
            dedup_hits: 4,
            sleep_pruned: 1,
            symmetry_merges: 2,
            spilled_states: 10,
            spill_bytes: 160,
            cold_hits: 2,
            phases: PhaseNanos {
                exec: 5,
                digest: 4,
                clone: 3,
                canon: 2,
                table: 1,
            },
        };
        let b = ExplorationStats {
            unique_states: 0,
            transitions: 5,
            max_depth: 9,
            duration: Duration::from_millis(2),
            stored_bytes: 0,
            truncated: true,
            max_queue_seen: 1,
            quiescent_states: 2,
            stuck_states: 1,
            dedup_hits: 3,
            sleep_pruned: 2,
            symmetry_merges: 5,
            spilled_states: 5,
            spill_bytes: 80,
            cold_hits: 1,
            phases: PhaseNanos {
                exec: 10,
                digest: 10,
                clone: 10,
                canon: 10,
                table: 10,
            },
        };
        a.merge(&b);
        assert_eq!(a.transitions, 12);
        assert_eq!(a.spilled_states, 15);
        assert_eq!(a.spill_bytes, 240);
        assert_eq!(a.cold_hits, 3);
        assert_eq!(
            a.phases,
            PhaseNanos {
                exec: 15,
                digest: 14,
                clone: 13,
                canon: 12,
                table: 11,
            }
        );
        assert_eq!(a.dedup_hits, 7);
        assert_eq!(a.sleep_pruned, 3);
        assert_eq!(a.symmetry_merges, 7);
        assert_eq!(a.max_depth, 9);
        assert_eq!(a.max_queue_seen, 2);
        assert_eq!(a.quiescent_states, 3);
        assert_eq!(a.stuck_states, 1);
        assert_eq!(a.duration, Duration::from_millis(5));
        assert!(a.truncated);
    }

    #[test]
    fn rates_handle_zero_duration() {
        let s = ExplorationStats::default();
        assert_eq!(s.states_per_second(), 0.0);
        assert_eq!(s.stored_mib(), 0.0);
    }
}
