//! Byte-reader helpers for the checkpoint and spill codecs.
//!
//! Same discipline as the semantics-side readers: little-endian
//! scalars consumed from a shrinking slice, `None` on underflow, never
//! a panic — checkpoint files are untrusted input.

/// Splits `n` bytes off the front of `buf`, or `None` on underflow.
pub(crate) fn take<'a>(buf: &mut &'a [u8], n: usize) -> Option<&'a [u8]> {
    if buf.len() < n {
        return None;
    }
    let (head, tail) = buf.split_at(n);
    *buf = tail;
    Some(head)
}

/// Reads one byte.
pub(crate) fn read_u8(buf: &mut &[u8]) -> Option<u8> {
    take(buf, 1).map(|b| b[0])
}

/// Reads a little-endian `u32`.
pub(crate) fn read_u32(buf: &mut &[u8]) -> Option<u32> {
    take(buf, 4).map(|b| u32::from_le_bytes(b.try_into().expect("4 bytes")))
}

/// Reads a little-endian `u64`.
pub(crate) fn read_u64(buf: &mut &[u8]) -> Option<u64> {
    take(buf, 8).map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")))
}

/// Reads a little-endian `u128`.
pub(crate) fn read_u128(buf: &mut &[u8]) -> Option<u128> {
    take(buf, 16).map(|b| u128::from_le_bytes(b.try_into().expect("16 bytes")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn readers_consume_in_order() {
        let mut bytes = Vec::new();
        bytes.push(3u8);
        bytes.extend_from_slice(&7u32.to_le_bytes());
        bytes.extend_from_slice(&9u64.to_le_bytes());
        bytes.extend_from_slice(&11u128.to_le_bytes());
        let mut cur = &bytes[..];
        assert_eq!(read_u8(&mut cur), Some(3));
        assert_eq!(read_u32(&mut cur), Some(7));
        assert_eq!(read_u64(&mut cur), Some(9));
        assert_eq!(read_u128(&mut cur), Some(11));
        assert!(cur.is_empty());
        assert_eq!(read_u8(&mut cur), None);
    }
}
