//! Sampled phase attribution for the exhaustive explorers' hot loop.
//!
//! Metering every transition with `Instant::now()` pairs would cost a
//! measurable fraction of the loop it is trying to measure (~10 clock
//! reads per transition against a sub-microsecond transition budget).
//! Instead the explorers clock *one task in [`SAMPLE_EVERY`]* end to
//! end and scale the sampled nanoseconds back up when folding them into
//! [`crate::PhaseNanos`]. Tasks are statistically interchangeable at
//! the scale where the numbers matter (hundreds of thousands of
//! expansions), so the scaled estimate converges on the true split
//! while keeping the metering overhead under ~2%.

use std::time::Instant;

use crate::stats::PhaseNanos;

/// One metered task in every `SAMPLE_EVERY` is clocked; the rest run
/// untimed. Scaling by the same factor makes the estimate unbiased as
/// long as task costs are not correlated with their index modulo the
/// period — true for depth-first and work-stealing orders alike.
const SAMPLE_EVERY: u64 = 32;

/// An attributable phase of one exploration step.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Phase {
    /// Machine execution (interpreter or compiled stepper).
    Exec,
    /// Incremental digest / fingerprint maintenance.
    Digest,
    /// Candidate configuration cloning/priming.
    Clone,
    /// Symmetry canonicalization.
    Canon,
    /// Visited-table and parent-map admission.
    Table,
}

/// The per-loop sampler: armed for 1-in-[`SAMPLE_EVERY`] tasks, a
/// no-op otherwise. Accumulates raw sampled nanoseconds and hands out
/// scaled totals via [`PhaseTimes::drain_into`].
#[derive(Debug, Default)]
pub(crate) struct PhaseTimes {
    nanos: [u64; 5],
    active: bool,
}

impl PhaseTimes {
    /// Arms or disarms the sampler for the task with the given ordinal.
    pub(crate) fn begin_task(&mut self, index: u64) {
        self.active = index.is_multiple_of(SAMPLE_EVERY);
    }

    /// Starts timing a phase section; `None` when the sampler is
    /// disarmed (the common case, costing one branch).
    #[inline]
    pub(crate) fn start(&self) -> Option<Instant> {
        if self.active {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Closes a phase section opened by [`PhaseTimes::start`].
    #[inline]
    pub(crate) fn stop(&mut self, phase: Phase, started: Option<Instant>) {
        if let Some(t) = started {
            self.nanos[phase as usize] += t.elapsed().as_nanos() as u64;
        }
    }

    /// Folds the sampled nanoseconds, scaled back to the full run, into
    /// `out` and resets the sampler's accumulator.
    pub(crate) fn drain_into(&mut self, out: &mut PhaseNanos) {
        let [exec, digest, clone, canon, table] = self.nanos;
        out.add(&PhaseNanos {
            exec: exec * SAMPLE_EVERY,
            digest: digest * SAMPLE_EVERY,
            clone: clone * SAMPLE_EVERY,
            canon: canon * SAMPLE_EVERY,
            table: table * SAMPLE_EVERY,
        });
        self.nanos = [0; 5];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_sampler_records_nothing() {
        let mut p = PhaseTimes::default();
        p.begin_task(1);
        let t = p.start();
        assert!(t.is_none());
        p.stop(Phase::Exec, t);
        let mut out = PhaseNanos::default();
        p.drain_into(&mut out);
        assert_eq!(out, PhaseNanos::default());
    }

    #[test]
    fn armed_sampler_scales_by_period() {
        let mut p = PhaseTimes::default();
        p.begin_task(SAMPLE_EVERY * 3);
        let t = p.start();
        assert!(t.is_some());
        std::thread::sleep(std::time::Duration::from_millis(2));
        p.stop(Phase::Digest, t);
        let mut out = PhaseNanos::default();
        p.drain_into(&mut out);
        assert!(out.digest >= 2_000_000 * SAMPLE_EVERY);
        assert_eq!(out.exec, 0);
        // Draining resets the accumulator.
        let mut again = PhaseNanos::default();
        p.drain_into(&mut again);
        assert_eq!(again, PhaseNanos::default());
    }
}
