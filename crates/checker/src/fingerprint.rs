//! Collision-safe 128-bit state fingerprints.
//!
//! The explorers deduplicate states by fingerprint instead of storing
//! full canonical encodings. A 64-bit hash is unsound for that use: by
//! the birthday bound, a search visiting `n` states has collision
//! probability ≈ `n²/2⁶⁵`, so a 10⁷-state run silently merges distinct
//! states about once per 3 × 10⁵ runs — and a merged state both prunes a
//! reachable (possibly buggy) region while still reporting
//! `complete: true`, and corrupts the fingerprint-keyed parent map used
//! for trace reconstruction. At 128 bits the same run's collision
//! probability is ≈ 10¹⁴ × smaller than the chance of a cosmic-ray bit
//! flip, which is the usual explicit-state-checker standard (cf. SPIN's
//! hash-compaction analysis).
//!
//! The hash is SipHash-2-4 with the 128-bit output extension, keyed with
//! fixed constants so fingerprints are stable across threads, runs and
//! processes — parallel workers, replay tooling and persisted reports
//! all agree on a state's identity. (`std`'s `DefaultHasher` guarantees
//! neither algorithm nor cross-run stability.)

use std::fmt;

/// Fixed SipHash key. Any fixed key works; fingerprints only need to be
/// deterministic, not adversary-proof — P programs do not choose their
/// own state encodings adaptively.
const KEY0: u64 = 0x0706_0504_0302_0100;
const KEY1: u64 = 0x0f0e_0d0c_0b0a_0908;

/// A 128-bit state fingerprint, used as the visited-set and parent-map
/// key by every exploration strategy.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(u128);

impl Fingerprint {
    /// Fingerprints a canonical state encoding.
    pub fn of(bytes: &[u8]) -> Fingerprint {
        Fingerprint(siphash_2_4_128(KEY0, KEY1, bytes))
    }

    /// The raw 128-bit value.
    pub fn as_u128(self) -> u128 {
        self.0
    }

    /// Shard index derived from the fingerprint's top bits (the prefix),
    /// for `shards` equal-sized shards. Because SipHash output bits are
    /// uniform, prefix sharding balances shards without a second hash.
    pub(crate) fn shard(self, shards: usize) -> usize {
        debug_assert!(shards.is_power_of_two());
        (self.0 >> (128 - shards.trailing_zeros())) as usize
    }
}

impl fmt::Debug for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fingerprint({self})")
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

#[inline]
fn sip_rounds(v: &mut [u64; 4], n: usize) {
    for _ in 0..n {
        v[0] = v[0].wrapping_add(v[1]);
        v[1] = v[1].rotate_left(13);
        v[1] ^= v[0];
        v[0] = v[0].rotate_left(32);
        v[2] = v[2].wrapping_add(v[3]);
        v[3] = v[3].rotate_left(16);
        v[3] ^= v[2];
        v[0] = v[0].wrapping_add(v[3]);
        v[3] = v[3].rotate_left(21);
        v[3] ^= v[0];
        v[2] = v[2].wrapping_add(v[1]);
        v[1] = v[1].rotate_left(17);
        v[1] ^= v[2];
        v[2] = v[2].rotate_left(32);
    }
}

/// SipHash-2-4 with the 128-bit output extension (the `SipHash-128` of
/// the reference implementation): the low word is the standard 64-bit
/// digest computed with the `0xee` initialization/finalization tweaks,
/// the high word comes from four extra rounds after XORing `0xdd` into
/// `v1`.
fn siphash_2_4_128(k0: u64, k1: u64, data: &[u8]) -> u128 {
    let mut v = [
        k0 ^ 0x736f_6d65_7073_6575, // "somepseu"
        k1 ^ 0x646f_7261_6e64_6f6d, // "dorandom"
        k0 ^ 0x6c79_6765_6e65_7261, // "lygenera"
        k1 ^ 0x7465_6462_7974_6573, // "tedbytes"
    ];
    v[1] ^= 0xee;

    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        let m = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        v[3] ^= m;
        sip_rounds(&mut v, 2);
        v[0] ^= m;
    }
    let rest = chunks.remainder();
    let mut last = [0u8; 8];
    last[..rest.len()].copy_from_slice(rest);
    last[7] = data.len() as u8;
    let m = u64::from_le_bytes(last);
    v[3] ^= m;
    sip_rounds(&mut v, 2);
    v[0] ^= m;

    v[2] ^= 0xee;
    sip_rounds(&mut v, 4);
    let lo = v[0] ^ v[1] ^ v[2] ^ v[3];
    v[1] ^= 0xdd;
    sip_rounds(&mut v, 4);
    let hi = v[0] ^ v[1] ^ v[2] ^ v[3];
    (lo as u128) | ((hi as u128) << 64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    /// The digest as the reference implementation's 16 output bytes
    /// (low word little-endian first, then the high word).
    fn digest_bytes(data: &[u8]) -> [u8; 16] {
        let d = siphash_2_4_128(KEY0, KEY1, data);
        let mut out = [0u8; 16];
        out[..8].copy_from_slice(&(d as u64).to_le_bytes());
        out[8..].copy_from_slice(&((d >> 64) as u64).to_le_bytes());
        out
    }

    #[test]
    fn reference_test_vectors() {
        // `vectors_sip128` of the SipHash reference implementation
        // (github.com/veorq/SipHash): key 000102…0f, input 00 01 02 …
        // of increasing length.
        let expected: [[u8; 16]; 4] = [
            [
                0xa3, 0x81, 0x7f, 0x04, 0xba, 0x25, 0xa8, 0xe6, 0x6d, 0xf6, 0x72, 0x14, 0xc7, 0x55,
                0x02, 0x93,
            ],
            [
                0xda, 0x87, 0xc1, 0xd8, 0x6b, 0x99, 0xaf, 0x44, 0x34, 0x76, 0x59, 0x11, 0x9b, 0x22,
                0xfc, 0x45,
            ],
            [
                0x81, 0x77, 0x22, 0x8d, 0xa4, 0xa4, 0x5d, 0xc7, 0xfc, 0xa3, 0x8b, 0xde, 0xf6, 0x0a,
                0xff, 0xe4,
            ],
            [
                0x9c, 0x70, 0xb6, 0x0c, 0x52, 0x67, 0xa9, 0x4e, 0x5f, 0x33, 0xb6, 0xb0, 0x29, 0x85,
                0xed, 0x51,
            ],
        ];
        let input: Vec<u8> = (0..4).collect();
        for (len, want) in expected.iter().enumerate() {
            assert_eq!(
                &digest_bytes(&input[..len]),
                want,
                "SipHash-2-4-128 vector for input length {len}"
            );
        }
    }

    #[test]
    fn deterministic_across_calls() {
        let data = b"the same bytes fingerprint identically";
        assert_eq!(Fingerprint::of(data), Fingerprint::of(data));
    }

    #[test]
    fn distinct_short_inputs_never_collide() {
        // Exhaustive over all 1- and 2-byte inputs plus the empty input:
        // any collision here would be an implementation bug, not bad luck.
        let mut seen = HashSet::new();
        assert!(seen.insert(Fingerprint::of(&[])));
        for a in 0..=255u8 {
            assert!(seen.insert(Fingerprint::of(&[a])));
            for b in 0..=255u8 {
                assert!(seen.insert(Fingerprint::of(&[a, b])));
            }
        }
        assert_eq!(seen.len(), 1 + 256 + 256 * 256);
    }

    #[test]
    fn length_extension_is_distinguished() {
        // Trailing zero bytes must change the digest (the length byte in
        // the final block guards the padding).
        assert_ne!(Fingerprint::of(&[0]), Fingerprint::of(&[0, 0]));
        assert_ne!(Fingerprint::of(&[]), Fingerprint::of(&[0]));
        // And an 8-byte boundary does not fuse with its neighbor.
        assert_ne!(Fingerprint::of(&[1; 8]), Fingerprint::of(&[1; 9]));
    }

    #[test]
    fn single_bit_flip_avalanches() {
        let base = Fingerprint::of(b"avalanche-probe").as_u128();
        let mut data = *b"avalanche-probe";
        data[3] ^= 1;
        let flipped = Fingerprint::of(&data).as_u128();
        let differing = (base ^ flipped).count_ones();
        // A good 128-bit hash flips ~64 output bits; anything in a wide
        // band around that rules out gross mixing bugs.
        assert!((32..=96).contains(&differing), "{differing} bits differ");
    }

    #[test]
    fn shard_uses_prefix_and_stays_in_range() {
        for i in 0..1000u32 {
            let fp = Fingerprint::of(&i.to_le_bytes());
            let s = fp.shard(64);
            assert!(s < 64);
            assert_eq!(s, (fp.as_u128() >> 122) as usize);
        }
        // All of a 64-shard table gets populated by uniform output.
        let hit: HashSet<usize> = (0..4096u32)
            .map(|i| Fingerprint::of(&i.to_le_bytes()).shard(64))
            .collect();
        assert_eq!(hit.len(), 64);
    }
}
