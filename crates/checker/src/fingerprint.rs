//! Collision-safe 128-bit state fingerprints.
//!
//! The explorers deduplicate states by fingerprint instead of storing
//! full canonical encodings. A 64-bit hash is unsound for that use: by
//! the birthday bound, a search visiting `n` states has collision
//! probability ≈ `n²/2⁶⁵`, so a 10⁷-state run silently merges distinct
//! states about once per 3 × 10⁵ runs — and a merged state both prunes a
//! reachable (possibly buggy) region while still reporting
//! `complete: true`, and corrupts the fingerprint-keyed parent map used
//! for trace reconstruction. At 128 bits the same run's collision
//! probability is ≈ 10¹⁴ × smaller than the chance of a cosmic-ray bit
//! flip, which is the usual explicit-state-checker standard (cf. SPIN's
//! hash-compaction analysis).
//!
//! The hash is SipHash-2-4 with the 128-bit output extension and a
//! fixed key ([`p_semantics::hash`], where the implementation and its
//! reference vectors live), so fingerprints are stable across threads,
//! runs and processes — parallel workers, replay tooling and persisted
//! reports all agree on a state's identity.
//!
//! Since the copy-on-write configuration refactor, the usual way to
//! fingerprint a configuration is [`Fingerprint::from_u128`] over
//! [`p_semantics::Config::digest`], which re-hashes only the machine
//! that just ran; [`Fingerprint::of`] hashes raw bytes and remains for
//! composite node keys (scheduler or fault annotations) and tests.

use std::fmt;

use p_semantics::hash::fingerprint128;

/// A 128-bit state fingerprint, used as the visited-set and parent-map
/// key by every exploration strategy.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(u128);

impl Fingerprint {
    /// Fingerprints a canonical state encoding.
    pub fn of(bytes: &[u8]) -> Fingerprint {
        Fingerprint(fingerprint128(bytes))
    }

    /// Wraps an already-computed 128-bit digest (the incremental
    /// [`p_semantics::Config::digest`]).
    pub fn from_u128(digest: u128) -> Fingerprint {
        Fingerprint(digest)
    }

    /// The raw 128-bit value.
    pub fn as_u128(self) -> u128 {
        self.0
    }

    /// Shard index derived from the fingerprint's top bits (the prefix),
    /// for `shards` equal-sized shards. Because SipHash output bits are
    /// uniform, prefix sharding balances shards without a second hash.
    pub(crate) fn shard(self, shards: usize) -> usize {
        debug_assert!(shards.is_power_of_two());
        (self.0 >> (128 - shards.trailing_zeros())) as usize
    }
}

/// Hash-map hasher for [`Fingerprint`] keys: the fingerprint is already
/// a uniform SipHash-2-4-128 output, so re-hashing it with the standard
/// library's SipHash-1-3 is pure overhead. This hasher passes the low 64
/// bits through unchanged — the same trust in SipHash uniformity the
/// shard router ([`Fingerprint::shard`]) already relies on (it uses the
/// *high* bits, so shard choice and bucket choice stay independent).
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct FpHasher(u64);

impl std::hash::Hasher for FpHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("FpHasher only accepts Fingerprint keys (write_u128)");
    }

    fn write_u128(&mut self, n: u128) {
        self.0 = n as u64;
    }
}

/// `BuildHasher` for [`FpHasher`].
pub(crate) type FpBuildHasher = std::hash::BuildHasherDefault<FpHasher>;

/// A `HashMap` keyed by fingerprints, skipping the redundant re-hash.
pub(crate) type FpHashMap<V> = std::collections::HashMap<Fingerprint, V, FpBuildHasher>;

/// A `HashSet` of fingerprints, skipping the redundant re-hash.
pub(crate) type FpHashSet = std::collections::HashSet<Fingerprint, FpBuildHasher>;

impl fmt::Debug for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fingerprint({self})")
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn deterministic_across_calls() {
        let data = b"the same bytes fingerprint identically";
        assert_eq!(Fingerprint::of(data), Fingerprint::of(data));
    }

    #[test]
    fn from_u128_round_trips() {
        let fp = Fingerprint::of(b"probe");
        assert_eq!(Fingerprint::from_u128(fp.as_u128()), fp);
    }

    #[test]
    fn distinct_short_inputs_never_collide() {
        // Exhaustive over all 1- and 2-byte inputs plus the empty input:
        // any collision here would be an implementation bug, not bad luck.
        let mut seen = HashSet::new();
        assert!(seen.insert(Fingerprint::of(&[])));
        for a in 0..=255u8 {
            assert!(seen.insert(Fingerprint::of(&[a])));
            for b in 0..=255u8 {
                assert!(seen.insert(Fingerprint::of(&[a, b])));
            }
        }
        assert_eq!(seen.len(), 1 + 256 + 256 * 256);
    }

    #[test]
    fn single_bit_flip_avalanches() {
        let base = Fingerprint::of(b"avalanche-probe").as_u128();
        let mut data = *b"avalanche-probe";
        data[3] ^= 1;
        let flipped = Fingerprint::of(&data).as_u128();
        let differing = (base ^ flipped).count_ones();
        // A good 128-bit hash flips ~64 output bits; anything in a wide
        // band around that rules out gross mixing bugs.
        assert!((32..=96).contains(&differing), "{differing} bits differ");
    }

    #[test]
    fn canonical_digest_reference_vectors() {
        // Pins the symmetry-reduced digest of a fixed three-machine ring
        // so the canonical encoding cannot drift silently: sequential
        // and parallel engines (and a resumed process) must assign the
        // same canonical key to the same orbit. A deliberate encoding
        // revision should update the constant alongside its changelog
        // entry.
        use p_ast::{ProgramBuilder, Ty};
        use p_semantics::{canonical_digest, lower, Config, Value};

        let mut b = ProgramBuilder::new();
        b.event_with("ping", Ty::Id);
        let mut m = b.machine("M");
        m.var("peer", Ty::Id);
        m.var("n", Ty::Int);
        m.state("A");
        m.finish();
        let p = lower(&b.finish("M")).unwrap();

        let mut c = Config::default();
        let ids: Vec<_> = (0..3).map(|_| c.allocate(&p, p.main)).collect();
        for i in 0..3 {
            c.machine_mut(ids[i]).unwrap().locals[0] = Value::Machine(ids[(i + 1) % 3]);
        }
        // One distinguished machine, so rotating the ring moves concrete
        // content (the orbit has three distinct members).
        c.machine_mut(ids[0]).unwrap().locals[1] = Value::Int(7);
        let canonical = Fingerprint::from_u128(canonical_digest(&mut c));

        // Every rotation of the ring is a distinct concrete state in the
        // same orbit: concrete fingerprints differ, canonical key agrees.
        let mut sym = c.apply_permutation(&[1, 2, 0]);
        assert_ne!(
            Fingerprint::from_u128(sym.digest()),
            Fingerprint::from_u128(c.digest())
        );
        assert_eq!(
            Fingerprint::from_u128(canonical_digest(&mut sym)),
            canonical
        );

        // Revised when the digest fold became the position-weighted
        // linear (delta-maintainable) combine and slot digests moved to
        // reduced-round SipHash-1-3; see DESIGN.md §15.
        assert_eq!(canonical.to_string(), "206b689f61670f16b0040254c3229fd7");
    }

    #[test]
    fn shard_uses_prefix_and_stays_in_range() {
        for i in 0..1000u32 {
            let fp = Fingerprint::of(&i.to_le_bytes());
            let s = fp.shard(64);
            assert!(s < 64);
            assert_eq!(s, (fp.as_u128() >> 122) as usize);
        }
        // All of a 64-shard table gets populated by uniform output.
        let hit: HashSet<usize> = (0..4096u32)
            .map(|i| Fingerprint::of(&i.to_le_bytes()).shard(64))
            .collect();
        assert_eq!(hit.len(), 64);
    }
}
