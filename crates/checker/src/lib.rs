//! Systematic testing of P programs — the verification side of the paper
//! (§5), built on the shared operational-semantics engine of
//! `p-semantics`.
//!
//! The paper validates P programs by interpreting their operational
//! semantics inside the explicit-state model checker Zing. This crate
//! plays Zing's role: it enumerates the program's two sources of
//! nondeterminism — which machine runs at each send/create scheduling
//! point, and the ghost machines' `*` choices — while deduplicating
//! states, and it checks the four error transitions of Figure 6
//! (assertion failures, sends to ⊥, sends to deleted machines, and
//! unhandled events).
//!
//! Strategies:
//!
//! * [`Verifier::check_exhaustive`] — full depth-first search (with depth
//!   and state bounds), optionally with sleep-set partial-order reduction
//!   ([`CheckerOptions::por`]): same states and verdict, fewer redundant
//!   transitions between independent machine runs;
//! * [`Verifier::check_exhaustive_parallel`] — the same search with N
//!   work-stealing worker threads over a sharded visited set; same
//!   `unique_states` and verdict as the sequential engine;
//! * [`Verifier::check_delay_bounded`] — the paper's novel *delay-bounded
//!   causal scheduler* (§5): with budget `d = 0` it explores exactly the
//!   causal schedule the runtime executes, and increasing `d` adds
//!   schedules that diverge from causal order in at most `d` places;
//! * [`Verifier::check_random`] — seeded random walks;
//! * [`Verifier::check_with_faults`] — exhaustive search plus a bounded
//!   *environment-fault scheduler* that may drop, duplicate, or delay
//!   queued events (this reproduction's robustness extension: budget 0
//!   coincides with the fault-free search);
//! * [`Verifier::check_liveness`] — a bounded check of the two liveness
//!   properties of §3.2 (this reproduction's extension; the paper lists
//!   liveness verification as future work).
//!
//! # Examples
//!
//! ```
//! let src = r#"
//!     event req;
//!     machine Server { state Idle { } }
//!     ghost machine Client {
//!         var server : id;
//!         state Init {
//!             entry {
//!                 server := new Server();
//!                 if (*) { send(server, req); }
//!             }
//!         }
//!     }
//!     main Client();
//! "#;
//! let program = p_parser::parse(src).unwrap();
//! let lowered = p_semantics::lower(&program).unwrap();
//! let verifier = p_checker::Verifier::new(&lowered);
//! // `Server.Idle` never handles `req` → unhandled-event violation.
//! let report = verifier.check_exhaustive();
//! assert!(!report.passed());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod checkpoint;
mod delay;
mod engine;
mod error;
mod explore;
mod fault;
mod fingerprint;
mod liveness;
mod phase;
mod por;
mod random;
mod replay;
mod stats;
mod store;
mod succ;
mod trace;
mod wire;

pub use checkpoint::CheckpointPolicy;
pub use delay::{DelayReport, SchedulerState};
pub use error::CheckerError;
pub use explore::{CheckerOptions, Report, Verifier};
pub use fault::{FaultDecision, FaultKind, FaultReport, FaultScheduler};
pub use fingerprint::Fingerprint;
pub use liveness::{LivenessReport, LivenessViolation};
pub use replay::ReplayOutcome;
pub use stats::{ExplorationStats, PhaseNanos};
pub use trace::{Counterexample, TraceStep};

#[cfg(test)]
mod tests;
