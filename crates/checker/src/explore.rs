//! Exhaustive explicit-state search (the Zing-substrate analog) and the
//! option/report types shared by all strategies.
//!
//! Two engines cover the exhaustive strategy: a sequential depth-first
//! search, and a parallel work-stealing search over a sharded visited
//! set ([`Verifier::check_exhaustive_parallel`]). Both deduplicate
//! states by collision-safe 128-bit [`Fingerprint`]s and agree on
//! `unique_states` and the verdict; only the particular counterexample
//! trace may differ under parallelism (first violation found wins).

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

use parking_lot::Mutex;

use p_semantics::{
    canonical_digest, Config, Engine, ExecOutcome, ForeignEnv, Granularity, LoweredProgram,
    MachineId, PError,
};

use p_telemetry::Telemetry;

use crate::engine::{
    Admit, AdmitSleep, AdmitSleepSym, AdmitSym, BoundedSet, Frontier, ParentMap, SharedCounters,
    SharedTable,
};
use crate::fingerprint::{Fingerprint, FpHashMap};
use crate::por::{Por, SleepSet};
use crate::stats::ExplorationStats;
use crate::trace::{Counterexample, TraceStep};

/// How often the exploration loops offer a progress snapshot to the
/// telemetry layer (further throttled there by wall-clock interval).
#[cfg(feature = "telemetry")]
const SNAPSHOT_EVERY_TASKS: usize = 256;

/// Bounds and knobs for exploration.
#[derive(Debug, Clone)]
pub struct CheckerOptions {
    /// Stop after visiting this many unique states.
    pub max_states: usize,
    /// Depth bound: maximum scheduler decisions along one path
    /// (the paper's depth-bounding baseline, §1).
    pub max_depth: usize,
    /// Scheduling granularity; [`Granularity::Fine`] only for the
    /// atomicity-reduction ablation.
    pub granularity: Granularity,
    /// Small-step budget per atomic run (detects private divergence).
    pub fuel: usize,
    /// Worker threads for the exhaustive search. `0` or `1` selects the
    /// sequential depth-first engine; `n > 1` selects the parallel
    /// work-stealing engine with `n` workers.
    pub jobs: usize,
    /// Sleep-set partial-order reduction for the exhaustive engines
    /// (sequential and parallel). Sound for safety: it prunes redundant
    /// *transitions* between independent machine runs, never states —
    /// every reachable state (and hence every reachable error) is still
    /// visited, so the verdict and `unique_states` match the unreduced
    /// search; only `transitions` shrinks. Ignored by the delay-bounded,
    /// fault, liveness and random strategies, whose node spaces are
    /// schedule-annotated. See DESIGN.md §10.
    pub por: bool,
    /// Symmetry reduction for the exhaustive engines (sequential and
    /// parallel): the visited set is keyed by a canonical fingerprint
    /// invariant under permutations of same-type machine ids
    /// ([`p_semantics::canonical_digest`]), so up to `k!` symmetric
    /// duplicates per group of `k` interchangeable machines collapse
    /// into one stored state. Sound for safety — two states merge only
    /// if an id permutation maps one exactly onto the other, so they
    /// have isomorphic futures and identical verdicts; exploration and
    /// counterexample traces stay concrete. `unique_states` counts
    /// orbits (canonical classes) in this mode. Composes with
    /// [`CheckerOptions::por`]; ignored by the delay-bounded, fault,
    /// liveness and random strategies. See DESIGN.md §12.
    pub symmetry: bool,
}

impl Default for CheckerOptions {
    fn default() -> CheckerOptions {
        CheckerOptions {
            max_states: 1_000_000,
            max_depth: 1_000_000,
            granularity: Granularity::Atomic,
            fuel: 100_000,
            jobs: 1,
            por: false,
            symmetry: false,
        }
    }
}

/// Outcome of a safety check.
#[derive(Debug, Clone)]
pub struct Report {
    /// The first violation found, with its schedule.
    pub counterexample: Option<Counterexample>,
    /// Exploration statistics.
    pub stats: ExplorationStats,
    /// Whether the reachable state space was fully covered (within the
    /// strategy's own bound, e.g. the delay budget).
    pub complete: bool,
}

impl Report {
    /// True when no violation was found.
    pub fn passed(&self) -> bool {
        self.counterexample.is_none()
    }
}

/// The model checker: systematic testing of a P program per §5.
///
/// # Examples
///
/// ```
/// let src = r#"
///     event done;
///     machine M {
///         var x : int;
///         state Init { entry { x := 1; assert(x == 1); } }
///     }
///     main M();
/// "#;
/// let program = p_parser::parse(src).unwrap();
/// let lowered = p_semantics::lower(&program).unwrap();
/// let verifier = p_checker::Verifier::new(&lowered);
/// let report = verifier.check_exhaustive();
/// assert!(report.passed());
/// assert!(report.complete);
/// ```
#[derive(Debug)]
pub struct Verifier<'p> {
    program: &'p LoweredProgram,
    foreign: ForeignEnv,
    options: CheckerOptions,
    telemetry: Telemetry,
}

impl<'p> Verifier<'p> {
    /// Creates a verifier with default options and no foreign functions.
    pub fn new(program: &'p LoweredProgram) -> Verifier<'p> {
        Verifier {
            program,
            foreign: ForeignEnv::empty(),
            options: CheckerOptions::default(),
            telemetry: Telemetry::disabled(),
        }
    }

    /// Supplies foreign-function implementations (which must be
    /// deterministic and pure for sound exploration).
    pub fn with_foreign(mut self, foreign: ForeignEnv) -> Verifier<'p> {
        self.foreign = foreign;
        self
    }

    /// Overrides the exploration options.
    pub fn with_options(mut self, options: CheckerOptions) -> Verifier<'p> {
        self.options = options;
        self
    }

    /// Attaches a telemetry handle. The exhaustive engines then record
    /// periodic [`p_telemetry::ExplorationSnapshot`]s (states/sec,
    /// frontier size, dedup hit rate, POR prunes, depth) through it and
    /// drive its progress meter. A disabled handle (the default) makes
    /// every hook a single predictable branch; with the `telemetry`
    /// cargo feature off, the hook sites are compiled out entirely.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Verifier<'p> {
        self.telemetry = telemetry;
        self
    }

    /// The attached telemetry handle (disabled unless set).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The options in effect.
    pub fn options(&self) -> &CheckerOptions {
        &self.options
    }

    /// The program under check.
    pub fn program(&self) -> &'p LoweredProgram {
        self.program
    }

    pub(crate) fn engine(&self) -> Engine<'p> {
        Engine::new(self.program, self.foreign.clone()).with_fuel(self.options.fuel)
    }

    /// Exhaustive search truncated at `max_depth` scheduler decisions —
    /// the plain depth-bounding baseline the paper contrasts with delay
    /// bounding (§1, §5).
    pub fn check_exhaustive_with_depth(&self, max_depth: usize) -> Report {
        let options = CheckerOptions {
            max_depth,
            ..self.options.clone()
        };
        Verifier {
            program: self.program,
            foreign: self.foreign.clone(),
            options,
            telemetry: self.telemetry.clone(),
        }
        .check_exhaustive()
    }

    /// Exhaustive search over all schedules and ghost choices,
    /// deduplicating states, up to the configured bounds.
    ///
    /// This enumerates *all* interleavings at send/create scheduling
    /// points — the baseline the delay-bounded scheduler is measured
    /// against. With [`CheckerOptions::jobs`] `> 1` the parallel
    /// work-stealing engine is used; otherwise a sequential depth-first
    /// search.
    pub fn check_exhaustive(&self) -> Report {
        if self.options.jobs > 1 {
            self.check_parallel(self.options.jobs)
        } else {
            self.check_sequential()
        }
    }

    /// Exhaustive search with `jobs` worker threads over a sharded
    /// visited set (work-stealing expansion, first-counterexample-wins
    /// shutdown). `jobs <= 1` falls back to the sequential engine.
    ///
    /// For a complete (non-truncated) run, `unique_states`, the
    /// verdict, and `transitions` are independent of `jobs`; the
    /// specific counterexample returned for a buggy program may differ
    /// between runs, but is always valid and replayable.
    pub fn check_exhaustive_parallel(&self, jobs: usize) -> Report {
        if jobs > 1 {
            self.check_parallel(jobs)
        } else {
            self.check_sequential()
        }
    }

    /// Sequential depth-first engine.
    fn check_sequential(&self) -> Report {
        // The safety search never reads `RunResult::dequeued`; skip the
        // per-run allocation.
        let engine = self.engine().with_dequeue_log(false);
        let start = Instant::now();
        let mut stats = ExplorationStats::default();
        let por = self.options.por.then(|| Por::new(self.program));
        let symmetry = self.options.symmetry;

        let mut init = engine.initial_config();
        let (init_digest, init_len) = init.digest_and_len();
        let init_fp = Fingerprint::from_u128(init_digest);

        let mut visited = BoundedSet::new(self.options.max_states);
        if symmetry {
            let init_key = Fingerprint::from_u128(canonical_digest(&mut init));
            visited.admit_sym(init_key, init_fp, init_len);
        } else {
            visited.admit(init_fp, init_len);
        }
        let mut parents = ParentMap::new();

        // Stack entries carry the sleep set the state is to be expanded
        // with and whether this is its first visit (`fresh`); with POR
        // off, the sleep set stays empty and every visit is fresh.
        let mut stack: Vec<(Config, Fingerprint, usize, SleepSet, bool)> =
            vec![(init, init_fp, 0, SleepSet::empty(), true)];
        let mut succs = Vec::new();
        // Concrete-fingerprint → canonical-key memo: most successors are
        // revisits of a concrete state already canonicalized, and
        // canonicalization costs far more than a hash lookup.
        let mut canon_cache: FpHashMap<Fingerprint> = FpHashMap::default();
        #[cfg(feature = "telemetry")]
        let mut tasks_since_snapshot = 0usize;

        while let Some((config, fp, depth, sleep, fresh)) = stack.pop() {
            #[cfg(feature = "telemetry")]
            {
                tasks_since_snapshot += 1;
                if tasks_since_snapshot >= SNAPSHOT_EVERY_TASKS {
                    tasks_since_snapshot = 0;
                    let (states, frontier) = (visited.len(), stack.len());
                    self.telemetry.maybe_snapshot(0, |elapsed| {
                        snapshot_from(&stats, states, frontier, 1, elapsed)
                    });
                }
            }
            stats.max_depth = stats.max_depth.max(depth);
            if depth >= self.options.max_depth {
                stats.truncated = true;
                continue;
            }
            let enabled = engine.enabled_machines(&config);
            if fresh {
                // Diagnostics are per-state; a sleep-widening revisit
                // must not double-count quiescence or queue peaks.
                self.note_diagnostics(&config, &enabled, &mut stats);
            }
            // Machines explored at this state go to sleep for the ones
            // after them (their interleavings are covered below the
            // earlier siblings); `enabled_machines` returns ascending
            // ids, so the accumulation order is deterministic.
            let mut cur_sleep = sleep;
            for id in enabled {
                if cur_sleep.contains(id) {
                    stats.sleep_pruned += 1;
                    continue;
                }
                crate::succ::successors_into(
                    &engine,
                    &config,
                    id,
                    self.options.granularity,
                    &mut succs,
                );
                for mut succ in succs.drain(..) {
                    stats.transitions += 1;
                    // Parent edges store compact step seeds; only an
                    // error path renders human-readable summaries.
                    let seed = |succ: &mut crate::succ::Successor| {
                        let choices = std::mem::take(&mut succ.choices);
                        crate::trace::StepSeed::from_run(succ.machine, &succ.result, choices)
                    };
                    if let ExecOutcome::Error(e) = &succ.result.outcome {
                        let error = e.clone();
                        let mut trace = parents.reconstruct(fp, self.program);
                        let choices = std::mem::take(&mut succ.choices);
                        trace.push(TraceStep::from_run(
                            self.program,
                            succ.machine,
                            &succ.result,
                            choices,
                        ));
                        stats.unique_states = visited.len();
                        stats.stored_bytes = visited.stored_bytes();
                        stats.duration = start.elapsed();
                        #[cfg(feature = "telemetry")]
                        self.final_snapshot(&stats, stack.len(), 1);
                        return Report {
                            counterexample: Some(Counterexample { error, trace }),
                            stats,
                            complete: false,
                        };
                    }
                    let (succ_digest, succ_len) = succ.config.digest_and_len();
                    let succ_fp = Fingerprint::from_u128(succ_digest);
                    // With symmetry on, the visited set is keyed by the
                    // canonical fingerprint; everything else (parent
                    // edges, stack tasks, traces) stays concrete.
                    let succ_key = symmetry.then(|| {
                        *canon_cache.entry(succ_fp).or_insert_with(|| {
                            Fingerprint::from_u128(canonical_digest(&mut succ.config))
                        })
                    });
                    match &por {
                        None => {
                            let admitted = match succ_key {
                                Some(key) => match visited.admit_sym(key, succ_fp, succ_len) {
                                    AdmitSym::New => Admit::New,
                                    AdmitSym::Seen { merged } => {
                                        if merged {
                                            stats.symmetry_merges += 1;
                                        }
                                        Admit::Seen
                                    }
                                    AdmitSym::OverBound => Admit::OverBound,
                                },
                                None => visited.admit(succ_fp, succ_len),
                            };
                            match admitted {
                                Admit::New => {
                                    parents.record(succ_fp, fp, seed(&mut succ));
                                    stack.push((
                                        succ.config,
                                        succ_fp,
                                        depth + 1,
                                        SleepSet::empty(),
                                        true,
                                    ));
                                }
                                Admit::Seen => stats.dedup_hits += 1,
                                Admit::OverBound => stats.truncated = true,
                            }
                        }
                        Some(por) => {
                            let taken = por.run_footprint(id, &succ.result);
                            let child_sleep = por.filter_sleep(&config, cur_sleep, &taken);
                            let admitted = match succ_key {
                                Some(key) => {
                                    visited.admit_sleep_sym(key, succ_fp, succ_len, child_sleep)
                                }
                                None => match visited.admit_sleep(succ_fp, succ_len, child_sleep) {
                                    AdmitSleep::New => AdmitSleepSym::New,
                                    AdmitSleep::Covered => AdmitSleepSym::Covered { merged: false },
                                    AdmitSleep::Widen(sleep) => AdmitSleepSym::Widen {
                                        sleep,
                                        merged: false,
                                    },
                                    AdmitSleep::OverBound => AdmitSleepSym::OverBound,
                                },
                            };
                            match admitted {
                                AdmitSleepSym::New => {
                                    let seed = seed(&mut succ);
                                    parents.record(succ_fp, fp, seed);
                                    stack.push((
                                        succ.config,
                                        succ_fp,
                                        depth + 1,
                                        child_sleep,
                                        true,
                                    ));
                                }
                                AdmitSleepSym::Covered { merged } => {
                                    stats.dedup_hits += 1;
                                    if merged {
                                        stats.symmetry_merges += 1;
                                    }
                                }
                                AdmitSleepSym::Widen { sleep, merged } => {
                                    if merged {
                                        // A sibling re-expansion needs its
                                        // own (first-wins) parent edge: the
                                        // orbit's edge belongs to the
                                        // representative's concrete state.
                                        stats.symmetry_merges += 1;
                                        parents.record_if_absent(succ_fp, fp, || seed(&mut succ));
                                    }
                                    stack.push((succ.config, succ_fp, depth + 1, sleep, false));
                                }
                                AdmitSleepSym::OverBound => stats.truncated = true,
                            }
                        }
                    }
                }
                if por.is_some() {
                    cur_sleep.insert(id);
                }
            }
        }

        stats.unique_states = visited.len();
        stats.stored_bytes = visited.stored_bytes();
        stats.duration = start.elapsed();
        #[cfg(feature = "telemetry")]
        self.final_snapshot(&stats, 0, 1);
        Report {
            counterexample: None,
            complete: !stats.truncated,
            stats,
        }
    }

    /// Records the end-of-run snapshot and closes the progress line.
    #[cfg(feature = "telemetry")]
    fn final_snapshot(&self, stats: &ExplorationStats, frontier: usize, workers: u64) {
        self.telemetry.snapshot_now(0, |elapsed| {
            snapshot_from(stats, stats.unique_states, frontier, workers, elapsed)
        });
        self.telemetry.finish_progress();
    }

    /// Parallel work-stealing engine (see DESIGN.md §9).
    fn check_parallel(&self, jobs: usize) -> Report {
        let start = Instant::now();

        let mut init = self.engine().initial_config();
        let (init_digest, init_len) = init.digest_and_len();
        let init_fp = Fingerprint::from_u128(init_digest);

        let table = SharedTable::new(self.options.max_states);
        if self.options.symmetry {
            let init_key = Fingerprint::from_u128(canonical_digest(&mut init));
            table.admit_root_sym(init_key, init_fp, init_len);
        } else {
            table.admit_root(init_fp, init_len);
        }
        let frontier: Frontier<Task> =
            Frontier::new(jobs, (init, init_fp, 0, SleepSet::empty(), true));
        // First violation wins: (parent fingerprint, final step, error).
        let first_error: Mutex<Option<(Fingerprint, TraceStep, PError)>> = Mutex::new(None);
        let depth_truncated = AtomicBool::new(false);

        let counters = SharedCounters::default();
        let worker_tasks: Vec<u64> = std::thread::scope(|scope| {
            let workers: Vec<_> = (0..jobs)
                .map(|w| {
                    let frontier = &frontier;
                    let table = &table;
                    let first_error = &first_error;
                    let depth_truncated = &depth_truncated;
                    let counters = &counters;
                    scope.spawn(move || {
                        self.expand_worker(
                            w,
                            jobs,
                            frontier,
                            table,
                            first_error,
                            depth_truncated,
                            counters,
                        )
                    })
                })
                .collect();
            workers
                .into_iter()
                .map(|handle| handle.join().expect("exploration worker panicked"))
                .collect()
        });

        // Final totals come exclusively from the shared counters (every
        // worker flushes its remaining delta on exit, including the
        // `break 'tasks` counterexample path) and the shared table —
        // never from re-merging worker-local stats, so nothing can be
        // counted twice and an aborted run still reports exact totals.
        let mut stats = counters.totals();
        #[cfg(feature = "telemetry")]
        if let Some(metrics) = self.telemetry.metrics() {
            let utilization = metrics.histogram("checker.worker.tasks");
            for &tasks in &worker_tasks {
                utilization.observe(tasks);
            }
        }
        #[cfg(not(feature = "telemetry"))]
        let _ = worker_tasks;

        stats.unique_states = table.unique();
        stats.stored_bytes = table.stored_bytes();
        stats.truncated |= table.truncated() || depth_truncated.load(Ordering::SeqCst);
        stats.duration = start.elapsed();
        #[cfg(feature = "telemetry")]
        self.final_snapshot(&stats, frontier.pending(), jobs as u64);

        let counterexample = first_error.lock().take().map(|(parent_fp, step, error)| {
            // Workers have joined; the shared parents map is quiescent
            // and holds a complete root path for every admitted state.
            let mut trace = table.reconstruct(parent_fp, self.program);
            trace.push(step);
            Counterexample { error, trace }
        });
        let complete = counterexample.is_none() && !stats.truncated;
        Report {
            counterexample,
            stats,
            complete,
        }
    }

    /// One parallel worker: expand tasks until the frontier drains or a
    /// violation stops the search. Keeps thread-local stats and flushes
    /// deltas to the shared [`SharedCounters`] after every expanded task
    /// and unconditionally on exit, so the shared totals are exact on
    /// every exit path. Returns the number of tasks this worker expanded
    /// (the per-worker utilization sample).
    #[allow(clippy::too_many_arguments)]
    fn expand_worker(
        &self,
        worker: usize,
        jobs: usize,
        frontier: &Frontier<Task>,
        table: &SharedTable,
        first_error: &Mutex<Option<(Fingerprint, TraceStep, PError)>>,
        depth_truncated: &AtomicBool,
        counters: &SharedCounters,
    ) -> u64 {
        let engine = self.engine().with_dequeue_log(false);
        let mut stats = ExplorationStats::default();
        let mut flushed = ExplorationStats::default();
        let mut tasks = 0u64;
        #[cfg(not(feature = "telemetry"))]
        let _ = jobs;
        let por = self.options.por.then(|| Por::new(self.program));
        let symmetry = self.options.symmetry;
        let mut succs = Vec::new();
        // Per-worker concrete → canonical memo (see `check_sequential`).
        // Workers may canonicalize a state another worker has already
        // seen, but never the same state twice themselves.
        let mut canon_cache: FpHashMap<Fingerprint> = FpHashMap::default();
        'tasks: while let Some((config, fp, depth, sleep, fresh)) = frontier.next(worker) {
            tasks += 1;
            stats.max_depth = stats.max_depth.max(depth);
            if depth >= self.options.max_depth {
                depth_truncated.store(true, Ordering::SeqCst);
                frontier.task_done();
                continue;
            }
            let enabled = engine.enabled_machines(&config);
            if fresh {
                self.note_diagnostics(&config, &enabled, &mut stats);
            }
            let mut cur_sleep = sleep;
            for id in enabled {
                if cur_sleep.contains(id) {
                    stats.sleep_pruned += 1;
                    continue;
                }
                crate::succ::successors_into(
                    &engine,
                    &config,
                    id,
                    self.options.granularity,
                    &mut succs,
                );
                for mut succ in succs.drain(..) {
                    stats.transitions += 1;
                    if let ExecOutcome::Error(e) = &succ.result.outcome {
                        let choices = std::mem::take(&mut succ.choices);
                        let step =
                            TraceStep::from_run(self.program, succ.machine, &succ.result, choices);
                        let mut slot = first_error.lock();
                        if slot.is_none() {
                            *slot = Some((fp, step, e.clone()));
                        }
                        drop(slot);
                        frontier.request_stop();
                        frontier.task_done();
                        break 'tasks;
                    }
                    let (succ_digest, succ_len) = succ.config.digest_and_len();
                    let succ_fp = Fingerprint::from_u128(succ_digest);
                    let succ_key = symmetry.then(|| {
                        *canon_cache.entry(succ_fp).or_insert_with(|| {
                            Fingerprint::from_u128(canonical_digest(&mut succ.config))
                        })
                    });
                    let choices = &mut succ.choices;
                    let result = &succ.result;
                    let step =
                        || crate::trace::StepSeed::from_run(id, result, std::mem::take(choices));
                    match &por {
                        None => {
                            let admitted = match succ_key {
                                Some(key) => {
                                    match table.admit_sym(key, succ_fp, succ_len, fp, step) {
                                        AdmitSym::New => Admit::New,
                                        AdmitSym::Seen { merged } => {
                                            if merged {
                                                stats.symmetry_merges += 1;
                                            }
                                            Admit::Seen
                                        }
                                        AdmitSym::OverBound => Admit::OverBound,
                                    }
                                }
                                None => table.admit(succ_fp, succ_len, fp, step),
                            };
                            match admitted {
                                Admit::New => frontier.push(
                                    worker,
                                    (succ.config, succ_fp, depth + 1, SleepSet::empty(), true),
                                ),
                                Admit::Seen => stats.dedup_hits += 1,
                                Admit::OverBound => {}
                            }
                        }
                        Some(por) => {
                            let taken = por.run_footprint(id, result);
                            let child_sleep = por.filter_sleep(&config, cur_sleep, &taken);
                            let admitted = match succ_key {
                                Some(key) => table.admit_sleep_sym(
                                    key,
                                    succ_fp,
                                    succ_len,
                                    child_sleep,
                                    fp,
                                    step,
                                ),
                                None => {
                                    match table.admit_sleep(
                                        succ_fp,
                                        succ_len,
                                        child_sleep,
                                        fp,
                                        step,
                                    ) {
                                        AdmitSleep::New => AdmitSleepSym::New,
                                        AdmitSleep::Covered => {
                                            AdmitSleepSym::Covered { merged: false }
                                        }
                                        AdmitSleep::Widen(sleep) => AdmitSleepSym::Widen {
                                            sleep,
                                            merged: false,
                                        },
                                        AdmitSleep::OverBound => AdmitSleepSym::OverBound,
                                    }
                                }
                            };
                            match admitted {
                                AdmitSleepSym::New => frontier.push(
                                    worker,
                                    (succ.config, succ_fp, depth + 1, child_sleep, true),
                                ),
                                AdmitSleepSym::Covered { merged } => {
                                    stats.dedup_hits += 1;
                                    if merged {
                                        stats.symmetry_merges += 1;
                                    }
                                }
                                AdmitSleepSym::OverBound => {}
                                AdmitSleepSym::Widen { sleep, merged } => {
                                    if merged {
                                        stats.symmetry_merges += 1;
                                    }
                                    frontier.push(
                                        worker,
                                        (succ.config, succ_fp, depth + 1, sleep, false),
                                    );
                                }
                            }
                        }
                    }
                }
                if por.is_some() {
                    cur_sleep.insert(id);
                }
            }
            frontier.task_done();
            counters.flush(&stats, &mut flushed);
            #[cfg(feature = "telemetry")]
            if tasks.is_multiple_of(SNAPSHOT_EVERY_TASKS as u64) {
                self.telemetry.maybe_snapshot(worker as u32, |elapsed| {
                    let mut totals = counters.totals();
                    totals.unique_states = table.unique();
                    snapshot_from(
                        &totals,
                        totals.unique_states,
                        frontier.pending(),
                        jobs as u64,
                        elapsed,
                    )
                });
            }
        }
        counters.flush(&stats, &mut flushed);
        tasks
    }
}

/// A unit of parallel work: the state, its fingerprint and depth, the
/// sleep set to expand it with, and whether this is its first visit.
type Task = (Config, Fingerprint, usize, SleepSet, bool);

impl Verifier<'_> {
    /// Records queue-length and quiescence diagnostics for one visited
    /// configuration. `enabled` is the precomputed
    /// [`Engine::enabled_machines`] list for `config`, so expansion and
    /// diagnostics share one enabledness scan per state.
    pub(crate) fn note_diagnostics(
        &self,
        config: &Config,
        enabled: &[MachineId],
        stats: &mut ExplorationStats,
    ) {
        let mut pending = 0usize;
        for id in config.live_ids() {
            if let Some(m) = config.machine(id) {
                stats.max_queue_seen = stats.max_queue_seen.max(m.queue.len());
                pending += m.queue.len();
            }
        }
        if enabled.is_empty() {
            stats.quiescent_states += 1;
            if pending > 0 {
                stats.stuck_states += 1;
            }
        }
    }
}

/// Convenience: the id of the initial machine in a fresh configuration
/// (always the first allocated).
pub(crate) fn initial_machine() -> MachineId {
    MachineId(0)
}

/// Builds a telemetry snapshot from running exploration totals.
/// `states` is passed separately because the sequential engine reads it
/// from the visited set (stats.unique_states is only filled at the end).
#[cfg(feature = "telemetry")]
fn snapshot_from(
    stats: &ExplorationStats,
    states: usize,
    frontier: usize,
    workers: u64,
    elapsed_micros: u64,
) -> p_telemetry::ExplorationSnapshot {
    p_telemetry::ExplorationSnapshot {
        elapsed_micros,
        states: states as u64,
        transitions: stats.transitions as u64,
        frontier: frontier as u64,
        dedup_hits: stats.dedup_hits as u64,
        sleep_pruned: stats.sleep_pruned as u64,
        symmetry_merges: stats.symmetry_merges as u64,
        max_depth: stats.max_depth as u64,
        workers,
    }
}
