//! Exhaustive explicit-state search (the Zing-substrate analog) and the
//! option/report types shared by all strategies.

use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::time::Instant;

use p_semantics::{
    Config, Engine, ExecOutcome, ForeignEnv, Granularity, LoweredProgram, MachineId,
};

use crate::stats::ExplorationStats;
use crate::succ::successors_for;
use crate::trace::{Counterexample, TraceStep};

/// Bounds and knobs for exploration.
#[derive(Debug, Clone)]
pub struct CheckerOptions {
    /// Stop after visiting this many unique states.
    pub max_states: usize,
    /// Depth bound: maximum scheduler decisions along one path
    /// (the paper's depth-bounding baseline, §1).
    pub max_depth: usize,
    /// Scheduling granularity; [`Granularity::Fine`] only for the
    /// atomicity-reduction ablation.
    pub granularity: Granularity,
    /// Small-step budget per atomic run (detects private divergence).
    pub fuel: usize,
}

impl Default for CheckerOptions {
    fn default() -> CheckerOptions {
        CheckerOptions {
            max_states: 1_000_000,
            max_depth: 1_000_000,
            granularity: Granularity::Atomic,
            fuel: 100_000,
        }
    }
}

/// Outcome of a safety check.
#[derive(Debug, Clone)]
pub struct Report {
    /// The first violation found, with its schedule.
    pub counterexample: Option<Counterexample>,
    /// Exploration statistics.
    pub stats: ExplorationStats,
    /// Whether the reachable state space was fully covered (within the
    /// strategy's own bound, e.g. the delay budget).
    pub complete: bool,
}

impl Report {
    /// True when no violation was found.
    pub fn passed(&self) -> bool {
        self.counterexample.is_none()
    }
}

/// The model checker: systematic testing of a P program per §5.
///
/// # Examples
///
/// ```
/// let src = r#"
///     event done;
///     machine M {
///         var x : int;
///         state Init { entry { x := 1; assert(x == 1); } }
///     }
///     main M();
/// "#;
/// let program = p_parser::parse(src).unwrap();
/// let lowered = p_semantics::lower(&program).unwrap();
/// let verifier = p_checker::Verifier::new(&lowered);
/// let report = verifier.check_exhaustive();
/// assert!(report.passed());
/// assert!(report.complete);
/// ```
#[derive(Debug)]
pub struct Verifier<'p> {
    program: &'p LoweredProgram,
    foreign: ForeignEnv,
    options: CheckerOptions,
}

impl<'p> Verifier<'p> {
    /// Creates a verifier with default options and no foreign functions.
    pub fn new(program: &'p LoweredProgram) -> Verifier<'p> {
        Verifier {
            program,
            foreign: ForeignEnv::empty(),
            options: CheckerOptions::default(),
        }
    }

    /// Supplies foreign-function implementations (which must be
    /// deterministic and pure for sound exploration).
    pub fn with_foreign(mut self, foreign: ForeignEnv) -> Verifier<'p> {
        self.foreign = foreign;
        self
    }

    /// Overrides the exploration options.
    pub fn with_options(mut self, options: CheckerOptions) -> Verifier<'p> {
        self.options = options;
        self
    }

    /// The options in effect.
    pub fn options(&self) -> &CheckerOptions {
        &self.options
    }

    /// The program under check.
    pub fn program(&self) -> &'p LoweredProgram {
        self.program
    }

    pub(crate) fn engine(&self) -> Engine<'p> {
        Engine::new(self.program, self.foreign.clone()).with_fuel(self.options.fuel)
    }

    /// Exhaustive search truncated at `max_depth` scheduler decisions —
    /// the plain depth-bounding baseline the paper contrasts with delay
    /// bounding (§1, §5).
    pub fn check_exhaustive_with_depth(&self, max_depth: usize) -> Report {
        let options = CheckerOptions {
            max_depth,
            ..self.options.clone()
        };
        Verifier {
            program: self.program,
            foreign: self.foreign.clone(),
            options,
        }
        .check_exhaustive()
    }

    /// Exhaustive depth-first search over all schedules and ghost choices,
    /// deduplicating states, up to the configured bounds.
    ///
    /// This enumerates *all* interleavings at send/create scheduling
    /// points — the baseline the delay-bounded scheduler is measured
    /// against.
    pub fn check_exhaustive(&self) -> Report {
        let engine = self.engine();
        let start = Instant::now();
        let mut stats = ExplorationStats::default();

        let init = engine.initial_config();
        let init_bytes = init.canonical_bytes();
        let init_hash = hash_bytes(&init_bytes);
        stats.stored_bytes += init_bytes.len();
        stats.unique_states = 1;

        // parent[state] = (parent state, step taken to get here)
        let mut parents: HashMap<u64, (u64, TraceStep)> = HashMap::new();
        let mut visited: HashSet<u64> = HashSet::new();
        visited.insert(init_hash);

        let mut stack: Vec<(Config, u64, usize)> = vec![(init, init_hash, 0)];

        while let Some((config, hash, depth)) = stack.pop() {
            stats.max_depth = stats.max_depth.max(depth);
            if depth >= self.options.max_depth {
                stats.truncated = true;
                continue;
            }
            self.note_diagnostics(&engine, &config, &mut stats);
            for id in engine.enabled_machines(&config) {
                for succ in successors_for(&engine, &config, id, self.options.granularity) {
                    stats.transitions += 1;
                    let step = TraceStep::from_run(
                        self.program,
                        succ.machine,
                        &succ.result,
                        succ.choices.clone(),
                    );
                    if let ExecOutcome::Error(e) = &succ.result.outcome {
                        let mut trace = reconstruct(&parents, hash);
                        trace.push(step);
                        stats.duration = start.elapsed();
                        return Report {
                            counterexample: Some(Counterexample {
                                error: e.clone(),
                                trace,
                            }),
                            stats,
                            complete: false,
                        };
                    }
                    let bytes = succ.config.canonical_bytes();
                    let h = hash_bytes(&bytes);
                    if visited.insert(h) {
                        if stats.unique_states >= self.options.max_states {
                            stats.truncated = true;
                            continue;
                        }
                        stats.unique_states += 1;
                        stats.stored_bytes += bytes.len();
                        parents.insert(h, (hash, step));
                        stack.push((succ.config, h, depth + 1));
                    }
                }
            }
        }

        stats.duration = start.elapsed();
        Report {
            counterexample: None,
            complete: !stats.truncated,
            stats,
        }
    }
}

impl Verifier<'_> {
    /// Records queue-length and quiescence diagnostics for one visited
    /// configuration.
    pub(crate) fn note_diagnostics(
        &self,
        engine: &Engine<'_>,
        config: &Config,
        stats: &mut ExplorationStats,
    ) {
        let mut pending = 0usize;
        for id in config.live_ids() {
            if let Some(m) = config.machine(id) {
                stats.max_queue_seen = stats.max_queue_seen.max(m.queue.len());
                pending += m.queue.len();
            }
        }
        if engine.enabled_machines(config).is_empty() {
            stats.quiescent_states += 1;
            if pending > 0 {
                stats.stuck_states += 1;
            }
        }
    }
}

/// Hashes a canonical state encoding.
pub(crate) fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h = DefaultHasher::new();
    bytes.hash(&mut h);
    h.finish()
}

/// Walks the parent map from the initial state to `state`.
pub(crate) fn reconstruct(
    parents: &HashMap<u64, (u64, TraceStep)>,
    mut state: u64,
) -> Vec<TraceStep> {
    let mut steps = Vec::new();
    while let Some((parent, step)) = parents.get(&state) {
        steps.push(step.clone());
        state = *parent;
    }
    steps.reverse();
    steps
}

/// Convenience: the id of the initial machine in a fresh configuration
/// (always the first allocated).
pub(crate) fn initial_machine() -> MachineId {
    MachineId(0)
}
