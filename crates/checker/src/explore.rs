//! Exhaustive explicit-state search (the Zing-substrate analog) and the
//! option/report types shared by all strategies.
//!
//! Two engines cover the exhaustive strategy: a sequential depth-first
//! search, and a parallel work-stealing search over a sharded visited
//! set ([`Verifier::check_exhaustive_parallel`]). Both deduplicate
//! states by collision-safe 128-bit [`Fingerprint`]s and agree on
//! `unique_states` and the verdict; only the particular counterexample
//! trace may differ under parallelism (first violation found wins).

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

use parking_lot::Mutex;

use p_semantics::{
    Config, Engine, ExecOutcome, ForeignEnv, Granularity, LoweredProgram, MachineId, PError,
};

use crate::engine::{Admit, BoundedSet, Frontier, ParentMap, SharedTable};
use crate::fingerprint::Fingerprint;
use crate::stats::ExplorationStats;
use crate::succ::successors_for;
use crate::trace::{Counterexample, TraceStep};

/// Bounds and knobs for exploration.
#[derive(Debug, Clone)]
pub struct CheckerOptions {
    /// Stop after visiting this many unique states.
    pub max_states: usize,
    /// Depth bound: maximum scheduler decisions along one path
    /// (the paper's depth-bounding baseline, §1).
    pub max_depth: usize,
    /// Scheduling granularity; [`Granularity::Fine`] only for the
    /// atomicity-reduction ablation.
    pub granularity: Granularity,
    /// Small-step budget per atomic run (detects private divergence).
    pub fuel: usize,
    /// Worker threads for the exhaustive search. `0` or `1` selects the
    /// sequential depth-first engine; `n > 1` selects the parallel
    /// work-stealing engine with `n` workers.
    pub jobs: usize,
}

impl Default for CheckerOptions {
    fn default() -> CheckerOptions {
        CheckerOptions {
            max_states: 1_000_000,
            max_depth: 1_000_000,
            granularity: Granularity::Atomic,
            fuel: 100_000,
            jobs: 1,
        }
    }
}

/// Outcome of a safety check.
#[derive(Debug, Clone)]
pub struct Report {
    /// The first violation found, with its schedule.
    pub counterexample: Option<Counterexample>,
    /// Exploration statistics.
    pub stats: ExplorationStats,
    /// Whether the reachable state space was fully covered (within the
    /// strategy's own bound, e.g. the delay budget).
    pub complete: bool,
}

impl Report {
    /// True when no violation was found.
    pub fn passed(&self) -> bool {
        self.counterexample.is_none()
    }
}

/// The model checker: systematic testing of a P program per §5.
///
/// # Examples
///
/// ```
/// let src = r#"
///     event done;
///     machine M {
///         var x : int;
///         state Init { entry { x := 1; assert(x == 1); } }
///     }
///     main M();
/// "#;
/// let program = p_parser::parse(src).unwrap();
/// let lowered = p_semantics::lower(&program).unwrap();
/// let verifier = p_checker::Verifier::new(&lowered);
/// let report = verifier.check_exhaustive();
/// assert!(report.passed());
/// assert!(report.complete);
/// ```
#[derive(Debug)]
pub struct Verifier<'p> {
    program: &'p LoweredProgram,
    foreign: ForeignEnv,
    options: CheckerOptions,
}

impl<'p> Verifier<'p> {
    /// Creates a verifier with default options and no foreign functions.
    pub fn new(program: &'p LoweredProgram) -> Verifier<'p> {
        Verifier {
            program,
            foreign: ForeignEnv::empty(),
            options: CheckerOptions::default(),
        }
    }

    /// Supplies foreign-function implementations (which must be
    /// deterministic and pure for sound exploration).
    pub fn with_foreign(mut self, foreign: ForeignEnv) -> Verifier<'p> {
        self.foreign = foreign;
        self
    }

    /// Overrides the exploration options.
    pub fn with_options(mut self, options: CheckerOptions) -> Verifier<'p> {
        self.options = options;
        self
    }

    /// The options in effect.
    pub fn options(&self) -> &CheckerOptions {
        &self.options
    }

    /// The program under check.
    pub fn program(&self) -> &'p LoweredProgram {
        self.program
    }

    pub(crate) fn engine(&self) -> Engine<'p> {
        Engine::new(self.program, self.foreign.clone()).with_fuel(self.options.fuel)
    }

    /// Exhaustive search truncated at `max_depth` scheduler decisions —
    /// the plain depth-bounding baseline the paper contrasts with delay
    /// bounding (§1, §5).
    pub fn check_exhaustive_with_depth(&self, max_depth: usize) -> Report {
        let options = CheckerOptions {
            max_depth,
            ..self.options.clone()
        };
        Verifier {
            program: self.program,
            foreign: self.foreign.clone(),
            options,
        }
        .check_exhaustive()
    }

    /// Exhaustive search over all schedules and ghost choices,
    /// deduplicating states, up to the configured bounds.
    ///
    /// This enumerates *all* interleavings at send/create scheduling
    /// points — the baseline the delay-bounded scheduler is measured
    /// against. With [`CheckerOptions::jobs`] `> 1` the parallel
    /// work-stealing engine is used; otherwise a sequential depth-first
    /// search.
    pub fn check_exhaustive(&self) -> Report {
        if self.options.jobs > 1 {
            self.check_parallel(self.options.jobs)
        } else {
            self.check_sequential()
        }
    }

    /// Exhaustive search with `jobs` worker threads over a sharded
    /// visited set (work-stealing expansion, first-counterexample-wins
    /// shutdown). `jobs <= 1` falls back to the sequential engine.
    ///
    /// For a complete (non-truncated) run, `unique_states`, the
    /// verdict, and `transitions` are independent of `jobs`; the
    /// specific counterexample returned for a buggy program may differ
    /// between runs, but is always valid and replayable.
    pub fn check_exhaustive_parallel(&self, jobs: usize) -> Report {
        if jobs > 1 {
            self.check_parallel(jobs)
        } else {
            self.check_sequential()
        }
    }

    /// Sequential depth-first engine.
    fn check_sequential(&self) -> Report {
        let engine = self.engine();
        let start = Instant::now();
        let mut stats = ExplorationStats::default();

        let init = engine.initial_config();
        let init_bytes = init.canonical_bytes();
        let init_fp = Fingerprint::of(&init_bytes);

        let mut visited = BoundedSet::new(self.options.max_states);
        visited.admit(init_fp, init_bytes.len());
        let mut parents = ParentMap::new();

        let mut stack: Vec<(Config, Fingerprint, usize)> = vec![(init, init_fp, 0)];

        while let Some((config, fp, depth)) = stack.pop() {
            stats.max_depth = stats.max_depth.max(depth);
            if depth >= self.options.max_depth {
                stats.truncated = true;
                continue;
            }
            self.note_diagnostics(&engine, &config, &mut stats);
            for id in engine.enabled_machines(&config) {
                for succ in successors_for(&engine, &config, id, self.options.granularity) {
                    stats.transitions += 1;
                    let step = TraceStep::from_run(
                        self.program,
                        succ.machine,
                        &succ.result,
                        succ.choices.clone(),
                    );
                    if let ExecOutcome::Error(e) = &succ.result.outcome {
                        let mut trace = parents.reconstruct(fp);
                        trace.push(step);
                        stats.unique_states = visited.len();
                        stats.stored_bytes = visited.stored_bytes();
                        stats.duration = start.elapsed();
                        return Report {
                            counterexample: Some(Counterexample {
                                error: e.clone(),
                                trace,
                            }),
                            stats,
                            complete: false,
                        };
                    }
                    let bytes = succ.config.canonical_bytes();
                    let succ_fp = Fingerprint::of(&bytes);
                    match visited.admit(succ_fp, bytes.len()) {
                        Admit::New => {
                            parents.record(succ_fp, fp, step);
                            stack.push((succ.config, succ_fp, depth + 1));
                        }
                        Admit::Seen => {}
                        Admit::OverBound => stats.truncated = true,
                    }
                }
            }
        }

        stats.unique_states = visited.len();
        stats.stored_bytes = visited.stored_bytes();
        stats.duration = start.elapsed();
        Report {
            counterexample: None,
            complete: !stats.truncated,
            stats,
        }
    }

    /// Parallel work-stealing engine (see DESIGN.md §9).
    fn check_parallel(&self, jobs: usize) -> Report {
        let start = Instant::now();

        let init = self.engine().initial_config();
        let init_bytes = init.canonical_bytes();
        let init_fp = Fingerprint::of(&init_bytes);

        let table = SharedTable::new(self.options.max_states);
        table.admit_root(init_fp, init_bytes.len());
        let frontier: Frontier<(Config, Fingerprint, usize)> =
            Frontier::new(jobs, (init, init_fp, 0));
        // First violation wins: (parent fingerprint, final step, error).
        let first_error: Mutex<Option<(Fingerprint, TraceStep, PError)>> = Mutex::new(None);
        let depth_truncated = AtomicBool::new(false);

        let mut stats = std::thread::scope(|scope| {
            let workers: Vec<_> = (0..jobs)
                .map(|w| {
                    let frontier = &frontier;
                    let table = &table;
                    let first_error = &first_error;
                    let depth_truncated = &depth_truncated;
                    scope.spawn(move || {
                        self.expand_worker(w, frontier, table, first_error, depth_truncated)
                    })
                })
                .collect();
            let mut stats = ExplorationStats::default();
            for handle in workers {
                stats.merge(&handle.join().expect("exploration worker panicked"));
            }
            stats
        });

        stats.unique_states = table.unique();
        stats.stored_bytes = table.stored_bytes();
        stats.truncated |= table.truncated() || depth_truncated.load(Ordering::SeqCst);
        stats.duration = start.elapsed();

        let counterexample = first_error.lock().take().map(|(parent_fp, step, error)| {
            // Workers have joined; the shared parents map is quiescent
            // and holds a complete root path for every admitted state.
            let mut trace = table.reconstruct(parent_fp);
            trace.push(step);
            Counterexample { error, trace }
        });
        let complete = counterexample.is_none() && !stats.truncated;
        Report {
            counterexample,
            stats,
            complete,
        }
    }

    /// One parallel worker: expand tasks until the frontier drains or a
    /// violation stops the search. Returns the worker-local stats
    /// (state/byte counts stay zero — the shared table owns those).
    fn expand_worker(
        &self,
        worker: usize,
        frontier: &Frontier<(Config, Fingerprint, usize)>,
        table: &SharedTable,
        first_error: &Mutex<Option<(Fingerprint, TraceStep, PError)>>,
        depth_truncated: &AtomicBool,
    ) -> ExplorationStats {
        let engine = self.engine();
        let mut stats = ExplorationStats::default();
        'tasks: while let Some((config, fp, depth)) = frontier.next(worker) {
            stats.max_depth = stats.max_depth.max(depth);
            if depth >= self.options.max_depth {
                depth_truncated.store(true, Ordering::SeqCst);
                frontier.task_done();
                continue;
            }
            self.note_diagnostics(&engine, &config, &mut stats);
            for id in engine.enabled_machines(&config) {
                for succ in successors_for(&engine, &config, id, self.options.granularity) {
                    stats.transitions += 1;
                    let step = TraceStep::from_run(
                        self.program,
                        succ.machine,
                        &succ.result,
                        succ.choices.clone(),
                    );
                    if let ExecOutcome::Error(e) = &succ.result.outcome {
                        let mut slot = first_error.lock();
                        if slot.is_none() {
                            *slot = Some((fp, step, e.clone()));
                        }
                        drop(slot);
                        frontier.request_stop();
                        frontier.task_done();
                        break 'tasks;
                    }
                    let bytes = succ.config.canonical_bytes();
                    let succ_fp = Fingerprint::of(&bytes);
                    if table.admit(succ_fp, bytes.len(), fp, step) == Admit::New {
                        frontier.push(worker, (succ.config, succ_fp, depth + 1));
                    }
                }
            }
            frontier.task_done();
        }
        stats
    }
}

impl Verifier<'_> {
    /// Records queue-length and quiescence diagnostics for one visited
    /// configuration.
    pub(crate) fn note_diagnostics(
        &self,
        engine: &Engine<'_>,
        config: &Config,
        stats: &mut ExplorationStats,
    ) {
        let mut pending = 0usize;
        for id in config.live_ids() {
            if let Some(m) = config.machine(id) {
                stats.max_queue_seen = stats.max_queue_seen.max(m.queue.len());
                pending += m.queue.len();
            }
        }
        if engine.enabled_machines(config).is_empty() {
            stats.quiescent_states += 1;
            if pending > 0 {
                stats.stuck_states += 1;
            }
        }
    }
}

/// Convenience: the id of the initial machine in a fresh configuration
/// (always the first allocated).
pub(crate) fn initial_machine() -> MachineId {
    MachineId(0)
}
