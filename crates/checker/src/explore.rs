//! Exhaustive explicit-state search (the Zing-substrate analog) and the
//! option/report types shared by all strategies.
//!
//! Two engines cover the exhaustive strategy: a sequential depth-first
//! search, and a parallel work-stealing search over a sharded visited
//! set ([`Verifier::check_exhaustive_parallel`]). Both deduplicate
//! states by collision-safe 128-bit [`Fingerprint`]s and agree on
//! `unique_states` and the verdict; only the particular counterexample
//! trace may differ under parallelism (first violation found wins).
//!
//! Both engines optionally run *crash-safe* and *memory-bounded* (see
//! DESIGN.md §13): [`CheckerOptions::checkpoint`] periodically persists
//! the entire search state so a killed run resumes via
//! [`CheckerOptions::resume`], and [`CheckerOptions::mem_limit`] spills
//! the visited set and parent map to disk once their RAM share exceeds
//! the budget.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use p_semantics::{
    canonical_digest, Config, Engine, ExecOutcome, ForeignEnv, Granularity, LoweredProgram,
    MachineId, PError, SlotInterner,
};

use p_telemetry::Telemetry;

use crate::checkpoint::{self, CheckpointData, CheckpointPolicy, TaskEntry};
use crate::engine::{
    hot_budget_for, parent_cap_for, Admit, AdmitSleep, AdmitSleepSym, AdmitSym, Frontier,
    SharedCounters, SharedTable, TieredParents, TieredSet,
};
use crate::error::CheckerError;
use crate::fingerprint::{Fingerprint, FpHashMap};
use crate::por::{Por, SleepSet};
use crate::stats::ExplorationStats;
use crate::trace::{Counterexample, TraceStep};

/// How often the exploration loops offer a progress snapshot to the
/// telemetry layer (further throttled there by wall-clock interval).
#[cfg(feature = "telemetry")]
const SNAPSHOT_EVERY_TASKS: usize = 256;

/// Bounds and knobs for exploration.
#[derive(Debug, Clone)]
pub struct CheckerOptions {
    /// Stop after visiting this many unique states.
    pub max_states: usize,
    /// Depth bound: maximum scheduler decisions along one path
    /// (the paper's depth-bounding baseline, §1).
    pub max_depth: usize,
    /// Scheduling granularity; [`Granularity::Fine`] only for the
    /// atomicity-reduction ablation.
    pub granularity: Granularity,
    /// Small-step budget per atomic run (detects private divergence).
    pub fuel: usize,
    /// Worker threads for the exhaustive search. `0` or `1` selects the
    /// sequential depth-first engine; `n > 1` selects the parallel
    /// work-stealing engine with `n` workers.
    pub jobs: usize,
    /// Sleep-set partial-order reduction for the exhaustive engines
    /// (sequential and parallel). Sound for safety: it prunes redundant
    /// *transitions* between independent machine runs, never states —
    /// every reachable state (and hence every reachable error) is still
    /// visited, so the verdict and `unique_states` match the unreduced
    /// search; only `transitions` shrinks. Ignored by the delay-bounded,
    /// fault, liveness and random strategies, whose node spaces are
    /// schedule-annotated. See DESIGN.md §10.
    pub por: bool,
    /// Symmetry reduction for the exhaustive engines (sequential and
    /// parallel): the visited set is keyed by a canonical fingerprint
    /// invariant under permutations of same-type machine ids
    /// ([`p_semantics::canonical_digest`]), so up to `k!` symmetric
    /// duplicates per group of `k` interchangeable machines collapse
    /// into one stored state. Sound for safety — two states merge only
    /// if an id permutation maps one exactly onto the other, so they
    /// have isomorphic futures and identical verdicts; exploration and
    /// counterexample traces stay concrete. `unique_states` counts
    /// orbits (canonical classes) in this mode. Composes with
    /// [`CheckerOptions::por`]; ignored by the delay-bounded, fault,
    /// liveness and random strategies. See DESIGN.md §12.
    pub symmetry: bool,
    /// Periodic crash-safe checkpointing for the exhaustive engines;
    /// `None` (the default) disables it. The checkpoint is
    /// engine-agnostic: a run checkpointed under `jobs = 4` resumes
    /// under `jobs = 1` and vice versa. See DESIGN.md §13.
    pub checkpoint: Option<CheckpointPolicy>,
    /// Resume a previously checkpointed exhaustive run from this
    /// directory. The checkpoint's config digest must match the current
    /// program and semantic options, else the run fails with
    /// [`CheckerError::CheckpointMismatch`]. Combine with
    /// [`CheckerOptions::checkpoint`] (typically the same directory) to
    /// keep checkpointing while resumed.
    pub resume: Option<PathBuf>,
    /// Approximate RAM budget (bytes) for the exhaustive engines'
    /// visited set. When the hot (RAM) tier outgrows it, fingerprints
    /// and parent records spill to sorted disk runs with a bloom-filter
    /// front; the verdict, `unique_states` and traces are unaffected.
    /// `None` (the default) keeps everything in RAM.
    pub mem_limit: Option<usize>,
    /// Cooperative interruption (SIGINT/SIGTERM): when the flag turns
    /// true the exhaustive engines stop at the next state boundary,
    /// write a final checkpoint if [`CheckerOptions::checkpoint`] is
    /// set, and return with [`Report::interrupted`].
    pub interrupt: Option<Arc<AtomicBool>>,
}

impl Default for CheckerOptions {
    fn default() -> CheckerOptions {
        CheckerOptions {
            max_states: 1_000_000,
            max_depth: 1_000_000,
            granularity: Granularity::Atomic,
            fuel: 100_000,
            jobs: 1,
            por: false,
            symmetry: false,
            checkpoint: None,
            resume: None,
            mem_limit: None,
            interrupt: None,
        }
    }
}

/// Outcome of a safety check.
#[derive(Debug, Clone)]
pub struct Report {
    /// The first violation found, with its schedule.
    pub counterexample: Option<Counterexample>,
    /// Exploration statistics.
    pub stats: ExplorationStats,
    /// Whether the reachable state space was fully covered (within the
    /// strategy's own bound, e.g. the delay budget).
    pub complete: bool,
    /// True when the run stopped early on [`CheckerOptions::interrupt`]
    /// or [`CheckpointPolicy::abort_after_states`] (after writing a
    /// final checkpoint, if configured). Always false for a violation
    /// or a completed search.
    pub interrupted: bool,
}

impl Report {
    /// True when no violation was found.
    pub fn passed(&self) -> bool {
        self.counterexample.is_none()
    }
}

/// The model checker: systematic testing of a P program per §5.
///
/// # Examples
///
/// ```
/// let src = r#"
///     event done;
///     machine M {
///         var x : int;
///         state Init { entry { x := 1; assert(x == 1); } }
///     }
///     main M();
/// "#;
/// let program = p_parser::parse(src).unwrap();
/// let lowered = p_semantics::lower(&program).unwrap();
/// let verifier = p_checker::Verifier::new(&lowered);
/// let report = verifier.check_exhaustive();
/// assert!(report.passed());
/// assert!(report.complete);
/// ```
#[derive(Debug)]
pub struct Verifier<'p> {
    program: &'p LoweredProgram,
    foreign: ForeignEnv,
    options: CheckerOptions,
    telemetry: Telemetry,
    compiled: Option<&'p dyn p_semantics::compiled::CompiledProgram>,
}

impl<'p> Verifier<'p> {
    /// Creates a verifier with default options and no foreign functions.
    pub fn new(program: &'p LoweredProgram) -> Verifier<'p> {
        Verifier {
            program,
            foreign: ForeignEnv::empty(),
            options: CheckerOptions::default(),
            telemetry: Telemetry::disabled(),
            compiled: None,
        }
    }

    /// Attaches an ahead-of-time compiled execution table. Every engine
    /// the verifier constructs — for any strategy, sequential or
    /// parallel — then takes the compiled fast path for atomic runs,
    /// with the interpreter semantics as the specification. The table's
    /// digest is validated here, eagerly, against the program under
    /// check; a mismatch is a [`CheckerError::CompiledBackend`] rather
    /// than a panic deep inside exploration.
    pub fn with_compiled(
        mut self,
        table: &'p dyn p_semantics::compiled::CompiledProgram,
    ) -> Result<Verifier<'p>, CheckerError> {
        Engine::new(self.program, self.foreign.clone())
            .with_compiled(table)
            .map_err(|e| CheckerError::CompiledBackend(e.to_string()))?;
        self.compiled = Some(table);
        Ok(self)
    }

    /// Supplies foreign-function implementations (which must be
    /// deterministic and pure for sound exploration).
    pub fn with_foreign(mut self, foreign: ForeignEnv) -> Verifier<'p> {
        self.foreign = foreign;
        self
    }

    /// Overrides the exploration options.
    pub fn with_options(mut self, options: CheckerOptions) -> Verifier<'p> {
        self.options = options;
        self
    }

    /// Attaches a telemetry handle. The exhaustive engines then record
    /// periodic [`p_telemetry::ExplorationSnapshot`]s (states/sec,
    /// frontier size, dedup hit rate, POR prunes, depth) through it and
    /// drive its progress meter. A disabled handle (the default) makes
    /// every hook a single predictable branch; with the `telemetry`
    /// cargo feature off, the hook sites are compiled out entirely.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Verifier<'p> {
        self.telemetry = telemetry;
        self
    }

    /// The attached telemetry handle (disabled unless set).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The options in effect.
    pub fn options(&self) -> &CheckerOptions {
        &self.options
    }

    /// The program under check.
    pub fn program(&self) -> &'p LoweredProgram {
        self.program
    }

    pub(crate) fn engine(&self) -> Engine<'p> {
        let engine = Engine::new(self.program, self.foreign.clone()).with_fuel(self.options.fuel);
        match self.compiled {
            Some(table) => engine
                .with_compiled(table)
                .expect("digest validated in with_compiled"),
            None => engine,
        }
    }

    /// Exhaustive search truncated at `max_depth` scheduler decisions —
    /// the plain depth-bounding baseline the paper contrasts with delay
    /// bounding (§1, §5).
    pub fn check_exhaustive_with_depth(&self, max_depth: usize) -> Report {
        let options = CheckerOptions {
            max_depth,
            ..self.options.clone()
        };
        Verifier {
            program: self.program,
            foreign: self.foreign.clone(),
            options,
            telemetry: self.telemetry.clone(),
            compiled: self.compiled,
        }
        .check_exhaustive()
    }

    /// Exhaustive search over all schedules and ghost choices,
    /// deduplicating states, up to the configured bounds.
    ///
    /// This enumerates *all* interleavings at send/create scheduling
    /// points — the baseline the delay-bounded scheduler is measured
    /// against. With [`CheckerOptions::jobs`] `> 1` the parallel
    /// work-stealing engine is used; otherwise a sequential depth-first
    /// search.
    ///
    /// # Panics
    ///
    /// Panics if the search fails with a [`CheckerError`]: the fallible
    /// options ([`CheckerOptions::checkpoint`], [`CheckerOptions::resume`],
    /// [`CheckerOptions::mem_limit`]), or a fatal semantics error (a
    /// corrupt lowering — an engine bug, not a property violation). Use
    /// [`Verifier::try_check_exhaustive`] to handle those errors.
    pub fn check_exhaustive(&self) -> Report {
        self.try_check_exhaustive()
            .expect("exhaustive search failed; use try_check_exhaustive to handle errors")
    }

    /// [`Verifier::check_exhaustive`], surfacing I/O, checkpoint, and
    /// semantics errors instead of panicking. The `Err` cases are rooted
    /// in the fallible options — checkpoint directory I/O, a corrupt or
    /// mismatched checkpoint on resume, spill-store I/O under a memory
    /// limit — or in a fatal [`CheckerError::Semantics`] engine error.
    pub fn try_check_exhaustive(&self) -> Result<Report, CheckerError> {
        if self.options.jobs > 1 {
            self.try_check_parallel(self.options.jobs)
        } else {
            self.try_check_sequential()
        }
    }

    /// Exhaustive search with `jobs` worker threads over a sharded
    /// visited set (work-stealing expansion, first-counterexample-wins
    /// shutdown). `jobs <= 1` falls back to the sequential engine.
    ///
    /// For a complete (non-truncated) run, `unique_states`, the
    /// verdict, and `transitions` are independent of `jobs`; the
    /// specific counterexample returned for a buggy program may differ
    /// between runs, but is always valid and replayable.
    ///
    /// # Panics
    ///
    /// As [`Verifier::check_exhaustive`]: only the fallible options can
    /// make the search fail.
    pub fn check_exhaustive_parallel(&self, jobs: usize) -> Report {
        let report = if jobs > 1 {
            self.try_check_parallel(jobs)
        } else {
            self.try_check_sequential()
        };
        report.expect("exhaustive search failed; use try_check_exhaustive to handle errors")
    }

    /// Digest of everything a checkpoint must agree on to be resumable:
    /// the lowered program and the semantics-relevant options. `jobs`
    /// and the robustness options themselves are deliberately excluded —
    /// a checkpoint taken under one worker count, memory limit or
    /// checkpoint cadence is valid under another.
    fn config_digest(&self) -> u128 {
        use std::fmt::Write as _;
        // NB: field by field, not `{:?}` of the whole program — the
        // interner's lookup map is a HashMap whose Debug order differs
        // between processes, and resume compares digests across runs.
        let p = self.program;
        let mut desc = format!(
            "{:?}|{:?}|{:?}|{:?}|{:?}",
            p.events, p.machines, p.code, p.main, p.main_inits
        );
        for (_, name) in p.interner.iter() {
            let _ = write!(desc, "|{name}");
        }
        let o = &self.options;
        let _ = write!(
            desc,
            "|max_states={}|max_depth={}|granularity={:?}|fuel={}|por={}|symmetry={}",
            o.max_states, o.max_depth, o.granularity, o.fuel, o.por, o.symmetry
        );
        Fingerprint::of(desc.as_bytes()).as_u128()
    }

    /// Sequential depth-first engine.
    fn try_check_sequential(&self) -> Result<Report, CheckerError> {
        // The safety search never reads `RunResult::dequeued`; skip the
        // per-run allocation.
        let engine = self.engine().with_dequeue_log(false);
        let start = Instant::now();
        let options = &self.options;
        let digest = self.config_digest();
        let spill = SpillDir::prepare(options)?;
        let spill_cfg = spill_config(options, &spill);
        let por = options.por.then(|| Por::new(self.program));
        let symmetry = options.symmetry;
        // Per-engine intern table: identical machine slots across
        // admitted configurations share one `Arc`, and each admit
        // closure returns only the state's *marginal* bytes, so
        // `stored_bytes` counts every distinct slot exactly once.
        let mut interner = SlotInterner::new();

        let resumed = match &options.resume {
            Some(dir) => Some(checkpoint::load(dir, digest)?),
            None => None,
        };

        let mut stats;
        let mut base_duration = Duration::ZERO;
        let mut visited;
        let mut parents;
        let mut stack: Vec<Task>;
        match resumed {
            None => {
                let mut init = engine.initial_config();
                let init_fp = Fingerprint::from_u128(init.digest());
                visited = match spill_cfg {
                    None => TieredSet::new(options.max_states),
                    Some((dir, cap)) => TieredSet::with_spill(options.max_states, dir, cap)?,
                };
                if symmetry {
                    let init_key = Fingerprint::from_u128(canonical_digest(&mut init));
                    visited.admit_sym(init_key, init_fp, || init.intern_slots(&mut interner))?;
                } else {
                    visited.admit(init_fp, || init.intern_slots(&mut interner))?;
                }
                parents = match parent_spill_config(options, &spill) {
                    None => TieredParents::new(),
                    Some((dir, cap)) => TieredParents::with_spill(dir, cap)?,
                };
                stats = ExplorationStats::default();
                stack = vec![(init, init_fp, 0, SleepSet::empty(), true)];
            }
            Some(ckpt) => {
                visited = TieredSet::restore(
                    options.max_states,
                    spill_cfg,
                    &ckpt.visited,
                    ckpt.stats.stored_bytes,
                )?;
                parents =
                    TieredParents::restore(parent_spill_config(options, &spill), ckpt.parents)?;
                stack = decode_frontier(&ckpt.frontier, self.program)?;
                stats = ckpt.stats;
                base_duration = stats.duration;
                // Spill counters describe *this process's* I/O activity;
                // the finalized figures come from the live stores.
                stats.spilled_states = 0;
                stats.spill_bytes = 0;
                stats.cold_hits = 0;
            }
        }

        let policy = options.checkpoint.as_ref();
        let mut last_ckpt = visited.len();
        // Stack entries carry the sleep set the state is to be expanded
        // with and whether this is its first visit (`fresh`); with POR
        // off, the sleep set stays empty and every visit is fresh.
        let mut succs = Vec::new();
        let mut arena = crate::succ::SuccArena::new();
        let mut enabled = Vec::new();
        let mut task_index = 0u64;
        // Concrete-fingerprint → canonical-key memo: most successors are
        // revisits of a concrete state already canonicalized, and
        // canonicalization costs far more than a hash lookup.
        let mut canon_cache: FpHashMap<Fingerprint> = FpHashMap::default();
        #[cfg(feature = "telemetry")]
        let mut tasks_since_snapshot = 0usize;

        loop {
            // Control point, taken *before* popping so a checkpoint here
            // captures the complete frontier.
            let interrupt_hit = options
                .interrupt
                .as_ref()
                .is_some_and(|flag| flag.load(Ordering::SeqCst));
            let abort_hit = policy
                .and_then(|p| p.abort_after_states)
                .is_some_and(|n| visited.len() >= n);
            if let Some(policy) = policy {
                if interrupt_hit || abort_hit || visited.len() >= last_ckpt + policy.every_states {
                    let mut ckpt_stats = stats.clone();
                    ckpt_stats.unique_states = visited.len();
                    ckpt_stats.stored_bytes = visited.stored_bytes();
                    ckpt_stats.duration = base_duration + start.elapsed();
                    ckpt_stats.spilled_states = 0;
                    ckpt_stats.spill_bytes = 0;
                    ckpt_stats.cold_hits = 0;
                    let data = CheckpointData {
                        stats: ckpt_stats,
                        visited: visited.snapshot()?,
                        parents: parents.snapshot()?,
                        frontier: encode_frontier(&stack),
                    };
                    checkpoint::write(&policy.dir, digest, &data)?;
                    last_ckpt = visited.len();
                }
            }
            if interrupt_hit || abort_hit {
                finalize_sequential(&mut stats, &visited, &parents, base_duration, start);
                #[cfg(feature = "telemetry")]
                self.final_snapshot(&stats, stack.len(), 1);
                return Ok(Report {
                    counterexample: None,
                    stats,
                    complete: false,
                    interrupted: true,
                });
            }
            let Some((config, fp, depth, sleep, fresh)) = stack.pop() else {
                break;
            };
            #[cfg(feature = "telemetry")]
            {
                tasks_since_snapshot += 1;
                if tasks_since_snapshot >= SNAPSHOT_EVERY_TASKS {
                    tasks_since_snapshot = 0;
                    stats.spilled_states = visited.spill_counters().records as usize;
                    let (states, frontier) = (visited.len(), stack.len());
                    self.telemetry.maybe_snapshot(0, |elapsed| {
                        snapshot_from(&stats, states, frontier, 1, elapsed)
                    });
                }
            }
            arena.phases.begin_task(task_index);
            task_index += 1;
            stats.max_depth = stats.max_depth.max(depth);
            if depth >= self.options.max_depth {
                stats.truncated = true;
                continue;
            }
            engine.enabled_machines_into(&config, &mut enabled);
            if fresh {
                // Diagnostics are per-state; a sleep-widening revisit
                // must not double-count quiescence or queue peaks.
                self.note_diagnostics(&config, &enabled, &mut stats);
            }
            // Machines explored at this state go to sleep for the ones
            // after them (their interleavings are covered below the
            // earlier siblings); `enabled_machines` returns ascending
            // ids, so the accumulation order is deterministic.
            let mut cur_sleep = sleep;
            for &id in &enabled {
                if cur_sleep.contains(id) {
                    stats.sleep_pruned += 1;
                    continue;
                }
                crate::succ::successors_into(
                    &engine,
                    &config,
                    id,
                    self.options.granularity,
                    &mut succs,
                    &mut arena,
                )?;
                for mut succ in succs.drain(..) {
                    stats.transitions += 1;
                    // Parent edges store compact step seeds; only an
                    // error path renders human-readable summaries.
                    let seed = |succ: &mut crate::succ::Successor| {
                        let choices = std::mem::take(&mut succ.choices);
                        crate::trace::StepSeed::from_run(succ.machine, &succ.result, choices)
                    };
                    if let ExecOutcome::Error(e) = &succ.result.outcome {
                        let error = e.clone();
                        let mut trace = parents.reconstruct(fp, self.program)?;
                        let choices = std::mem::take(&mut succ.choices);
                        trace.push(TraceStep::from_run(
                            self.program,
                            succ.machine,
                            &succ.result,
                            choices,
                        ));
                        finalize_sequential(&mut stats, &visited, &parents, base_duration, start);
                        #[cfg(feature = "telemetry")]
                        self.final_snapshot(&stats, stack.len(), 1);
                        return Ok(Report {
                            counterexample: Some(Counterexample { error, trace }),
                            stats,
                            complete: false,
                            interrupted: false,
                        });
                    }
                    let t = arena.phases.start();
                    let succ_fp = Fingerprint::from_u128(succ.config.digest());
                    arena.phases.stop(crate::phase::Phase::Digest, t);
                    // With symmetry on, the visited set is keyed by the
                    // canonical fingerprint; everything else (parent
                    // edges, stack tasks, traces) stays concrete.
                    let succ_key = symmetry.then(|| {
                        *canon_cache.entry(succ_fp).or_insert_with(|| {
                            let t = arena.phases.start();
                            let key = Fingerprint::from_u128(canonical_digest(&mut succ.config));
                            arena.phases.stop(crate::phase::Phase::Canon, t);
                            key
                        })
                    });
                    let table_t = arena.phases.start();
                    match &por {
                        None => {
                            let admitted = match succ_key {
                                Some(key) => match visited.admit_sym(key, succ_fp, || {
                                    succ.config.intern_slots(&mut interner)
                                })? {
                                    AdmitSym::New => Admit::New,
                                    AdmitSym::Seen { merged } => {
                                        if merged {
                                            stats.symmetry_merges += 1;
                                        }
                                        Admit::Seen
                                    }
                                    AdmitSym::OverBound => Admit::OverBound,
                                },
                                None => visited
                                    .admit(succ_fp, || succ.config.intern_slots(&mut interner))?,
                            };
                            match admitted {
                                Admit::New => {
                                    parents.record(succ_fp, fp, seed(&mut succ))?;
                                    stack.push((
                                        std::mem::take(&mut succ.config),
                                        succ_fp,
                                        depth + 1,
                                        SleepSet::empty(),
                                        true,
                                    ));
                                }
                                Admit::Seen => stats.dedup_hits += 1,
                                Admit::OverBound => stats.truncated = true,
                            }
                        }
                        Some(por) => {
                            let taken = por.run_footprint(id, &succ.result);
                            let child_sleep = por.filter_sleep(&config, cur_sleep, &taken);
                            let admitted = match succ_key {
                                Some(key) => visited.admit_sleep_sym(
                                    key,
                                    succ_fp,
                                    || succ.config.intern_slots(&mut interner),
                                    child_sleep,
                                )?,
                                None => {
                                    match visited.admit_sleep(
                                        succ_fp,
                                        || succ.config.intern_slots(&mut interner),
                                        child_sleep,
                                    )? {
                                        AdmitSleep::New => AdmitSleepSym::New,
                                        AdmitSleep::Covered => {
                                            AdmitSleepSym::Covered { merged: false }
                                        }
                                        AdmitSleep::Widen(sleep) => AdmitSleepSym::Widen {
                                            sleep,
                                            merged: false,
                                        },
                                        AdmitSleep::OverBound => AdmitSleepSym::OverBound,
                                    }
                                }
                            };
                            match admitted {
                                AdmitSleepSym::New => {
                                    let seed = seed(&mut succ);
                                    parents.record(succ_fp, fp, seed)?;
                                    stack.push((
                                        std::mem::take(&mut succ.config),
                                        succ_fp,
                                        depth + 1,
                                        child_sleep,
                                        true,
                                    ));
                                }
                                AdmitSleepSym::Covered { merged } => {
                                    stats.dedup_hits += 1;
                                    if merged {
                                        stats.symmetry_merges += 1;
                                    }
                                }
                                AdmitSleepSym::Widen { sleep, merged } => {
                                    if merged {
                                        // A sibling re-expansion needs its
                                        // own (first-wins) parent edge: the
                                        // orbit's edge belongs to the
                                        // representative's concrete state.
                                        stats.symmetry_merges += 1;
                                        parents
                                            .record_if_absent(succ_fp, fp, || seed(&mut succ))?;
                                    }
                                    stack.push((
                                        std::mem::take(&mut succ.config),
                                        succ_fp,
                                        depth + 1,
                                        sleep,
                                        false,
                                    ));
                                }
                                AdmitSleepSym::OverBound => stats.truncated = true,
                            }
                        }
                    }
                    arena.phases.stop(crate::phase::Phase::Table, table_t);
                    arena.recycle(succ);
                }
                if por.is_some() {
                    cur_sleep.insert(id);
                }
            }
            arena.recycle_config(config);
            arena.phases.drain_into(&mut stats.phases);
        }

        finalize_sequential(&mut stats, &visited, &parents, base_duration, start);
        #[cfg(feature = "telemetry")]
        self.final_snapshot(&stats, 0, 1);
        Ok(Report {
            counterexample: None,
            complete: !stats.truncated,
            stats,
            interrupted: false,
        })
    }

    /// Records the end-of-run snapshot and closes the progress line.
    #[cfg(feature = "telemetry")]
    fn final_snapshot(&self, stats: &ExplorationStats, frontier: usize, workers: u64) {
        self.telemetry.snapshot_now(0, |elapsed| {
            snapshot_from(stats, stats.unique_states, frontier, workers, elapsed)
        });
        self.telemetry.finish_progress();
    }

    /// Parallel work-stealing engine (see DESIGN.md §9).
    fn try_check_parallel(&self, jobs: usize) -> Result<Report, CheckerError> {
        let start = Instant::now();
        let options = &self.options;
        let digest = self.config_digest();
        let spill = SpillDir::prepare(options)?;
        let spill_cfg = spill_config(options, &spill);

        let resumed = match &options.resume {
            Some(dir) => Some(checkpoint::load(dir, digest)?),
            None => None,
        };

        let counters = SharedCounters::default();
        // One intern table shared by every worker (a mutex taken only on
        // the New path, a minority of offers): with a single table the
        // marginal byte accounting is insertion-order-independent —
        // every distinct slot counts exactly once globally — so
        // `stored_bytes` agrees bit-for-bit with the sequential engine.
        let interner = Mutex::new(SlotInterner::new());
        let mut base_duration = Duration::ZERO;
        let mut base_truncated = false;
        let (table, frontier) = match resumed {
            None => {
                let table = match spill_cfg {
                    None => SharedTable::new(options.max_states),
                    Some((dir, cap)) => SharedTable::with_spill(options.max_states, dir, cap)?,
                };
                let mut init = self.engine().initial_config();
                let init_fp = Fingerprint::from_u128(init.digest());
                if options.symmetry {
                    let init_key = Fingerprint::from_u128(canonical_digest(&mut init));
                    table.admit_root_sym(init_key, init_fp, || {
                        init.intern_slots(&mut interner.lock())
                    });
                } else {
                    table.admit_root(init_fp, || init.intern_slots(&mut interner.lock()));
                }
                let frontier: Frontier<Task> =
                    Frontier::new(jobs, (init, init_fp, 0, SleepSet::empty(), true));
                (table, frontier)
            }
            Some(ckpt) => {
                let table = SharedTable::restore(
                    options.max_states,
                    spill_cfg,
                    &ckpt.visited,
                    ckpt.parents,
                    ckpt.stats.stored_bytes,
                )?;
                let tasks = decode_frontier(&ckpt.frontier, self.program)?;
                let mut base = ckpt.stats;
                base_duration = base.duration;
                base_truncated = base.truncated;
                base.unique_states = 0;
                base.stored_bytes = 0;
                // Preload the cumulative exploration counters; spill
                // counters stay per-process (`flush` never moves them).
                counters.flush(&base, &mut ExplorationStats::default());
                (table, Frontier::from_tasks(jobs, tasks))
            }
        };

        let ctl = ParallelControl {
            policy: options.checkpoint.as_ref(),
            interrupt: options.interrupt.clone(),
            digest,
            base_duration,
            base_truncated,
            start,
            claimed: AtomicBool::new(false),
            last_ckpt: AtomicUsize::new(table.unique()),
            error: Mutex::new(None),
            interrupted: AtomicBool::new(false),
        };

        // First violation wins: (parent fingerprint, final step, error).
        let first_error: Mutex<Option<(Fingerprint, TraceStep, PError)>> = Mutex::new(None);
        let depth_truncated = AtomicBool::new(false);

        let (worker_tasks, panic_msg) = std::thread::scope(|scope| {
            let workers: Vec<_> = (0..jobs)
                .map(|w| {
                    let frontier = &frontier;
                    let table = &table;
                    let first_error = &first_error;
                    let depth_truncated = &depth_truncated;
                    let counters = &counters;
                    let ctl = &ctl;
                    let interner = &interner;
                    scope.spawn(move || {
                        self.expand_worker(
                            w,
                            jobs,
                            frontier,
                            table,
                            interner,
                            first_error,
                            depth_truncated,
                            counters,
                            ctl,
                        )
                    })
                })
                .collect();
            let mut worker_tasks = Vec::with_capacity(jobs);
            let mut panic_msg: Option<String> = None;
            for handle in workers {
                match handle.join() {
                    Ok(tasks) => worker_tasks.push(tasks),
                    Err(payload) => {
                        let msg = payload
                            .downcast_ref::<String>()
                            .cloned()
                            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                            .unwrap_or_else(|| "worker panicked".to_string());
                        panic_msg = Some(msg);
                    }
                }
            }
            (worker_tasks, panic_msg)
        });
        if let Some(msg) = panic_msg {
            return Err(CheckerError::WorkerPanic(msg));
        }
        if let Some(error) = ctl.error.lock().take() {
            return Err(error);
        }

        // Final totals come exclusively from the shared counters (every
        // worker flushes its remaining delta on exit, including the
        // `break 'tasks` counterexample path) and the shared table —
        // never from re-merging worker-local stats, so nothing can be
        // counted twice and an aborted run still reports exact totals.
        let mut stats = counters.totals();
        #[cfg(feature = "telemetry")]
        if let Some(metrics) = self.telemetry.metrics() {
            let utilization = metrics.histogram("checker.worker.tasks");
            for &tasks in &worker_tasks {
                utilization.observe(tasks);
            }
        }
        #[cfg(not(feature = "telemetry"))]
        let _ = worker_tasks;

        stats.unique_states = table.unique();
        stats.stored_bytes = table.stored_bytes();
        let (spilled_states, spill_bytes, cold_hits) = table.spill_stats();
        stats.spilled_states = spilled_states;
        stats.spill_bytes = spill_bytes;
        stats.cold_hits = cold_hits;
        stats.truncated |=
            base_truncated || table.truncated() || depth_truncated.load(Ordering::SeqCst);
        stats.duration = base_duration + start.elapsed();
        #[cfg(feature = "telemetry")]
        self.final_snapshot(&stats, frontier.pending(), jobs as u64);

        let counterexample = match first_error.lock().take() {
            None => None,
            Some((parent_fp, step, error)) => {
                // Workers have joined; the shared parents map is
                // quiescent and holds a complete root path for every
                // admitted state.
                let mut trace = table.reconstruct(parent_fp, self.program)?;
                trace.push(step);
                Some(Counterexample { error, trace })
            }
        };
        let interrupted = ctl.interrupted.load(Ordering::SeqCst) && counterexample.is_none();
        let complete = counterexample.is_none() && !stats.truncated && !interrupted;
        Ok(Report {
            counterexample,
            stats,
            complete,
            interrupted,
        })
    }

    /// One parallel worker: expand tasks until the frontier drains or a
    /// violation stops the search. Keeps thread-local stats and flushes
    /// deltas to the shared [`SharedCounters`] after every expanded task
    /// and unconditionally on exit, so the shared totals are exact on
    /// every exit path. Returns the number of tasks this worker expanded
    /// (the per-worker utilization sample).
    #[allow(clippy::too_many_arguments)]
    fn expand_worker(
        &self,
        worker: usize,
        jobs: usize,
        frontier: &Frontier<Task>,
        table: &SharedTable,
        interner: &Mutex<SlotInterner>,
        first_error: &Mutex<Option<(Fingerprint, TraceStep, PError)>>,
        depth_truncated: &AtomicBool,
        counters: &SharedCounters,
        ctl: &ParallelControl<'_>,
    ) -> u64 {
        let engine = self.engine().with_dequeue_log(false);
        let mut stats = ExplorationStats::default();
        let mut flushed = ExplorationStats::default();
        let mut tasks = 0u64;
        #[cfg(not(feature = "telemetry"))]
        let _ = jobs;
        let por = self.options.por.then(|| Por::new(self.program));
        let symmetry = self.options.symmetry;
        let mut succs = Vec::new();
        let mut arena = crate::succ::SuccArena::new();
        let mut enabled = Vec::new();
        // Per-worker concrete → canonical memo (see `check_sequential`).
        // Workers may canonicalize a state another worker has already
        // seen, but never the same state twice themselves.
        let mut canon_cache: FpHashMap<Fingerprint> = FpHashMap::default();
        'tasks: while let Some((config, fp, depth, sleep, fresh)) = frontier.next(worker) {
            tasks += 1;
            arena.phases.begin_task(tasks);
            stats.max_depth = stats.max_depth.max(depth);
            if depth >= self.options.max_depth {
                depth_truncated.store(true, Ordering::SeqCst);
                frontier.task_done();
                continue;
            }
            engine.enabled_machines_into(&config, &mut enabled);
            if fresh {
                self.note_diagnostics(&config, &enabled, &mut stats);
            }
            let mut cur_sleep = sleep;
            for &id in &enabled {
                if cur_sleep.contains(id) {
                    stats.sleep_pruned += 1;
                    continue;
                }
                if let Err(error) = crate::succ::successors_into(
                    &engine,
                    &config,
                    id,
                    self.options.granularity,
                    &mut succs,
                    &mut arena,
                ) {
                    report_worker_error(ctl, frontier, error.into());
                    frontier.task_done();
                    break 'tasks;
                }
                for mut succ in succs.drain(..) {
                    stats.transitions += 1;
                    if let ExecOutcome::Error(e) = &succ.result.outcome {
                        let choices = std::mem::take(&mut succ.choices);
                        let step =
                            TraceStep::from_run(self.program, succ.machine, &succ.result, choices);
                        let mut slot = first_error.lock();
                        if slot.is_none() {
                            *slot = Some((fp, step, e.clone()));
                        }
                        drop(slot);
                        frontier.request_stop();
                        frontier.task_done();
                        break 'tasks;
                    }
                    let t = arena.phases.start();
                    let succ_fp = Fingerprint::from_u128(succ.config.digest());
                    arena.phases.stop(crate::phase::Phase::Digest, t);
                    let succ_key = symmetry.then(|| {
                        *canon_cache.entry(succ_fp).or_insert_with(|| {
                            let t = arena.phases.start();
                            let key = Fingerprint::from_u128(canonical_digest(&mut succ.config));
                            arena.phases.stop(crate::phase::Phase::Canon, t);
                            key
                        })
                    });
                    let table_t = arena.phases.start();
                    let config_slots = &mut succ.config;
                    let bytes = || config_slots.intern_slots(&mut interner.lock());
                    let choices = &mut succ.choices;
                    let result = &succ.result;
                    let step =
                        || crate::trace::StepSeed::from_run(id, result, std::mem::take(choices));
                    match &por {
                        None => {
                            let admitted =
                                match succ_key {
                                    Some(key) => table
                                        .admit_sym(key, succ_fp, bytes, fp, step)
                                        .map(|admitted| match admitted {
                                            AdmitSym::New => Admit::New,
                                            AdmitSym::Seen { merged } => {
                                                if merged {
                                                    stats.symmetry_merges += 1;
                                                }
                                                Admit::Seen
                                            }
                                            AdmitSym::OverBound => Admit::OverBound,
                                        }),
                                    None => table.admit(succ_fp, bytes, fp, step),
                                };
                            let admitted = match admitted {
                                Ok(admitted) => admitted,
                                Err(error) => {
                                    report_worker_error(ctl, frontier, error);
                                    frontier.task_done();
                                    break 'tasks;
                                }
                            };
                            match admitted {
                                Admit::New => frontier.push(
                                    worker,
                                    (
                                        std::mem::take(&mut succ.config),
                                        succ_fp,
                                        depth + 1,
                                        SleepSet::empty(),
                                        true,
                                    ),
                                ),
                                Admit::Seen => stats.dedup_hits += 1,
                                Admit::OverBound => {}
                            }
                        }
                        Some(por) => {
                            let taken = por.run_footprint(id, result);
                            let child_sleep = por.filter_sleep(&config, cur_sleep, &taken);
                            let admitted = match succ_key {
                                Some(key) => table.admit_sleep_sym(
                                    key,
                                    succ_fp,
                                    bytes,
                                    child_sleep,
                                    fp,
                                    step,
                                ),
                                None => table
                                    .admit_sleep(succ_fp, bytes, child_sleep, fp, step)
                                    .map(|admitted| match admitted {
                                        AdmitSleep::New => AdmitSleepSym::New,
                                        AdmitSleep::Covered => {
                                            AdmitSleepSym::Covered { merged: false }
                                        }
                                        AdmitSleep::Widen(sleep) => AdmitSleepSym::Widen {
                                            sleep,
                                            merged: false,
                                        },
                                        AdmitSleep::OverBound => AdmitSleepSym::OverBound,
                                    }),
                            };
                            let admitted = match admitted {
                                Ok(admitted) => admitted,
                                Err(error) => {
                                    report_worker_error(ctl, frontier, error);
                                    frontier.task_done();
                                    break 'tasks;
                                }
                            };
                            match admitted {
                                AdmitSleepSym::New => frontier.push(
                                    worker,
                                    (
                                        std::mem::take(&mut succ.config),
                                        succ_fp,
                                        depth + 1,
                                        child_sleep,
                                        true,
                                    ),
                                ),
                                AdmitSleepSym::Covered { merged } => {
                                    stats.dedup_hits += 1;
                                    if merged {
                                        stats.symmetry_merges += 1;
                                    }
                                }
                                AdmitSleepSym::OverBound => {}
                                AdmitSleepSym::Widen { sleep, merged } => {
                                    if merged {
                                        stats.symmetry_merges += 1;
                                    }
                                    frontier.push(
                                        worker,
                                        (
                                            std::mem::take(&mut succ.config),
                                            succ_fp,
                                            depth + 1,
                                            sleep,
                                            false,
                                        ),
                                    );
                                }
                            }
                        }
                    }
                    arena.phases.stop(crate::phase::Phase::Table, table_t);
                    arena.recycle(succ);
                }
                if por.is_some() {
                    cur_sleep.insert(id);
                }
            }
            arena.recycle_config(config);
            arena.phases.drain_into(&mut stats.phases);
            frontier.task_done();
            counters.flush(&stats, &mut flushed);
            self.parallel_control(ctl, frontier, table, counters, depth_truncated);
            #[cfg(feature = "telemetry")]
            if tasks.is_multiple_of(SNAPSHOT_EVERY_TASKS as u64) {
                self.telemetry.maybe_snapshot(worker as u32, |elapsed| {
                    let mut totals = counters.totals();
                    totals.unique_states = table.unique();
                    totals.spilled_states = table.spill_stats().0;
                    snapshot_from(
                        &totals,
                        totals.unique_states,
                        frontier.pending(),
                        jobs as u64,
                        elapsed,
                    )
                });
            }
        }
        counters.flush(&stats, &mut flushed);
        frontier.retire();
        tasks
    }

    /// The parallel engines' checkpoint/interrupt control point, run by
    /// every worker between tasks. When a checkpoint or stop is due, one
    /// worker claims leadership, parks the others at the frontier
    /// rendezvous (making the table, counters and queues quiescent),
    /// serializes everything, and either resumes the fleet or shuts it
    /// down (interrupt / abort-after).
    fn parallel_control(
        &self,
        ctl: &ParallelControl<'_>,
        frontier: &Frontier<Task>,
        table: &SharedTable,
        counters: &SharedCounters,
        depth_truncated: &AtomicBool,
    ) {
        let interrupt_hit = ctl
            .interrupt
            .as_ref()
            .is_some_and(|flag| flag.load(Ordering::SeqCst));
        let Some(policy) = ctl.policy else {
            if interrupt_hit {
                ctl.interrupted.store(true, Ordering::SeqCst);
                frontier.request_stop();
            }
            return;
        };
        let abort_hit = policy
            .abort_after_states
            .is_some_and(|n| table.unique() >= n);
        let due = table.unique() >= ctl.last_ckpt.load(Ordering::SeqCst) + policy.every_states;
        if !(interrupt_hit || abort_hit || due) {
            return;
        }
        if ctl.claimed.swap(true, Ordering::SeqCst) {
            return; // another worker is already checkpointing
        }
        frontier.pause_workers();
        frontier.await_rendezvous();
        let result = (|| {
            let (visited, parents) = table.snapshot()?;
            let mut stats = counters.totals();
            stats.unique_states = table.unique();
            stats.stored_bytes = table.stored_bytes();
            stats.truncated =
                ctl.base_truncated || table.truncated() || depth_truncated.load(Ordering::SeqCst);
            stats.duration = ctl.base_duration + ctl.start.elapsed();
            let frontier_tasks = encode_frontier(&frontier.snapshot_tasks());
            checkpoint::write(
                &policy.dir,
                ctl.digest,
                &CheckpointData {
                    stats,
                    visited,
                    parents,
                    frontier: frontier_tasks,
                },
            )
        })();
        match result {
            Err(error) => {
                let mut slot = ctl.error.lock();
                if slot.is_none() {
                    *slot = Some(error);
                }
                drop(slot);
                frontier.request_stop();
            }
            Ok(()) => {
                if interrupt_hit || abort_hit {
                    ctl.interrupted.store(true, Ordering::SeqCst);
                    frontier.request_stop();
                } else {
                    ctl.last_ckpt.store(table.unique(), Ordering::SeqCst);
                }
            }
        }
        frontier.resume_workers();
        ctl.claimed.store(false, Ordering::SeqCst);
    }
}

/// Shared control state for the parallel engine's checkpoint/interrupt
/// protocol.
#[derive(Debug)]
struct ParallelControl<'a> {
    policy: Option<&'a CheckpointPolicy>,
    interrupt: Option<Arc<AtomicBool>>,
    digest: u128,
    base_duration: Duration,
    base_truncated: bool,
    start: Instant,
    /// One checkpoint leader at a time.
    claimed: AtomicBool,
    /// `unique()` at the last checkpoint (cadence reference).
    last_ckpt: AtomicUsize,
    /// First I/O error from any worker or the checkpoint leader.
    error: Mutex<Option<CheckerError>>,
    /// Set when the run stopped on interrupt or abort-after.
    interrupted: AtomicBool,
}

/// Records a worker-side [`CheckerError`] (first wins) and shuts the
/// fleet down.
fn report_worker_error(ctl: &ParallelControl<'_>, frontier: &Frontier<Task>, error: CheckerError) {
    let mut slot = ctl.error.lock();
    if slot.is_none() {
        *slot = Some(error);
    }
    drop(slot);
    frontier.request_stop();
}

/// Where the spill (cold-tier) files live. Dropping the guard deletes
/// the directory: checkpoints are self-contained (a snapshot drains the
/// cold stores into the checkpoint file), so spill files never outlive
/// the process that wrote them.
#[derive(Debug)]
struct SpillDir {
    path: PathBuf,
}

impl SpillDir {
    /// Prepares a fresh spill directory when a memory limit is set:
    /// under the checkpoint (or resume) directory if one is configured,
    /// else under the system temp directory.
    fn prepare(options: &CheckerOptions) -> Result<Option<SpillDir>, CheckerError> {
        if options.mem_limit.is_none() {
            return Ok(None);
        }
        let path = match (&options.checkpoint, &options.resume) {
            (Some(policy), _) => policy.dir.join("spill"),
            (None, Some(dir)) => dir.join("spill"),
            (None, None) => std::env::temp_dir().join(format!("p-spill-{}", std::process::id())),
        };
        let _ = fs::remove_dir_all(&path);
        fs::create_dir_all(&path).map_err(|e| CheckerError::io(&path, e))?;
        Ok(Some(SpillDir { path }))
    }
}

impl Drop for SpillDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.path);
    }
}

/// The `(dir, hot_budget_bytes)` pair the tiered structures take,
/// derived from the prepared spill directory and the memory limit.
fn spill_config<'a>(
    options: &CheckerOptions,
    spill: &'a Option<SpillDir>,
) -> Option<(&'a Path, usize)> {
    let limit = options.mem_limit?;
    spill
        .as_ref()
        .map(|dir| (dir.path.as_path(), hot_budget_for(limit)))
}

/// [`spill_config`] with the byte budget converted to the edge-count
/// cap [`TieredParents`] takes.
fn parent_spill_config<'a>(
    options: &CheckerOptions,
    spill: &'a Option<SpillDir>,
) -> Option<(&'a Path, usize)> {
    spill_config(options, spill).map(|(dir, budget)| (dir, parent_cap_for(budget)))
}

/// Serializes frontier tasks for a checkpoint (order-preserving: the
/// sequential stack must pop identically after a resume).
fn encode_frontier(tasks: &[Task]) -> Vec<TaskEntry> {
    tasks
        .iter()
        .map(|(config, fp, depth, sleep, fresh)| TaskEntry {
            cfg: config.canonical_bytes(),
            fp: fp.as_u128(),
            depth: *depth as u64,
            sleep: sleep.0,
            fresh: *fresh,
        })
        .collect()
}

/// Decodes checkpointed frontier tasks back into live configurations.
fn decode_frontier(
    entries: &[TaskEntry],
    program: &LoweredProgram,
) -> Result<Vec<Task>, CheckerError> {
    let n_events = program.event_count();
    entries
        .iter()
        .map(|t| {
            let config = Config::from_canonical_bytes(&t.cfg, n_events).map_err(|e| {
                CheckerError::CheckpointFormat(format!(
                    "undecodable frontier configuration in checkpoint: {e}"
                ))
            })?;
            Ok((
                config,
                Fingerprint::from_u128(t.fp),
                t.depth as usize,
                SleepSet(t.sleep),
                t.fresh,
            ))
        })
        .collect()
}

/// Finalizes the sequential engine's stats from the live tiered
/// structures: authoritative state/byte counts, per-process spill
/// activity, and accumulated wall-clock time across resumes.
fn finalize_sequential(
    stats: &mut ExplorationStats,
    visited: &TieredSet,
    parents: &TieredParents,
    base_duration: Duration,
    start: Instant,
) {
    stats.unique_states = visited.len();
    stats.stored_bytes = visited.stored_bytes();
    let vc = visited.spill_counters();
    let pc = parents.spill_counters();
    stats.spilled_states = vc.records as usize;
    stats.spill_bytes = vc.bytes_written + pc.bytes_written;
    stats.cold_hits = vc.hits + pc.hits;
    stats.duration = base_duration + start.elapsed();
}

/// A unit of parallel work: the state, its fingerprint and depth, the
/// sleep set to expand it with, and whether this is its first visit.
/// (The sequential engine's stack entries share the shape.)
type Task = (Config, Fingerprint, usize, SleepSet, bool);

impl Verifier<'_> {
    /// Records queue-length and quiescence diagnostics for one visited
    /// configuration. `enabled` is the precomputed
    /// [`Engine::enabled_machines`] list for `config`, so expansion and
    /// diagnostics share one enabledness scan per state.
    pub(crate) fn note_diagnostics(
        &self,
        config: &Config,
        enabled: &[MachineId],
        stats: &mut ExplorationStats,
    ) {
        let mut pending = 0usize;
        for id in config.live_ids() {
            if let Some(m) = config.machine(id) {
                stats.max_queue_seen = stats.max_queue_seen.max(m.queue.len());
                pending += m.queue.len();
            }
        }
        if enabled.is_empty() {
            stats.quiescent_states += 1;
            if pending > 0 {
                stats.stuck_states += 1;
            }
        }
    }
}

/// Convenience: the id of the initial machine in a fresh configuration
/// (always the first allocated).
pub(crate) fn initial_machine() -> MachineId {
    MachineId(0)
}

/// Builds a telemetry snapshot from running exploration totals.
/// `states` is passed separately because the sequential engine reads it
/// from the visited set (stats.unique_states is only filled at the end).
#[cfg(feature = "telemetry")]
fn snapshot_from(
    stats: &ExplorationStats,
    states: usize,
    frontier: usize,
    workers: u64,
    elapsed_micros: u64,
) -> p_telemetry::ExplorationSnapshot {
    p_telemetry::ExplorationSnapshot {
        elapsed_micros,
        states: states as u64,
        transitions: stats.transitions as u64,
        frontier: frontier as u64,
        dedup_hits: stats.dedup_hits as u64,
        sleep_pruned: stats.sleep_pruned as u64,
        symmetry_merges: stats.symmetry_merges as u64,
        max_depth: stats.max_depth as u64,
        workers,
        spilled: stats.spilled_states as u64,
    }
}
