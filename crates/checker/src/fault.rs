//! Environment-fault injection during exploration.
//!
//! The paper's checker enumerates *schedules*; real drivers additionally
//! face a faulty environment — interrupts that get lost, messages that
//! arrive twice, deliveries reordered past the FIFO order the semantics
//! otherwise guarantees. This module adds a bounded *fault scheduler* to
//! the search: at most `budget` times along any path it may tamper with
//! one queued event — dropping it, duplicating it (bypassing the ⊕
//! dedup of §3.1), or delaying it behind the rest of its queue.
//!
//! The fault budget plays the same role for environment faults that the
//! delay bound (§5) plays for scheduling: a small budget buys most of
//! the robustness coverage while keeping the explored space finite, and
//! budget 0 degenerates to the fault-free search.

use std::fmt;
use std::time::Instant;

use p_semantics::{Config, EventId, ExecOutcome, MachineId};

use crate::engine::{Admit, BoundedSet, ParentMap};
use crate::error::CheckerError;
use crate::explore::{Report, Verifier};
use crate::fingerprint::Fingerprint;
use crate::stats::ExplorationStats;
use crate::trace::{Counterexample, TraceStep};

/// One kind of environment fault the scheduler may inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Remove a queued event: the send happened but delivery is lost.
    Drop,
    /// Append a copy of a queued event to the back of the same queue,
    /// bypassing the ⊕ dedup — the environment re-delivers a message.
    Dup,
    /// Move a queued event to the back of its queue, letting later
    /// arrivals overtake it.
    Delay,
}

impl FaultKind {
    /// All fault kinds, in canonical order.
    pub const ALL: [FaultKind; 3] = [FaultKind::Drop, FaultKind::Dup, FaultKind::Delay];

    /// The CLI tag for this kind (`drop`, `dup`, `delay`).
    pub fn tag(self) -> &'static str {
        match self {
            FaultKind::Drop => "drop",
            FaultKind::Dup => "dup",
            FaultKind::Delay => "delay",
        }
    }

    /// Parses a comma-separated kind list such as `drop,dup,delay`.
    /// Duplicates are removed; order is preserved.
    pub fn parse_list(s: &str) -> Result<Vec<FaultKind>, String> {
        let mut out = Vec::new();
        for part in s.split(',') {
            let part = part.trim();
            let kind = match part {
                "drop" => FaultKind::Drop,
                "dup" => FaultKind::Dup,
                "delay" => FaultKind::Delay,
                "" => return Err("empty fault kind in list".to_owned()),
                other => {
                    return Err(format!(
                        "unknown fault kind `{other}` (expected drop, dup, delay)"
                    ))
                }
            };
            if !out.contains(&kind) {
                out.push(kind);
            }
        }
        if out.is_empty() {
            return Err("empty fault kind list".to_owned());
        }
        Ok(out)
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

/// One concrete fault the scheduler injected: which kind, on which
/// machine's queue, at which index. The event id at that index is
/// recorded so replay can detect a stale or tampered trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultDecision {
    /// What was done to the queue entry.
    pub kind: FaultKind,
    /// The machine whose input queue was tampered with.
    pub machine: MachineId,
    /// Index into that queue at the moment of injection.
    pub index: usize,
    /// The event that was queued at `index` (for replay validation).
    pub event: EventId,
}

/// Enumerates and applies environment faults, bounded by a budget.
#[derive(Debug, Clone)]
pub struct FaultScheduler {
    budget: usize,
    kinds: Vec<FaultKind>,
}

impl FaultScheduler {
    /// A scheduler allowing at most `budget` faults of the given kinds
    /// along any path. An empty `kinds` slice means all kinds.
    pub fn new(budget: usize, kinds: &[FaultKind]) -> FaultScheduler {
        let kinds = if kinds.is_empty() {
            FaultKind::ALL.to_vec()
        } else {
            kinds.to_vec()
        };
        FaultScheduler { budget, kinds }
    }

    /// The fault budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// The fault kinds in play.
    pub fn kinds(&self) -> &[FaultKind] {
        &self.kinds
    }

    /// All faults injectable in `config` given `used` faults already
    /// spent. Empty once the budget is exhausted. A `Delay` of the last
    /// queue entry is a no-op and is not enumerated.
    pub fn faults_for(&self, config: &Config, used: usize) -> Vec<FaultDecision> {
        let mut out = Vec::new();
        if used >= self.budget {
            return out;
        }
        for id in config.live_ids() {
            let Some(m) = config.machine(id) else {
                continue;
            };
            for (index, &(event, _)) in m.queue.iter().enumerate() {
                for &kind in &self.kinds {
                    if kind == FaultKind::Delay && index + 1 >= m.queue.len() {
                        continue;
                    }
                    out.push(FaultDecision {
                        kind,
                        machine: id,
                        index,
                        event,
                    });
                }
            }
        }
        out
    }

    /// Applies `decision` to `config`, validating that the target queue
    /// still looks as recorded (used both by the search and by replay).
    pub fn apply(decision: &FaultDecision, config: &mut Config) -> Result<(), String> {
        let Some(m) = config.machine_mut(decision.machine) else {
            return Err(format!("fault target {} is not alive", decision.machine));
        };
        let len = m.queue.len();
        if decision.index >= len {
            return Err(format!(
                "fault index {} out of range (queue of {} has {len} entries)",
                decision.index, decision.machine
            ));
        }
        if m.queue[decision.index].0 != decision.event {
            return Err(format!(
                "queue[{}] of {} no longer holds the recorded event",
                decision.index, decision.machine
            ));
        }
        match decision.kind {
            FaultKind::Drop => {
                m.queue.remove(decision.index);
            }
            FaultKind::Dup => {
                let entry = m.queue[decision.index];
                m.queue.push(entry);
            }
            FaultKind::Delay => {
                if decision.index + 1 >= len {
                    return Err(format!(
                        "delaying the last entry of {}'s queue is a no-op",
                        decision.machine
                    ));
                }
                let entry = m.queue.remove(decision.index);
                m.queue.push(entry);
            }
        }
        Ok(())
    }
}

/// Report of a fault-injecting exploration.
#[derive(Debug, Clone)]
pub struct FaultReport {
    /// The safety result and statistics. `stats.unique_states` counts
    /// unique *configurations*; (configuration, faults-used) nodes are
    /// reported separately.
    pub report: Report,
    /// The fault budget used.
    pub fault_budget: usize,
    /// The fault kinds that were in play.
    pub kinds: Vec<FaultKind>,
    /// Unique (configuration, faults-used) pairs visited.
    pub fault_nodes: usize,
    /// Fault injections explored (edges, not unique nodes).
    pub fault_transitions: usize,
}

impl Verifier<'_> {
    /// Exhaustive search augmented with environment-fault injection: at
    /// every visited state, besides running each enabled machine, the
    /// checker may spend one unit of `budget` to drop, duplicate or
    /// delay any queued event (restricted to `kinds`; empty = all).
    ///
    /// With `budget = 0` this coincides with [`Verifier::check_exhaustive`].
    /// Fault injections appear in counterexample traces as dedicated
    /// steps and replay deterministically.
    ///
    /// # Panics
    ///
    /// Panics on a fatal [`CheckerError`] (a corrupt lowering — an engine
    /// bug, not a property violation). Use
    /// [`Verifier::try_check_with_faults`] to handle it.
    pub fn check_with_faults(&self, budget: usize, kinds: &[FaultKind]) -> FaultReport {
        self.try_check_with_faults(budget, kinds)
            .expect("fault-injecting search failed; use try_check_with_faults to handle errors")
    }

    /// [`Verifier::check_with_faults`], surfacing fatal semantics errors
    /// instead of panicking.
    pub fn try_check_with_faults(
        &self,
        budget: usize,
        kinds: &[FaultKind],
    ) -> Result<FaultReport, CheckerError> {
        let scheduler = FaultScheduler::new(budget, kinds);
        let engine = self.engine();
        let start = Instant::now();
        let mut stats = ExplorationStats::default();
        let mut fault_transitions = 0usize;

        let mut init = engine.initial_config();
        let (init_digest, init_len) = init.digest_and_len();

        let mut config_states = BoundedSet::new(self.options().max_states);
        config_states.admit(Fingerprint::from_u128(init_digest), || init_len);

        // Node space = bounded configurations × budget+1 fault counts.
        let mut node_seen = BoundedSet::unbounded();
        let init_node = node_fingerprint(init_digest, 0);
        node_seen.admit(init_node, || 0);

        let mut parents = ParentMap::new();
        // (configuration, faults used, node fingerprint, depth)
        let mut stack: Vec<(Config, usize, Fingerprint, usize)> = vec![(init, 0, init_node, 0)];

        let finish = |stats: &mut ExplorationStats,
                      counterexample: Option<Counterexample>,
                      node_seen: &BoundedSet,
                      config_states: &BoundedSet,
                      fault_transitions: usize| {
            stats.duration = start.elapsed();
            stats.unique_states = config_states.len();
            stats.stored_bytes = config_states.stored_bytes();
            let complete = counterexample.is_none() && !stats.truncated;
            FaultReport {
                report: Report {
                    counterexample,
                    stats: stats.clone(),
                    complete,
                    interrupted: false,
                },
                fault_budget: budget,
                kinds: scheduler.kinds().to_vec(),
                fault_nodes: node_seen.len(),
                fault_transitions,
            }
        };

        while let Some((config, used, nfp, depth)) = stack.pop() {
            stats.max_depth = stats.max_depth.max(depth);
            if depth >= self.options().max_depth {
                stats.truncated = true;
                continue;
            }
            let enabled = engine.enabled_machines(&config);
            self.note_diagnostics(&config, &enabled, &mut stats);

            // Machine transitions (fault count unchanged).
            for id in enabled {
                for mut succ in
                    crate::succ::successors_for(&engine, &config, id, self.options().granularity)?
                {
                    stats.transitions += 1;
                    // Parent edges store compact step seeds; only an
                    // error path renders human-readable summaries.
                    let seed = |succ: &mut crate::succ::Successor| {
                        let choices = std::mem::take(&mut succ.choices);
                        crate::trace::StepSeed::from_run(succ.machine, &succ.result, choices)
                    };
                    if let ExecOutcome::Error(e) = &succ.result.outcome {
                        let error = e.clone();
                        let mut trace = parents.reconstruct(nfp, self.program());
                        let choices = std::mem::take(&mut succ.choices);
                        trace.push(TraceStep::from_run(
                            self.program(),
                            succ.machine,
                            &succ.result,
                            choices,
                        ));
                        return Ok(finish(
                            &mut stats,
                            Some(Counterexample { error, trace }),
                            &node_seen,
                            &config_states,
                            fault_transitions,
                        ));
                    }
                    let (digest, len) = succ.config.digest_and_len();
                    // Bound check BEFORE marking visited (see engine.rs).
                    if config_states.admit(Fingerprint::from_u128(digest), || len)
                        == Admit::OverBound
                    {
                        stats.truncated = true;
                        continue;
                    }
                    let nfp2 = node_fingerprint(digest, used);
                    if node_seen.admit(nfp2, || 0) == Admit::New {
                        parents.record(nfp2, nfp, seed(&mut succ));
                        stack.push((succ.config, used, nfp2, depth + 1));
                    }
                }
            }

            // Fault transitions (consume one unit of budget; faults
            // themselves cannot err — errors surface at machine steps).
            for decision in scheduler.faults_for(&config, used) {
                stats.transitions += 1;
                fault_transitions += 1;
                let mut faulted = config.clone();
                FaultScheduler::apply(&decision, &mut faulted)
                    .expect("enumerated fault applies to its own configuration");
                let (digest, len) = faulted.digest_and_len();
                if config_states.admit(Fingerprint::from_u128(digest), || len) == Admit::OverBound {
                    stats.truncated = true;
                    continue;
                }
                let nfp2 = node_fingerprint(digest, used + 1);
                if node_seen.admit(nfp2, || 0) == Admit::New {
                    parents.record(nfp2, nfp, crate::trace::StepSeed::from_fault(&decision));
                    stack.push((faulted, used + 1, nfp2, depth + 1));
                }
            }
        }

        Ok(finish(
            &mut stats,
            None,
            &node_seen,
            &config_states,
            fault_transitions,
        ))
    }
}

/// Fingerprints a (configuration, faults-used) node from the
/// configuration's 128-bit incremental digest — 24 bytes hashed per node
/// instead of a full canonical re-encoding.
fn node_fingerprint(config_digest: u128, used: usize) -> Fingerprint {
    let mut bytes = [0u8; 24];
    bytes[..16].copy_from_slice(&config_digest.to_le_bytes());
    bytes[16..].copy_from_slice(&(used as u64).to_le_bytes());
    Fingerprint::of(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use p_semantics::{lower, ErrorKind};

    fn compiled(src: &str) -> p_semantics::LoweredProgram {
        lower(&p_parser::parse(src).unwrap()).unwrap()
    }

    /// Correct under FIFO delivery, broken if `cfg` is lost or overtaken:
    /// `data` then arrives in `WaitCfg`, which does not handle it.
    const LOSSY: &str = r#"
        event cfg;
        event data;
        machine Sink {
            state WaitCfg {
                on cfg goto Ready;
            }
            state Ready {
                on data do take;
            }
            action take { }
        }
        ghost machine Link {
            var s : id;
            state Go {
                entry { s := new Sink(); send(s, cfg); send(s, data); }
            }
        }
        main Link();
    "#;

    /// Correct under ⊕ dedup, broken if `data` is re-delivered.
    const AT_MOST_ONCE: &str = r#"
        event data;
        machine Sink {
            var n : int;
            state Run {
                entry { n := 0; }
                on data do take;
            }
            action take { n := n + 1; assert(n <= 1); }
        }
        ghost machine Link {
            var s : id;
            state Go { entry { s := new Sink(); send(s, data); } }
        }
        main Link();
    "#;

    #[test]
    fn parse_list_accepts_tags_and_rejects_junk() {
        assert_eq!(
            FaultKind::parse_list("drop,dup,delay").unwrap(),
            FaultKind::ALL.to_vec()
        );
        assert_eq!(
            FaultKind::parse_list(" delay , drop ").unwrap(),
            vec![FaultKind::Delay, FaultKind::Drop]
        );
        // Duplicates collapse.
        assert_eq!(
            FaultKind::parse_list("drop,drop").unwrap(),
            vec![FaultKind::Drop]
        );
        assert!(FaultKind::parse_list("").is_err());
        assert!(FaultKind::parse_list("drop,,dup").is_err());
        assert!(FaultKind::parse_list("corrupt").is_err());
    }

    #[test]
    fn faults_for_respects_budget_kinds_and_queue_shape() {
        let p = compiled(LOSSY);
        let engine = p_semantics::Engine::new(&p, p_semantics::ForeignEnv::empty());
        let mut config = engine.initial_config();
        // Run only the ghost link to quiescence so Sink's queue is
        // [cfg, data] (the Sink itself must not dequeue anything yet).
        while engine.enabled(&config, MachineId(0)) {
            let mut no = || false;
            engine
                .run_machine(&mut config, MachineId(0), &mut no, Default::default())
                .unwrap();
        }
        let sink = MachineId(1);
        assert_eq!(config.machine(sink).unwrap().queue.len(), 2);

        let all = FaultScheduler::new(1, &[]);
        let faults = all.faults_for(&config, 0);
        // 2 entries × {drop, dup} + 1 delayable (index 0) = 5.
        assert_eq!(faults.len(), 5);
        assert!(faults.iter().all(|f| f.machine == sink));
        assert_eq!(
            faults.iter().filter(|f| f.kind == FaultKind::Delay).count(),
            1
        );
        // Budget exhausted → nothing.
        assert!(all.faults_for(&config, 1).is_empty());
        // Kind restriction.
        let drops = FaultScheduler::new(1, &[FaultKind::Drop]);
        assert!(drops
            .faults_for(&config, 0)
            .iter()
            .all(|f| f.kind == FaultKind::Drop));
    }

    #[test]
    fn apply_validates_target_and_mutates_queue() {
        let p = compiled(LOSSY);
        let engine = p_semantics::Engine::new(&p, p_semantics::ForeignEnv::empty());
        let mut config = engine.initial_config();
        while engine.enabled(&config, MachineId(0)) {
            let mut no = || false;
            engine
                .run_machine(&mut config, MachineId(0), &mut no, Default::default())
                .unwrap();
        }
        let sink = MachineId(1);
        let cfg_event = config.machine(sink).unwrap().queue[0].0;
        let data_event = config.machine(sink).unwrap().queue[1].0;

        // Delay moves cfg behind data.
        let mut delayed = config.clone();
        FaultScheduler::apply(
            &FaultDecision {
                kind: FaultKind::Delay,
                machine: sink,
                index: 0,
                event: cfg_event,
            },
            &mut delayed,
        )
        .unwrap();
        let q: Vec<_> = delayed
            .machine(sink)
            .unwrap()
            .queue
            .iter()
            .map(|e| e.0)
            .collect();
        assert_eq!(q, vec![data_event, cfg_event]);

        // Dup appends a copy, bypassing ⊕.
        let mut duped = config.clone();
        FaultScheduler::apply(
            &FaultDecision {
                kind: FaultKind::Dup,
                machine: sink,
                index: 1,
                event: data_event,
            },
            &mut duped,
        )
        .unwrap();
        assert_eq!(duped.machine(sink).unwrap().queue.len(), 3);

        // Stale traces are rejected: wrong event at the index…
        let err = FaultScheduler::apply(
            &FaultDecision {
                kind: FaultKind::Drop,
                machine: sink,
                index: 0,
                event: data_event,
            },
            &mut config.clone(),
        )
        .unwrap_err();
        assert!(err.contains("no longer holds"));
        // …index out of range…
        let err = FaultScheduler::apply(
            &FaultDecision {
                kind: FaultKind::Drop,
                machine: sink,
                index: 9,
                event: cfg_event,
            },
            &mut config.clone(),
        )
        .unwrap_err();
        assert!(err.contains("out of range"));
        // …and dead machines.
        let err = FaultScheduler::apply(
            &FaultDecision {
                kind: FaultKind::Drop,
                machine: MachineId(7),
                index: 0,
                event: cfg_event,
            },
            &mut config.clone(),
        )
        .unwrap_err();
        assert!(err.contains("not alive"));
    }

    #[test]
    fn drop_sensitive_bug_needs_a_fault_budget() {
        let p = compiled(LOSSY);
        let verifier = Verifier::new(&p);
        // Fault-free search (budget 0) sees only FIFO delivery: correct.
        let clean = verifier.check_with_faults(0, &[]);
        assert!(clean.report.passed(), "{:?}", clean.report.counterexample);
        assert!(clean.report.complete);
        assert_eq!(clean.fault_transitions, 0);
        // One dropped event breaks it.
        let faulty = verifier.check_with_faults(1, &[FaultKind::Drop]);
        let cx = faulty
            .report
            .counterexample
            .expect("drop fault finds the bug");
        assert!(matches!(cx.error.kind, ErrorKind::UnhandledEvent { .. }));
        assert!(cx.trace.iter().any(|s| s.fault.is_some()));
        assert!(faulty.fault_transitions > 0);
    }

    #[test]
    fn delay_fault_reorders_past_fifo() {
        let p = compiled(LOSSY);
        let verifier = Verifier::new(&p);
        let report = verifier.check_with_faults(1, &[FaultKind::Delay]);
        let cx = report
            .report
            .counterexample
            .expect("delay fault finds the bug");
        assert!(matches!(cx.error.kind, ErrorKind::UnhandledEvent { .. }));
        let fault = cx
            .trace
            .iter()
            .find_map(|s| s.fault)
            .expect("trace records the fault");
        assert_eq!(fault.kind, FaultKind::Delay);
    }

    #[test]
    fn dup_fault_bypasses_queue_dedup() {
        let p = compiled(AT_MOST_ONCE);
        let verifier = Verifier::new(&p);
        // Dropping the only event cannot violate the ≤1 assertion.
        assert!(verifier
            .check_with_faults(3, &[FaultKind::Drop])
            .report
            .passed());
        // Re-delivery does.
        let report = verifier.check_with_faults(1, &[FaultKind::Dup]);
        let cx = report
            .report
            .counterexample
            .expect("dup fault finds the bug");
        assert_eq!(cx.error.kind, ErrorKind::AssertionFailure);
    }

    #[test]
    fn fault_counterexamples_replay_deterministically() {
        let p = compiled(LOSSY);
        let verifier = Verifier::new(&p);
        let report = verifier.check_with_faults(1, &[]);
        let cx = report.report.counterexample.expect("bug found");
        assert!(verifier.replay(&cx).reproduced());
        // The last-good state replays the fault prefix too.
        let config = verifier.replay_to_last_good(&cx).expect("prefix replays");
        assert!(config.live_ids().count() >= 1);
    }

    #[test]
    fn tampered_fault_trace_diverges() {
        let p = compiled(LOSSY);
        let verifier = Verifier::new(&p);
        let cx = verifier
            .check_with_faults(1, &[FaultKind::Drop])
            .report
            .counterexample
            .unwrap();
        let fault_at = cx.trace.iter().position(|s| s.fault.is_some()).unwrap();
        let mut corrupt = cx.clone();
        corrupt.trace[fault_at].fault.as_mut().unwrap().index += 7;
        assert!(matches!(
            verifier.replay(&corrupt),
            crate::ReplayOutcome::Diverged { .. }
        ));
    }

    #[test]
    fn budget_zero_matches_exhaustive() {
        let p = compiled(LOSSY);
        let verifier = Verifier::new(&p);
        let plain = verifier.check_exhaustive();
        let faultless = verifier.check_with_faults(0, &[]);
        assert_eq!(plain.passed(), faultless.report.passed());
        assert_eq!(
            plain.stats.unique_states,
            faultless.report.stats.unique_states
        );
    }
}
