//! Counterexample replay: re-executes a recorded schedule step by step
//! and checks that it reproduces the reported violation.
//!
//! Replays serve two purposes: they validate that reported traces are
//! real executions (guarding the checker against bookkeeping bugs), and
//! they give users a deterministic harness for debugging — the paper's
//! workflow of fixing a design against a concrete bad schedule.

use p_semantics::{Config, ExecOutcome, PError, Script};

use crate::explore::Verifier;
use crate::fault::FaultScheduler;
use crate::trace::{Counterexample, TraceStep};

/// Outcome of replaying a counterexample.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayOutcome {
    /// The schedule reproduced exactly the reported error.
    Reproduced(PError),
    /// The schedule ran to its end without the error (the trace is
    /// stale or fabricated).
    NoError,
    /// A step could not be executed as recorded (wrong machine enabled,
    /// choices mismatched); the index of the failing step is given.
    Diverged {
        /// Index into the trace of the step that failed to replay.
        step: usize,
        /// Human-readable reason.
        reason: String,
    },
}

impl ReplayOutcome {
    /// True when the violation was reproduced.
    pub fn reproduced(&self) -> bool {
        matches!(self, ReplayOutcome::Reproduced(_))
    }
}

impl Verifier<'_> {
    /// Replays `counterexample` from the initial configuration, running
    /// exactly the recorded machine with the recorded ghost choices at
    /// every step.
    ///
    /// Returns [`ReplayOutcome::Reproduced`] when the final step takes
    /// the same error transition the counterexample reports.
    pub fn replay(&self, counterexample: &Counterexample) -> ReplayOutcome {
        let engine = self.engine();
        let mut config = engine.initial_config();
        let last = counterexample.trace.len().saturating_sub(1);

        for (i, step) in counterexample.trace.iter().enumerate() {
            let TraceStep {
                machine, choices, ..
            } = step;
            // Fault steps re-apply the recorded queue tampering instead of
            // running a machine; `apply` validates the queue still matches.
            if let Some(decision) = &step.fault {
                if let Err(reason) = FaultScheduler::apply(decision, &mut config) {
                    return ReplayOutcome::Diverged { step: i, reason };
                }
                continue;
            }
            if config.machine(*machine).is_none() {
                return ReplayOutcome::Diverged {
                    step: i,
                    reason: format!("machine {machine} is not alive"),
                };
            }
            if !engine.enabled(&config, *machine) {
                return ReplayOutcome::Diverged {
                    step: i,
                    reason: format!("machine {machine} is not enabled"),
                };
            }
            let mut script = Script::new(choices);
            let result = match engine.run_machine(
                &mut config,
                *machine,
                &mut script,
                self.options().granularity,
            ) {
                Ok(result) => result,
                Err(e) => {
                    return ReplayOutcome::Diverged {
                        step: i,
                        reason: e.to_string(),
                    };
                }
            };
            match result.outcome {
                ExecOutcome::NeedChoice => {
                    return ReplayOutcome::Diverged {
                        step: i,
                        reason: "recorded choice script was too short".to_owned(),
                    };
                }
                ExecOutcome::Error(e) => {
                    return if i == last && e == counterexample.error {
                        ReplayOutcome::Reproduced(e)
                    } else if i == last {
                        ReplayOutcome::Diverged {
                            step: i,
                            reason: format!(
                                "different error: got {e}, expected {}",
                                counterexample.error
                            ),
                        }
                    } else {
                        ReplayOutcome::Diverged {
                            step: i,
                            reason: format!("premature error at step {i}: {e}"),
                        }
                    };
                }
                _ => {
                    if result.choices_used != choices.len() {
                        return ReplayOutcome::Diverged {
                            step: i,
                            reason: format!(
                                "consumed {} of {} recorded choices",
                                result.choices_used,
                                choices.len()
                            ),
                        };
                    }
                }
            }
        }
        ReplayOutcome::NoError
    }

    /// Convenience: checks the program and, if a violation is found,
    /// immediately replays it; returns the report plus whether the replay
    /// reproduced the error (`None` when the program passed).
    pub fn check_exhaustive_and_replay(&self) -> (crate::Report, Option<bool>) {
        let report = self.check_exhaustive();
        let replay = report
            .counterexample
            .as_ref()
            .map(|cx| self.replay(cx).reproduced());
        (report, replay)
    }

    /// Runs the recorded schedule and returns the configuration just
    /// before the final (erroneous) step — the "last good state", useful
    /// for debugging.
    pub fn replay_to_last_good(&self, counterexample: &Counterexample) -> Option<Config> {
        let engine = self.engine();
        let mut config = engine.initial_config();
        let steps = counterexample.trace.len();
        for step in counterexample.trace.iter().take(steps.saturating_sub(1)) {
            if let Some(decision) = &step.fault {
                if FaultScheduler::apply(decision, &mut config).is_err() {
                    return None;
                }
                continue;
            }
            let mut script = Script::new(&step.choices);
            let Ok(result) = engine.run_machine(
                &mut config,
                step.machine,
                &mut script,
                self.options().granularity,
            ) else {
                return None;
            };
            if matches!(
                result.outcome,
                ExecOutcome::Error(_) | ExecOutcome::NeedChoice
            ) {
                return None;
            }
        }
        Some(config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p_semantics::lower;

    fn compiled(src: &str) -> p_semantics::LoweredProgram {
        lower(&p_parser::parse(src).unwrap()).unwrap()
    }

    const RACY: &str = r#"
        event a : int;
        machine Main {
            var s1 : id;
            var s2 : id;
            state Init {
                entry {
                    s1 := new Sender(val = 1, boss = this);
                    s2 := new Sender(val = 2, boss = this);
                }
                on a goto Got;
            }
            state Got {
                defer a;
                entry { assert(arg == 1); }
            }
        }
        machine Sender {
            var val : int;
            var boss : id;
            state Go { entry { send(boss, a, val); } }
        }
        main Main();
    "#;

    #[test]
    fn exhaustive_counterexamples_replay() {
        let p = compiled(RACY);
        let verifier = Verifier::new(&p);
        let (report, replayed) = verifier.check_exhaustive_and_replay();
        assert!(!report.passed());
        assert_eq!(replayed, Some(true));
    }

    #[test]
    fn delay_bounded_counterexamples_replay() {
        let p = compiled(RACY);
        let verifier = Verifier::new(&p);
        let report = verifier.check_delay_bounded(2);
        let cx = report.report.counterexample.expect("bug found");
        assert!(verifier.replay(&cx).reproduced());
    }

    #[test]
    fn random_counterexamples_replay() {
        let p = compiled(RACY);
        let verifier = Verifier::new(&p);
        let report = verifier.check_random(3, 100, 64);
        let cx = report.counterexample.expect("bug found randomly");
        assert!(verifier.replay(&cx).reproduced());
    }

    #[test]
    fn tampered_trace_diverges() {
        let p = compiled(RACY);
        let verifier = Verifier::new(&p);
        let cx = verifier.check_exhaustive().counterexample.unwrap();

        // Drop the final step: no error is reached.
        let mut truncated = cx.clone();
        truncated.trace.pop();
        assert!(!verifier.replay(&truncated).reproduced());

        // Point a step at a dead machine id.
        let mut corrupt = cx.clone();
        corrupt.trace[0].machine = p_semantics::MachineId(99);
        assert!(matches!(
            verifier.replay(&corrupt),
            ReplayOutcome::Diverged { step: 0, .. }
        ));
    }

    #[test]
    fn last_good_state_is_error_free() {
        let p = compiled(RACY);
        let verifier = Verifier::new(&p);
        let cx = verifier.check_exhaustive().counterexample.unwrap();
        let config = verifier.replay_to_last_good(&cx).expect("prefix replays");
        // The configuration is a real, live state.
        assert!(config.live_ids().count() >= 1);
    }
}
