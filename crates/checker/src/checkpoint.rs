//! Crash-safe checkpointing of exhaustive explorations.
//!
//! A checkpoint is one self-contained binary file capturing everything
//! the exhaustive engines need to continue a killed run and land on the
//! same verdict and state counts an uninterrupted run produces:
//!
//! * cumulative exploration statistics,
//! * the visited-set summary — every admitted fingerprint with its
//!   sleep set (POR) and canonical representative (symmetry),
//! * compact parent records (child → parent + step seed), keeping
//!   counterexample reconstruction concrete across a resume,
//! * the frontier — for the sequential engine the DFS stack in order
//!   (so a resumed run continues bit-identically), for the parallel
//!   engine the drained work queues.
//!
//! # File format
//!
//! ```text
//! magic "PCHK" · version u32 · config_digest u128 · payload_len u64
//! · payload · checksum u128
//! ```
//!
//! The `config_digest` hashes the lowered program together with the
//! semantic checker options, so resuming against a changed program or
//! flags fails with [`CheckerError::CheckpointMismatch`] instead of
//! silently producing nonsense; the trailing checksum (the same
//! SipHash-2-4-128 the fingerprints use) turns file corruption into
//! [`CheckerError::CheckpointFormat`]. Writes go to `checkpoint.tmp`
//! first and are atomically renamed over `checkpoint.bin`, so a crash
//! *during* checkpointing leaves the previous checkpoint intact.

use std::fs;
use std::path::{Path, PathBuf};
use std::time::Duration;

use p_semantics::hash::fingerprint128;

use crate::error::CheckerError;
use crate::stats::ExplorationStats;
use crate::trace::StepSeed;
use crate::wire;

/// File-format magic.
const MAGIC: &[u8; 4] = b"PCHK";
/// Bumped whenever the payload encoding changes: older checkpoints are
/// rejected rather than misread.
const VERSION: u32 = 1;
/// The checkpoint file inside the checkpoint directory.
const FILE: &str = "checkpoint.bin";
/// The staging file the atomic rename publishes from.
const TMP: &str = "checkpoint.tmp";

/// When and where `check_exhaustive` writes checkpoints.
#[derive(Debug, Clone)]
pub struct CheckpointPolicy {
    /// Directory the checkpoint file lives in (created if missing).
    pub dir: PathBuf,
    /// Write a checkpoint every time this many *new* unique states have
    /// been admitted since the last one.
    pub every_states: usize,
    /// Stop the run (with a final checkpoint and `Report::interrupted`)
    /// once the visited set reaches this size — a deterministic stand-in
    /// for `kill -9` used by the resume-consistency tests and CI.
    pub abort_after_states: Option<usize>,
}

impl CheckpointPolicy {
    /// A policy writing to `dir` at the default cadence.
    pub fn new(dir: impl Into<PathBuf>) -> CheckpointPolicy {
        CheckpointPolicy {
            dir: dir.into(),
            every_states: 25_000,
            abort_after_states: None,
        }
    }
}

/// One visited-set entry as persisted: the fingerprint plus the
/// POR/symmetry side tables keyed by it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct VisitedEntry {
    pub fp: u128,
    /// Sleep-set bits ([`crate::por::SleepSet`]); zero when POR is off.
    pub sleep: u64,
    /// Concrete representative of the canonical orbit (symmetry mode).
    pub rep: Option<u128>,
}

/// One frontier task as persisted. `cfg` is the configuration's
/// canonical encoding ([`p_semantics::Config::canonical_bytes`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct TaskEntry {
    pub cfg: Vec<u8>,
    pub fp: u128,
    pub depth: u64,
    pub sleep: u64,
    /// The sequential engine's "first visit" stack flag (always true
    /// for parallel tasks).
    pub fresh: bool,
}

/// One parent-map edge as persisted: `(child, parent, seed)`.
pub(crate) type ParentRecord = (u128, u128, StepSeed);

/// Everything a checkpoint persists, engine-agnostic: a checkpoint
/// written under `--jobs 4` resumes under `--jobs 1` and vice versa.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct CheckpointData {
    pub stats: ExplorationStats,
    pub visited: Vec<VisitedEntry>,
    pub parents: Vec<ParentRecord>,
    /// Pending work. For a sequential checkpoint this is the DFS stack
    /// bottom-to-top; order is significant.
    pub frontier: Vec<TaskEntry>,
}

/// Serializes `data` into the version-1 payload.
fn encode_payload(data: &CheckpointData) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + data.visited.len() * 25);
    let s = &data.stats;
    for v in [
        s.unique_states as u64,
        s.transitions as u64,
        s.max_depth as u64,
        s.duration.as_micros() as u64,
        s.stored_bytes as u64,
        s.max_queue_seen as u64,
        s.quiescent_states as u64,
        s.stuck_states as u64,
        s.dedup_hits as u64,
        s.sleep_pruned as u64,
        s.symmetry_merges as u64,
    ] {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out.push(s.truncated as u8);

    out.extend_from_slice(&(data.visited.len() as u64).to_le_bytes());
    for e in &data.visited {
        out.extend_from_slice(&e.fp.to_le_bytes());
        out.extend_from_slice(&e.sleep.to_le_bytes());
        match e.rep {
            None => out.push(0),
            Some(rep) => {
                out.push(1);
                out.extend_from_slice(&rep.to_le_bytes());
            }
        }
    }

    out.extend_from_slice(&(data.parents.len() as u64).to_le_bytes());
    let mut seed_bytes = Vec::new();
    for (child, parent, seed) in &data.parents {
        out.extend_from_slice(&child.to_le_bytes());
        out.extend_from_slice(&parent.to_le_bytes());
        seed_bytes.clear();
        seed.encode(&mut seed_bytes);
        out.extend_from_slice(&(seed_bytes.len() as u32).to_le_bytes());
        out.extend_from_slice(&seed_bytes);
    }

    out.extend_from_slice(&(data.frontier.len() as u64).to_le_bytes());
    for t in &data.frontier {
        out.extend_from_slice(&t.fp.to_le_bytes());
        out.extend_from_slice(&t.depth.to_le_bytes());
        out.extend_from_slice(&t.sleep.to_le_bytes());
        out.push(t.fresh as u8);
        out.extend_from_slice(&(t.cfg.len() as u32).to_le_bytes());
        out.extend_from_slice(&t.cfg);
    }
    out
}

/// Decodes a version-1 payload; `None` means malformed.
fn decode_payload(mut buf: &[u8]) -> Option<CheckpointData> {
    let buf = &mut buf;
    let mut stats = ExplorationStats {
        unique_states: wire::read_u64(buf)? as usize,
        transitions: wire::read_u64(buf)? as usize,
        max_depth: wire::read_u64(buf)? as usize,
        ..ExplorationStats::default()
    };
    stats.duration = Duration::from_micros(wire::read_u64(buf)?);
    stats.stored_bytes = wire::read_u64(buf)? as usize;
    stats.max_queue_seen = wire::read_u64(buf)? as usize;
    stats.quiescent_states = wire::read_u64(buf)? as usize;
    stats.stuck_states = wire::read_u64(buf)? as usize;
    stats.dedup_hits = wire::read_u64(buf)? as usize;
    stats.sleep_pruned = wire::read_u64(buf)? as usize;
    stats.symmetry_merges = wire::read_u64(buf)? as usize;
    stats.truncated = match wire::read_u8(buf)? {
        0 => false,
        1 => true,
        _ => return None,
    };

    let n_visited = wire::read_u64(buf)? as usize;
    let mut visited = Vec::new();
    for _ in 0..n_visited {
        let fp = wire::read_u128(buf)?;
        let sleep = wire::read_u64(buf)?;
        let rep = match wire::read_u8(buf)? {
            0 => None,
            1 => Some(wire::read_u128(buf)?),
            _ => return None,
        };
        visited.push(VisitedEntry { fp, sleep, rep });
    }

    let n_parents = wire::read_u64(buf)? as usize;
    let mut parents = Vec::new();
    for _ in 0..n_parents {
        let child = wire::read_u128(buf)?;
        let parent = wire::read_u128(buf)?;
        let seed_len = wire::read_u32(buf)? as usize;
        let mut seed_buf = wire::take(buf, seed_len)?;
        let seed = StepSeed::decode(&mut seed_buf)?;
        if !seed_buf.is_empty() {
            return None;
        }
        parents.push((child, parent, seed));
    }

    let n_frontier = wire::read_u64(buf)? as usize;
    let mut frontier = Vec::new();
    for _ in 0..n_frontier {
        let fp = wire::read_u128(buf)?;
        let depth = wire::read_u64(buf)?;
        let sleep = wire::read_u64(buf)?;
        let fresh = match wire::read_u8(buf)? {
            0 => false,
            1 => true,
            _ => return None,
        };
        let cfg_len = wire::read_u32(buf)? as usize;
        let cfg = wire::take(buf, cfg_len)?.to_vec();
        frontier.push(TaskEntry {
            cfg,
            fp,
            depth,
            sleep,
            fresh,
        });
    }
    if !buf.is_empty() {
        return None;
    }
    Some(CheckpointData {
        stats,
        visited,
        parents,
        frontier,
    })
}

/// Writes a checkpoint atomically: staging file, then rename.
pub(crate) fn write(
    dir: &Path,
    config_digest: u128,
    data: &CheckpointData,
) -> Result<(), CheckerError> {
    fs::create_dir_all(dir).map_err(|e| CheckerError::io(dir, e))?;
    let payload = encode_payload(data);
    let mut file = Vec::with_capacity(payload.len() + 44);
    file.extend_from_slice(MAGIC);
    file.extend_from_slice(&VERSION.to_le_bytes());
    file.extend_from_slice(&config_digest.to_le_bytes());
    file.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    file.extend_from_slice(&payload);
    file.extend_from_slice(&fingerprint128(&payload).to_le_bytes());
    let tmp = dir.join(TMP);
    fs::write(&tmp, &file).map_err(|e| CheckerError::io(&tmp, e))?;
    let target = dir.join(FILE);
    fs::rename(&tmp, &target).map_err(|e| CheckerError::io(&target, e))
}

/// Loads and validates the checkpoint in `dir` against the resuming
/// run's `config_digest`.
pub(crate) fn load(dir: &Path, config_digest: u128) -> Result<CheckpointData, CheckerError> {
    let path = dir.join(FILE);
    let bytes = fs::read(&path).map_err(|e| CheckerError::io(&path, e))?;
    let mut buf = &bytes[..];
    let magic = wire::take(&mut buf, 4)
        .ok_or_else(|| CheckerError::CheckpointFormat("file shorter than its header".into()))?;
    if magic != MAGIC {
        return Err(CheckerError::CheckpointFormat(format!(
            "bad magic {magic:?} (not a checkpoint file)"
        )));
    }
    let version = wire::read_u32(&mut buf)
        .ok_or_else(|| CheckerError::CheckpointFormat("file shorter than its header".into()))?;
    if version != VERSION {
        return Err(CheckerError::CheckpointFormat(format!(
            "unsupported checkpoint version {version} (expected {VERSION})"
        )));
    }
    let digest = wire::read_u128(&mut buf)
        .ok_or_else(|| CheckerError::CheckpointFormat("file shorter than its header".into()))?;
    if digest != config_digest {
        return Err(CheckerError::CheckpointMismatch(
            "checkpoint was written for a different program or checker options; \
             re-run without --resume to start fresh"
                .into(),
        ));
    }
    let payload_len = wire::read_u64(&mut buf)
        .ok_or_else(|| CheckerError::CheckpointFormat("file shorter than its header".into()))?;
    let payload = wire::take(&mut buf, payload_len as usize)
        .ok_or_else(|| CheckerError::CheckpointFormat("payload truncated".into()))?;
    let checksum = wire::read_u128(&mut buf)
        .ok_or_else(|| CheckerError::CheckpointFormat("checksum missing".into()))?;
    if !buf.is_empty() {
        return Err(CheckerError::CheckpointFormat(
            "trailing bytes after checksum".into(),
        ));
    }
    if fingerprint128(payload) != checksum {
        return Err(CheckerError::CheckpointFormat(
            "checksum mismatch (file corrupted)".into(),
        ));
    }
    decode_payload(payload)
        .ok_or_else(|| CheckerError::CheckpointFormat("malformed payload".into()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use p_semantics::MachineId;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("p-ckpt-test-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample() -> CheckpointData {
        let stats = ExplorationStats {
            unique_states: 1234,
            transitions: 5678,
            max_depth: 42,
            duration: Duration::from_micros(999_999),
            stored_bytes: 314_159,
            truncated: false,
            max_queue_seen: 6,
            quiescent_states: 3,
            stuck_states: 1,
            dedup_hits: 4321,
            sleep_pruned: 17,
            symmetry_merges: 5,
            spilled_states: 0,
            spill_bytes: 0,
            cold_hits: 0,
            phases: crate::PhaseNanos::default(),
        };
        CheckpointData {
            stats,
            visited: vec![
                VisitedEntry {
                    fp: 7,
                    sleep: 0b101,
                    rep: None,
                },
                VisitedEntry {
                    fp: u128::MAX - 3,
                    sleep: 0,
                    rep: Some(11),
                },
            ],
            parents: vec![(9, 7, StepSeed::test_blocked(MachineId(2)))],
            frontier: vec![TaskEntry {
                cfg: vec![1, 2, 3, 4],
                fp: 9,
                depth: 3,
                sleep: 1,
                fresh: true,
            }],
        }
    }

    #[test]
    fn write_load_round_trip() {
        let dir = temp_dir("roundtrip");
        let data = sample();
        write(&dir, 0xABCD, &data).unwrap();
        let back = load(&dir, 0xABCD).unwrap();
        assert_eq!(back, data);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_checkpoint_is_rejected() {
        let dir = temp_dir("stale");
        write(&dir, 0xABCD, &sample()).unwrap();
        match load(&dir, 0xABCE) {
            Err(CheckerError::CheckpointMismatch(_)) => {}
            other => panic!("expected mismatch, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corruption_is_rejected_not_misread() {
        let dir = temp_dir("corrupt");
        write(&dir, 1, &sample()).unwrap();
        let path = dir.join(FILE);
        let pristine = fs::read(&path).unwrap();
        // Flip one byte at every offset: the load must fail every time
        // (header checks or checksum), never panic or silently succeed
        // with different contents.
        for i in 0..pristine.len() {
            let mut corrupted = pristine.clone();
            corrupted[i] ^= 0x40;
            fs::write(&path, &corrupted).unwrap();
            assert!(load(&dir, 1).is_err(), "corruption at byte {i} accepted");
        }
        // Truncations likewise.
        for cut in [0, 3, 10, pristine.len() - 1] {
            fs::write(&path, &pristine[..cut]).unwrap();
            assert!(load(&dir, 1).is_err(), "truncation to {cut} accepted");
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_checkpoint_is_io_error() {
        let dir = temp_dir("missing");
        match load(&dir, 1) {
            Err(CheckerError::Io { .. }) => {}
            other => panic!("expected io error, got {other:?}"),
        }
    }
}
