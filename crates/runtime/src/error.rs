//! Runtime errors.

use std::error::Error;
use std::fmt;

use p_semantics::PError;

/// An error surfaced by the execution runtime.
#[derive(Debug)]
pub enum RuntimeError {
    /// The source program failed the static checks.
    Check(p_typecheck::CheckErrors),
    /// Erasure failed (no real machines).
    Erase(p_typecheck::EraseError),
    /// Lowering of the erased program failed.
    Lower(p_semantics::LowerError),
    /// A name passed to the runtime API does not exist in the (erased)
    /// program.
    UnknownName {
        /// What kind of name was looked up ("machine", "event",
        /// "variable").
        kind: &'static str,
        /// The name that failed to resolve.
        name: String,
    },
    /// A machine id passed to the API is dead or never existed.
    NoSuchMachine(p_semantics::MachineId),
    /// A machine took an error transition while processing events.
    Machine(PError),
    /// The machine was quarantined after a panic (typically in a foreign
    /// function); it no longer accepts events, but the rest of the
    /// runtime keeps going.
    MachineQuarantined(p_semantics::MachineId),
    /// The event pump's worker thread has exited; no further injections
    /// can be delivered.
    PumpStopped,
    /// The event pump's worker thread panicked.
    PumpPanicked,
    /// The pump's bounded queue is full (under the `Fail` overflow
    /// policy, or after a `try_inject` deadline expired).
    QueueFull,
    /// Graceful shutdown did not drain in-flight injections before its
    /// deadline. `pending` counts the injections (queued events plus
    /// armed timers) still in flight when the deadline expired; the
    /// workers are detached and keep draining them in the background.
    ShutdownTimeout {
        /// Injections still queued or armed at the deadline.
        pending: u64,
    },
    /// A machine on one executor shard was referenced (as an initializer
    /// or payload) while creating or injecting into a machine on a
    /// different shard. Shards own disjoint configurations, so in-program
    /// machine references must stay shard-local; route cross-shard
    /// traffic through `Executor::inject` instead.
    CrossShard {
        /// The machine that was referenced.
        machine: p_semantics::MachineId,
        /// The shard that owns it.
        home: usize,
        /// The shard the reference was used from.
        used_from: usize,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Check(e) => write!(f, "program rejected by the checker: {e}"),
            RuntimeError::Erase(e) => write!(f, "{e}"),
            RuntimeError::Lower(e) => write!(f, "{e}"),
            RuntimeError::UnknownName { kind, name } => {
                write!(f, "unknown {kind} `{name}`")
            }
            RuntimeError::NoSuchMachine(id) => write!(f, "no such machine {id}"),
            RuntimeError::Machine(e) => write!(f, "machine error: {e}"),
            RuntimeError::MachineQuarantined(id) => {
                write!(f, "machine {id} is quarantined after a panic")
            }
            RuntimeError::PumpStopped => write!(f, "event pump has stopped"),
            RuntimeError::PumpPanicked => write!(f, "event pump worker thread panicked"),
            RuntimeError::QueueFull => write!(f, "event pump queue is full"),
            RuntimeError::ShutdownTimeout { pending } => {
                write!(
                    f,
                    "shutdown deadline expired with {pending} injection(s) still in flight"
                )
            }
            RuntimeError::CrossShard {
                machine,
                home,
                used_from,
            } => {
                write!(
                    f,
                    "machine {machine} lives on shard {home} but was referenced from shard {used_from}"
                )
            }
        }
    }
}

impl Error for RuntimeError {}

impl From<p_typecheck::CheckErrors> for RuntimeError {
    fn from(e: p_typecheck::CheckErrors) -> RuntimeError {
        RuntimeError::Check(e)
    }
}

impl From<p_typecheck::EraseError> for RuntimeError {
    fn from(e: p_typecheck::EraseError) -> RuntimeError {
        RuntimeError::Erase(e)
    }
}

impl From<p_semantics::LowerError> for RuntimeError {
    fn from(e: p_semantics::LowerError) -> RuntimeError {
        RuntimeError::Lower(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p_semantics::{ErrorKind, MachineId};

    #[test]
    fn display_variants() {
        let e = RuntimeError::UnknownName {
            kind: "event",
            name: "zap".into(),
        };
        assert_eq!(e.to_string(), "unknown event `zap`");
        let e = RuntimeError::NoSuchMachine(MachineId(4));
        assert!(e.to_string().contains("#4"));
        let e = RuntimeError::Machine(PError::new(ErrorKind::AssertionFailure, MachineId(0)));
        assert!(e.to_string().contains("assertion"));
        let e = RuntimeError::MachineQuarantined(MachineId(2));
        assert!(e.to_string().contains("quarantined"));
        assert_eq!(
            RuntimeError::PumpStopped.to_string(),
            "event pump has stopped"
        );
        assert!(RuntimeError::PumpPanicked.to_string().contains("panicked"));
        assert!(RuntimeError::QueueFull.to_string().contains("full"));
        let e = RuntimeError::ShutdownTimeout { pending: 3 };
        assert!(e.to_string().contains("deadline"));
        assert!(e.to_string().contains('3'));
        let e = RuntimeError::CrossShard {
            machine: MachineId(4),
            home: 2,
            used_from: 0,
        };
        assert!(e.to_string().contains("shard 2"));
        assert!(e.to_string().contains("shard 0"));
    }
}
