//! Execution runtime for P programs (§4 of the paper).
//!
//! The pipeline from a checked P program to running code:
//!
//! 1. the static checker validates the program (`p-typecheck`);
//! 2. ghost machines, variables and statements are erased;
//! 3. the erased program is lowered to its table-driven form
//!    (`p-semantics`), the analog of the C tables the paper's compiler
//!    emits;
//! 4. a [`Runtime`] hosts dynamic machine instances, processing events
//!    run-to-completion on the calling thread, exactly like the paper's
//!    driver runtime with its `SMCreateMachine` / `SMAddEvent` /
//!    `SMGetContext` API;
//! 5. an [`Executor`] scales that out: N worker shards over per-machine
//!    bounded mailboxes with work stealing, credit-based injection
//!    backpressure, and a timer wheel for delayed injections — every
//!    delivery still one run-to-completion `add_event`;
//! 6. [`DriverHost`] plays the role of the skeletal KMDF interface code,
//!    translating simulated OS callbacks into P events, and
//!    [`EventPump`] is the single-shard executor facade for
//!    asynchronous producers.
//!
//! Because the runtime drives the *same* operational-semantics engine the
//! model checker explores, the schedule it executes is the delay-0 causal
//! schedule of the delay-bounded scheduler (§5) — the claim the paper
//! makes about its runtime, checkable here by construction and by test.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod error;
mod exec;
mod host;
mod pump;
mod runtime;
mod shard;
mod timer;

pub use error::RuntimeError;
pub use exec::{
    ExecReport, ExecStats, Executor, ExecutorBuilder, Injection, OverflowPolicy, RetryPolicy,
    ShardStats,
};
pub use host::{DeviceHandle, DriverHost};
pub use pump::{EventPump, PumpBuilder, PumpStats};
pub use runtime::{MachineStats, MachineStatus, Runtime, RuntimeBuilder, RuntimeStats};

#[cfg(test)]
mod tests {
    use super::*;
    use p_semantics::Value;

    const COUNTER: &str = r#"
        event inc;
        event get;
        machine Counter {
            var n : int;
            state Run {
                on inc do bump;
            }
            action bump { n := n + 1; }
        }
        main Counter();
    "#;

    #[test]
    fn create_and_drive_a_machine() {
        let program = p_parser::parse(COUNTER).unwrap();
        let runtime = Runtime::builder(&program).unwrap().start();
        let id = runtime
            .create_machine("Counter", &[("n", Value::Int(10))])
            .unwrap();
        for _ in 0..5 {
            runtime.add_event(id, "inc", Value::Null).unwrap();
        }
        assert_eq!(runtime.read_var(id, "n"), Some(Value::Int(15)));
        assert_eq!(runtime.events_processed(), 5);
        assert_eq!(runtime.current_state(id).as_deref(), Some("Run"));
    }

    #[test]
    fn unknown_names_are_reported() {
        let program = p_parser::parse(COUNTER).unwrap();
        let runtime = Runtime::builder(&program).unwrap().start();
        assert!(matches!(
            runtime.create_machine("Missing", &[]),
            Err(RuntimeError::UnknownName {
                kind: "machine",
                ..
            })
        ));
        let id = runtime.create_machine("Counter", &[]).unwrap();
        assert!(matches!(
            runtime.add_event(id, "zap", Value::Null),
            Err(RuntimeError::UnknownName { kind: "event", .. })
        ));
        assert!(matches!(
            runtime.create_machine("Counter", &[("missing", Value::Null)]),
            Err(RuntimeError::UnknownName {
                kind: "variable",
                ..
            })
        ));
    }

    #[test]
    fn rejects_ill_typed_programs() {
        let bad = p_parser::parse(
            "machine M { var x : int; state S { entry { x := true; } } } main M();",
        )
        .unwrap();
        assert!(matches!(
            Runtime::builder(&bad),
            Err(RuntimeError::Check(_))
        ));
    }

    #[test]
    fn ghost_parts_are_erased_before_execution() {
        let src = r#"
            event kick;
            machine Driver {
                var count : int;
                ghost var env : id;
                state Run {
                    entry { count := 0; }
                    on kick do note;
                }
                action note { count := count + 1; }
            }
            ghost machine Env {
                var d : id;
                state S { entry { d := new Driver(); send(d, kick); } }
            }
            main Env();
        "#;
        let program = p_parser::parse(src).unwrap();
        let runtime = Runtime::builder(&program).unwrap().start();
        // Only `Driver` exists at runtime.
        assert!(runtime.program().machine_type_named("Env").is_none());
        let id = runtime.create_machine("Driver", &[]).unwrap();
        runtime.add_event(id, "kick", Value::Null).unwrap();
        assert_eq!(runtime.read_var(id, "count"), Some(Value::Int(1)));
    }

    #[test]
    fn cascading_sends_run_to_completion() {
        // A forwards to B which forwards to C; one add_event drives all
        // three to quiescence on the calling thread.
        // Note: `next == null` would evaluate to ⊥ (operators propagate
        // the undefined value, §3), so reachability of the tail is flagged
        // with an explicit boolean.
        let src = r#"
            event go;
            machine Relay {
                var next : id;
                var has_next : bool;
                var hits : int;
                state Run {
                    on go do forward;
                }
                action forward {
                    hits := hits + 1;
                    if (has_next) { send(next, go); }
                }
            }
            main Relay();
        "#;
        let program = p_parser::parse(src).unwrap();
        let runtime = Runtime::builder(&program).unwrap().start();
        let base = &[("hits", Value::Int(0)), ("has_next", Value::Bool(false))];
        let c = runtime.create_machine("Relay", base).unwrap();
        let b = runtime
            .create_machine(
                "Relay",
                &[
                    ("hits", Value::Int(0)),
                    ("has_next", Value::Bool(true)),
                    ("next", Value::Machine(c)),
                ],
            )
            .unwrap();
        let a = runtime
            .create_machine(
                "Relay",
                &[
                    ("hits", Value::Int(0)),
                    ("has_next", Value::Bool(true)),
                    ("next", Value::Machine(b)),
                ],
            )
            .unwrap();
        runtime.add_event(a, "go", Value::Null).unwrap();
        assert_eq!(runtime.read_var(a, "hits"), Some(Value::Int(1)));
        assert_eq!(runtime.read_var(b, "hits"), Some(Value::Int(1)));
        assert_eq!(runtime.read_var(c, "hits"), Some(Value::Int(1)));
        assert_eq!(runtime.queue_len(c), Some(0));
    }

    #[test]
    fn machine_error_surfaces_from_add_event() {
        let src = r#"
            event boom;
            machine M {
                state S { on boom goto Bad; }
                state Bad { entry { assert(false); } }
            }
            main M();
        "#;
        let program = p_parser::parse(src).unwrap();
        let runtime = Runtime::builder(&program).unwrap().start();
        let id = runtime.create_machine("M", &[]).unwrap();
        match runtime.add_event(id, "boom", Value::Null) {
            Err(RuntimeError::Machine(e)) => {
                assert_eq!(e.kind, p_semantics::ErrorKind::AssertionFailure);
            }
            other => panic!("expected machine error, got {other:?}"),
        }
    }

    #[test]
    fn foreign_functions_with_context() {
        let src = r#"
            event sample;
            machine Sensor {
                var last : int;
                foreign fn read_hw() : int;
                state Run {
                    on sample do take;
                }
                action take { last := read_hw(); }
            }
            main Sensor();
        "#;
        struct Hw {
            readings: Vec<i64>,
        }
        let program = p_parser::parse(src).unwrap();
        let mut builder = Runtime::builder(&program).unwrap();
        builder.foreign_with_context::<Hw, _>("read_hw", |hw, _args| match hw {
            Some(hw) => Value::Int(hw.readings.pop().unwrap_or(-1)),
            None => Value::Null,
        });
        let runtime = builder.start();
        let id = runtime.create_machine("Sensor", &[]).unwrap();
        runtime.set_context(
            id,
            Box::new(Hw {
                readings: vec![30, 20, 10],
            }),
        );
        runtime.add_event(id, "sample", Value::Null).unwrap();
        assert_eq!(runtime.read_var(id, "last"), Some(Value::Int(10)));
        runtime.add_event(id, "sample", Value::Null).unwrap();
        assert_eq!(runtime.read_var(id, "last"), Some(Value::Int(20)));
        let remaining = runtime.with_context::<Hw, _>(id, |hw| hw.readings.len());
        assert_eq!(remaining, Some(1));
    }

    #[test]
    fn driver_host_lifecycle() {
        let src = r#"
            event PowerUp;
            event RemoveDevice;
            machine Device {
                var powered : bool;
                state Off {
                    entry { powered := false; }
                    on PowerUp goto On;
                    on RemoveDevice goto Removing;
                }
                state On {
                    entry { powered := true; }
                    on RemoveDevice goto Removing;
                }
                state Removing { entry { delete; } }
            }
            main Device();
        "#;
        let program = p_parser::parse(src).unwrap();
        let runtime = Runtime::builder(&program).unwrap().start();
        let host = DriverHost::new(runtime, "Device", "RemoveDevice");
        let d1 = host.add_device(&[]).unwrap();
        let d2 = host.add_device(&[]).unwrap();
        assert_eq!(host.device_count(), 2);
        host.os_event(d1, "PowerUp", Value::Null).unwrap();
        assert_eq!(
            host.runtime()
                .read_var(host.machine_of(d1).unwrap(), "powered"),
            Some(Value::Bool(true))
        );
        let m1 = host.machine_of(d1).unwrap();
        host.remove_device(d1).unwrap();
        assert!(!host.is_attached(d1));
        assert!(!host.runtime().is_alive(m1), "machine must self-delete");
        assert!(host.is_attached(d2));
    }

    #[test]
    fn runtime_is_thread_safe() {
        let program = p_parser::parse(COUNTER).unwrap();
        let runtime = Runtime::builder(&program).unwrap().start();
        let id = runtime
            .create_machine("Counter", &[("n", Value::Int(0))])
            .unwrap();
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let rt = runtime.clone();
                std::thread::spawn(move || {
                    for _ in 0..250 {
                        rt.add_event(id, "inc", Value::Null).unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(runtime.read_var(id, "n"), Some(Value::Int(1000)));
        assert_eq!(runtime.events_processed(), 1000);
    }

    #[test]
    fn deferred_events_wait_in_queue() {
        let src = r#"
            event work;
            event open;
            machine Gate {
                var done : int;
                state Closed {
                    defer work;
                    on open goto Open;
                }
                state Open {
                    on work do handle;
                }
                action handle { done := done + 1; }
            }
            main Gate();
        "#;
        let program = p_parser::parse(src).unwrap();
        let runtime = Runtime::builder(&program).unwrap().start();
        let id = runtime
            .create_machine("Gate", &[("done", Value::Int(0))])
            .unwrap();
        runtime.add_event(id, "work", Value::Null).unwrap();
        assert_eq!(runtime.read_var(id, "done"), Some(Value::Int(0)));
        assert_eq!(runtime.queue_len(id), Some(1));
        // Opening the gate releases the deferred work.
        runtime.add_event(id, "open", Value::Null).unwrap();
        assert_eq!(runtime.read_var(id, "done"), Some(Value::Int(1)));
        assert_eq!(runtime.queue_len(id), Some(0));
    }
}
