//! Shard-local executor state: per-machine bounded mailboxes, the ready
//! queue, and credit-based injection backpressure.
//!
//! A shard owns one [`Runtime`] (its own configuration — shards never
//! share a machine table, which is what makes them parallel) plus one
//! bounded [`Mailbox`] per local machine. Producers deposit envelopes
//! under a shard-wide credit budget; workers drain mailboxes in batches.
//! Two invariants carry the executor's correctness:
//!
//! * **Single drainer.** A machine's `scheduled` flag is set by whichever
//!   producer transitions its mailbox from unscheduled to scheduled, and
//!   cleared only by the worker that drained it. At most one worker ever
//!   pops a given mailbox at a time, so per-machine FIFO order and
//!   run-to-completion are preserved no matter how many workers steal.
//! * **Credit-on-pop.** An injection credit is consumed when an envelope
//!   enters a mailbox and released when a worker *pops* it (not when the
//!   run completes), mirroring the slot semantics of the bounded channel
//!   this design replaces: a producer may claim the freed slot while the
//!   popped event is still being processed.
//!
//! Lock order: `credits` before a mailbox `queue` (push side). The pop
//! side drops the queue lock before touching credits, so the two paths
//! never deadlock.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::{Condvar, Mutex, RwLock};

use p_semantics::{MachineId, Value};

use crate::{OverflowPolicy, Runtime, RuntimeError};

/// One event waiting in a mailbox.
pub(crate) struct Envelope {
    /// Target machine, in the owning shard's local id space.
    pub local: MachineId,
    /// Event name (resolved against the shard runtime at delivery).
    pub event: String,
    /// Event payload, already translated into the shard's id space.
    pub payload: Value,
    /// When the injection entered the mailbox, for latency accounting.
    pub at: Instant,
}

/// A per-machine bounded FIFO of pending injections.
pub(crate) struct Mailbox {
    queue: Mutex<VecDeque<Envelope>>,
    /// Cached `queue.len()`, readable without the queue lock.
    depth: AtomicUsize,
    /// True while the machine sits in a ready queue or a worker is
    /// draining its batch (the single-drainer flag).
    scheduled: AtomicBool,
}

impl Mailbox {
    fn new() -> Mailbox {
        Mailbox {
            queue: Mutex::new(VecDeque::new()),
            depth: AtomicUsize::new(0),
            scheduled: AtomicBool::new(false),
        }
    }

    /// Events currently queued (lock-free snapshot).
    pub(crate) fn depth(&self) -> usize {
        self.depth.load(Ordering::Acquire)
    }
}

/// Monotonic per-shard counters, updated with relaxed atomics.
#[derive(Default)]
pub(crate) struct ShardCounters {
    pub delivered: AtomicU64,
    pub failed: AtomicU64,
    pub dropped: AtomicU64,
    pub steals: AtomicU64,
    pub batches: AtomicU64,
    pub timer_fired: AtomicU64,
    /// High-water mark over every mailbox depth seen on this shard.
    pub max_depth: AtomicU64,
}

/// One executor shard: a runtime, its mailboxes, and its scheduling state.
pub(crate) struct Shard {
    /// The runtime owning this shard's machines. Every delivery goes
    /// through `Runtime::add_event`, so run-to-completion and the
    /// supervision model (quarantine, halt, typed errors) apply per
    /// shard exactly as they do for a standalone runtime.
    pub runtime: Runtime,
    mailboxes: RwLock<Vec<Arc<Mailbox>>>,
    /// Machines whose scheduled flag is set, awaiting a worker.
    ready: Mutex<VecDeque<MachineId>>,
    /// Worker parking spot, paired with `ready`.
    wake: Condvar,
    /// Injection credits remaining (shard-wide bound on queued events).
    credits: Mutex<usize>,
    /// Producers blocked for credits/mailbox space, paired with `credits`.
    space: Condvar,
    /// Envelopes currently queued across this shard's mailboxes.
    pub queued: AtomicUsize,
    pub counters: ShardCounters,
    /// Completed injection-to-completion latencies in nanoseconds
    /// (recorded only when the executor enables latency sampling).
    pub latencies: Mutex<Vec<u64>>,
    /// Per-mailbox queue bound.
    capacity: usize,
}

impl Shard {
    pub(crate) fn new(runtime: Runtime, capacity: usize, credits: usize) -> Shard {
        Shard {
            runtime,
            mailboxes: RwLock::new(Vec::new()),
            ready: Mutex::new(VecDeque::new()),
            wake: Condvar::new(),
            credits: Mutex::new(credits.max(1)),
            space: Condvar::new(),
            queued: AtomicUsize::new(0),
            counters: ShardCounters::default(),
            latencies: Mutex::new(Vec::new()),
            capacity: capacity.max(1),
        }
    }

    /// Number of machines with a mailbox on this shard.
    pub(crate) fn machine_count(&self) -> usize {
        self.mailboxes.read().len()
    }

    /// Injection credits currently unclaimed.
    pub(crate) fn credits_free(&self) -> usize {
        *self.credits.lock()
    }

    /// The mailbox for `local`, growing the table on demand (machines
    /// created directly on an adopted runtime get theirs lazily).
    pub(crate) fn mailbox(&self, local: MachineId) -> Arc<Mailbox> {
        let idx = local.0 as usize;
        {
            let boxes = self.mailboxes.read();
            if let Some(mb) = boxes.get(idx) {
                return Arc::clone(mb);
            }
        }
        let mut boxes = self.mailboxes.write();
        while boxes.len() <= idx {
            boxes.push(Arc::new(Mailbox::new()));
        }
        Arc::clone(&boxes[idx])
    }

    /// Delivers `env` into its mailbox under `policy`.
    ///
    /// `Block` waits for a credit and mailbox space (bounded by
    /// `deadline` when given, surfacing `QueueFull` on expiry);
    /// `DropNewest` counts the overflow against the target machine and
    /// reports success; `Fail` returns `QueueFull` immediately. A raised
    /// stop flag aborts the wait with `PumpStopped`.
    pub(crate) fn push(
        &self,
        env: Envelope,
        policy: OverflowPolicy,
        deadline: Option<Instant>,
        stop: &AtomicBool,
    ) -> Result<(), RuntimeError> {
        let local = env.local;
        let mb = self.mailbox(local);
        let mut credits = self.credits.lock();
        loop {
            if stop.load(Ordering::SeqCst) {
                return Err(RuntimeError::PumpStopped);
            }
            if *credits > 0 {
                let mut q = mb.queue.lock();
                if q.len() < self.capacity {
                    *credits -= 1;
                    q.push_back(env);
                    let depth = q.len();
                    mb.depth.store(depth, Ordering::Release);
                    drop(q);
                    self.queued.fetch_add(1, Ordering::SeqCst);
                    self.counters
                        .max_depth
                        .fetch_max(depth as u64, Ordering::Relaxed);
                    drop(credits);
                    self.schedule(&mb, local);
                    return Ok(());
                }
            }
            match policy {
                OverflowPolicy::Block => match deadline {
                    None => self.space.wait(&mut credits),
                    Some(d) => {
                        if self.space.wait_until(&mut credits, d).timed_out() {
                            return Err(RuntimeError::QueueFull);
                        }
                    }
                },
                OverflowPolicy::DropNewest => {
                    self.counters.dropped.fetch_add(1, Ordering::Relaxed);
                    drop(credits);
                    self.runtime.note_dropped(local);
                    return Ok(());
                }
                OverflowPolicy::Fail => return Err(RuntimeError::QueueFull),
            }
        }
    }

    /// Non-blocking push (used by the timer thread and retry loops);
    /// hands the envelope back when no credit or mailbox slot is free.
    pub(crate) fn try_push(&self, env: Envelope) -> Result<(), Envelope> {
        let local = env.local;
        let mb = self.mailbox(local);
        let mut credits = self.credits.lock();
        if *credits == 0 {
            return Err(env);
        }
        let mut q = mb.queue.lock();
        if q.len() >= self.capacity {
            return Err(env);
        }
        *credits -= 1;
        q.push_back(env);
        let depth = q.len();
        mb.depth.store(depth, Ordering::Release);
        drop(q);
        self.queued.fetch_add(1, Ordering::SeqCst);
        self.counters
            .max_depth
            .fetch_max(depth as u64, Ordering::Relaxed);
        drop(credits);
        self.schedule(&mb, local);
        Ok(())
    }

    /// Marks `local` ready if it is not already scheduled.
    fn schedule(&self, mb: &Mailbox, local: MachineId) {
        if mb
            .scheduled
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            self.ready.lock().push_back(local);
            self.wake.notify_one();
        }
    }

    /// Pops one envelope from `mb`, releasing its injection credit.
    ///
    /// The queue lock is dropped before credits are touched (see the
    /// module-level lock order).
    pub(crate) fn pop_envelope(&self, mb: &Mailbox) -> Option<Envelope> {
        let env = {
            let mut q = mb.queue.lock();
            let env = q.pop_front();
            if env.is_some() {
                mb.depth.store(q.len(), Ordering::Release);
            }
            env
        }?;
        {
            let mut credits = self.credits.lock();
            *credits += 1;
        }
        self.space.notify_all();
        self.queued.fetch_sub(1, Ordering::SeqCst);
        Some(env)
    }

    /// Called by a worker after draining a batch from `local`: requeues
    /// the machine if more work arrived mid-batch (round-robin fairness),
    /// otherwise clears the scheduled flag — then re-checks the depth to
    /// close the race against a push that saw the flag still set.
    pub(crate) fn reschedule_after_batch(&self, mb: &Mailbox, local: MachineId) {
        if mb.depth() > 0 {
            self.ready.lock().push_back(local);
            self.wake.notify_one();
            return;
        }
        mb.scheduled.store(false, Ordering::Release);
        if mb.depth() > 0 {
            self.schedule(mb, local);
        }
    }

    /// Next ready machine for this shard's own worker (FIFO end).
    pub(crate) fn pop_ready(&self) -> Option<MachineId> {
        self.ready.lock().pop_front()
    }

    /// Steals a ready machine for a foreign worker (LIFO end, so the
    /// victim's oldest work stays with its own worker).
    pub(crate) fn steal_ready(&self) -> Option<MachineId> {
        self.ready.lock().pop_back()
    }

    /// Parks the calling worker until readied work arrives or `timeout`
    /// elapses (short, so stop-flag changes are observed promptly).
    pub(crate) fn park(&self, timeout: std::time::Duration) {
        let mut ready = self.ready.lock();
        if ready.is_empty() {
            self.wake.wait_for(&mut ready, timeout);
        }
    }

    /// Wakes the shard's worker (used at shutdown).
    pub(crate) fn wake_worker(&self) {
        let _ready = self.ready.lock();
        self.wake.notify_all();
    }

    /// Stop-flag barrier: any producer that read the stop flag as clear
    /// and is already inside [`Shard::push`] holds (or queues on) the
    /// credits lock; cycling it here guarantees that after this call no
    /// new envelope can enter the shard. Waiters are woken to observe
    /// the flag.
    pub(crate) fn barrier(&self) {
        drop(self.credits.lock());
        self.space.notify_all();
    }
}
