//! Asynchronous event injection: a background thread that drains a
//! channel of events into the runtime.
//!
//! Windows calls into a driver from many contexts — application requests,
//! interrupts, deferred procedure calls (§4). [`EventPump`] models those
//! asynchronous sources: producers send [`Injection`]s from any thread;
//! a dedicated pump thread delivers them through `SMAddEvent`
//! (run-to-completion), exactly like interface code running on an OS
//! worker thread.
//!
//! The pump has an explicit failure model. The bounded channel overflows
//! according to a configurable [`OverflowPolicy`]; transient
//! backpressure can be ridden out with [`EventPump::try_inject`]
//! (deadline) or [`EventPump::inject_with_retry`] (exponential backoff
//! via [`RetryPolicy`]). Machine errors do **not** kill the pump: the
//! worker records the first failure, keeps delivering to healthy
//! machines, and the error surfaces on [`EventPump::shutdown`].

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, Sender, TrySendError};
use parking_lot::Mutex;

use p_semantics::{MachineId, Value};

use crate::{Runtime, RuntimeError};

/// One event to deliver.
#[derive(Debug, Clone)]
pub struct Injection {
    /// Target machine.
    pub target: MachineId,
    /// Event name.
    pub event: String,
    /// Payload.
    pub payload: Value,
}

impl Injection {
    /// Creates an injection.
    pub fn new(target: MachineId, event: &str, payload: Value) -> Injection {
        Injection {
            target,
            event: event.to_owned(),
            payload,
        }
    }
}

/// What [`EventPump::inject`] does when the bounded channel is full.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum OverflowPolicy {
    /// Block the producer until space frees up (backpressure, like a
    /// full DPC queue). The default.
    #[default]
    Block,
    /// Drop the event being injected, count it in [`PumpStats`] and the
    /// target machine's [`RuntimeStats`](crate::RuntimeStats) row, and
    /// report success.
    DropNewest,
    /// Fail fast with [`RuntimeError::QueueFull`].
    Fail,
}

/// Exponential-backoff schedule for [`EventPump::inject_with_retry`].
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Total send attempts before giving up with
    /// [`RuntimeError::QueueFull`].
    pub max_attempts: u32,
    /// Delay after the first failed attempt; doubles per attempt.
    pub base_delay: Duration,
    /// Add up to +50% random jitter per delay, decorrelating producers
    /// that fail in lockstep.
    pub jitter: bool,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 5,
            base_delay: Duration::from_millis(1),
            jitter: true,
        }
    }
}

impl RetryPolicy {
    /// The backoff before retry number `attempt` (0-based): the base
    /// delay doubled per attempt, plus up to +50% jitter when enabled.
    pub fn delay_for(&self, attempt: u32) -> Duration {
        let backoff = self.base_delay * (1u32 << attempt.min(16));
        if !self.jitter {
            return backoff;
        }
        // Deterministic per-call jitter without a rand dependency: hash
        // a process-wide counter (SplitMix64).
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER
            .fetch_add(1, Ordering::Relaxed)
            .wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = n;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z ^= z >> 31;
        let half = backoff.as_nanos() as u64 / 2;
        backoff + Duration::from_nanos(if half == 0 { 0 } else { z % half })
    }
}

/// Delivery counters for one pump (see [`EventPump::stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PumpStats {
    /// Injections delivered into the runtime.
    pub delivered: u64,
    /// Injections the runtime rejected (machine halted, quarantined,
    /// unknown event, …).
    pub failed: u64,
    /// Injections dropped by the [`OverflowPolicy::DropNewest`] policy.
    pub dropped: u64,
}

/// State shared between producers, the worker thread and the pump handle.
#[derive(Debug, Default)]
struct PumpShared {
    delivered: AtomicU64,
    failed: AtomicU64,
    dropped: AtomicU64,
    /// Set by the worker when its delivery loop has exited.
    done: AtomicBool,
    first_error: Mutex<Option<RuntimeError>>,
}

/// Configures an [`EventPump`] (see [`EventPump::builder`]).
#[derive(Debug)]
pub struct PumpBuilder {
    runtime: Runtime,
    capacity: usize,
    overflow: OverflowPolicy,
}

impl PumpBuilder {
    /// Channel capacity (default 64).
    pub fn capacity(mut self, capacity: usize) -> PumpBuilder {
        self.capacity = capacity;
        self
    }

    /// Overflow policy for [`EventPump::inject`] (default
    /// [`OverflowPolicy::Block`]).
    pub fn overflow(mut self, policy: OverflowPolicy) -> PumpBuilder {
        self.overflow = policy;
        self
    }

    /// Spawns the worker thread and returns the pump handle.
    pub fn start(self) -> EventPump {
        let (sender, receiver) = bounded::<Injection>(self.capacity);
        let shared = Arc::new(PumpShared::default());
        let worker_shared = Arc::clone(&shared);
        let runtime = self.runtime.clone();
        let worker = std::thread::spawn(move || {
            for injection in receiver {
                match runtime.add_event(injection.target, &injection.event, injection.payload) {
                    Ok(()) => {
                        worker_shared.delivered.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(e) => {
                        // A failed machine must not stall delivery to the
                        // healthy ones: remember the first error, keep
                        // pumping.
                        worker_shared.failed.fetch_add(1, Ordering::Relaxed);
                        let mut slot = worker_shared.first_error.lock();
                        if slot.is_none() {
                            *slot = Some(e);
                        }
                    }
                }
            }
            worker_shared.done.store(true, Ordering::Release);
        });
        EventPump {
            sender: Some(sender),
            worker: Some(worker),
            shared,
            runtime: self.runtime,
            overflow: self.overflow,
        }
    }
}

/// A background event-delivery thread over a bounded channel.
///
/// # Examples
///
/// ```
/// let src = r#"
///     event inc;
///     machine Counter {
///         var n : int;
///         state Run { on inc do bump; }
///         action bump { n := n + 1; }
///     }
///     main Counter();
/// "#;
/// let program = p_parser::parse(src).unwrap();
/// let runtime = p_runtime::Runtime::builder(&program).unwrap().start();
/// let id = runtime.create_machine("Counter", &[("n", p_semantics::Value::Int(0))]).unwrap();
///
/// let pump = p_runtime::EventPump::start(runtime.clone(), 16);
/// for _ in 0..10 {
///     pump.inject(p_runtime::Injection::new(id, "inc", p_semantics::Value::Null)).unwrap();
/// }
/// pump.shutdown().unwrap();
/// assert_eq!(runtime.read_var(id, "n"), Some(p_semantics::Value::Int(10)));
/// ```
#[derive(Debug)]
pub struct EventPump {
    sender: Option<Sender<Injection>>,
    worker: Option<JoinHandle<()>>,
    shared: Arc<PumpShared>,
    runtime: Runtime,
    overflow: OverflowPolicy,
}

impl EventPump {
    /// Starts configuring a pump (capacity, overflow policy).
    pub fn builder(runtime: Runtime) -> PumpBuilder {
        PumpBuilder {
            runtime,
            capacity: 64,
            overflow: OverflowPolicy::default(),
        }
    }

    /// Spawns a pump with a channel of the given capacity and the default
    /// [`OverflowPolicy::Block`] policy.
    pub fn start(runtime: Runtime, capacity: usize) -> EventPump {
        EventPump::builder(runtime).capacity(capacity).start()
    }

    fn sender(&self) -> &Sender<Injection> {
        self.sender.as_ref().expect("pump is live until shutdown")
    }

    /// Queues one event for delivery. A full channel is handled per the
    /// pump's [`OverflowPolicy`]: `Block` waits, `DropNewest` counts the
    /// event as dropped and succeeds, `Fail` returns
    /// [`RuntimeError::QueueFull`].
    ///
    /// # Errors
    ///
    /// [`RuntimeError::PumpStopped`] if the worker has exited;
    /// [`RuntimeError::QueueFull`] under the `Fail` policy.
    pub fn inject(&self, injection: Injection) -> Result<(), RuntimeError> {
        match self.overflow {
            OverflowPolicy::Block => self
                .sender()
                .send(injection)
                .map_err(|_| RuntimeError::PumpStopped),
            OverflowPolicy::DropNewest => match self.sender().try_send(injection) {
                Ok(()) => Ok(()),
                Err(TrySendError::Full(injection)) => {
                    self.shared.dropped.fetch_add(1, Ordering::Relaxed);
                    self.runtime.note_dropped(injection.target);
                    Ok(())
                }
                Err(TrySendError::Disconnected(_)) => Err(RuntimeError::PumpStopped),
            },
            OverflowPolicy::Fail => match self.sender().try_send(injection) {
                Ok(()) => Ok(()),
                Err(TrySendError::Full(_)) => Err(RuntimeError::QueueFull),
                Err(TrySendError::Disconnected(_)) => Err(RuntimeError::PumpStopped),
            },
        }
    }

    /// Queues one event, waiting at most `deadline` for channel space.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::QueueFull`] if the deadline expires;
    /// [`RuntimeError::PumpStopped`] if the worker has exited.
    pub fn try_inject(&self, injection: Injection, deadline: Duration) -> Result<(), RuntimeError> {
        match self.sender().send_timeout(injection, deadline) {
            Ok(()) => Ok(()),
            Err(e) if e.is_full() => Err(RuntimeError::QueueFull),
            Err(_) => Err(RuntimeError::PumpStopped),
        }
    }

    /// Queues one event, retrying transient [`RuntimeError::QueueFull`]
    /// conditions with exponential backoff per `policy`.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::QueueFull`] once `policy.max_attempts` attempts
    /// are exhausted; [`RuntimeError::PumpStopped`] if the worker exits.
    pub fn inject_with_retry(
        &self,
        injection: Injection,
        policy: &RetryPolicy,
    ) -> Result<(), RuntimeError> {
        let mut injection = injection;
        for attempt in 0..policy.max_attempts.max(1) {
            match self.sender().try_send(injection) {
                Ok(()) => return Ok(()),
                Err(TrySendError::Disconnected(_)) => return Err(RuntimeError::PumpStopped),
                Err(TrySendError::Full(v)) => {
                    injection = v;
                    if attempt + 1 < policy.max_attempts {
                        std::thread::sleep(policy.delay_for(attempt));
                    }
                }
            }
        }
        Err(RuntimeError::QueueFull)
    }

    /// This pump's delivery counters.
    pub fn stats(&self) -> PumpStats {
        PumpStats {
            delivered: self.shared.delivered.load(Ordering::Relaxed),
            failed: self.shared.failed.load(Ordering::Relaxed),
            dropped: self.shared.dropped.load(Ordering::Relaxed),
        }
    }

    /// Closes the channel and waits for the pump to drain; returns the
    /// number of events delivered.
    ///
    /// # Errors
    ///
    /// Propagates the first machine error the pump encountered, or
    /// [`RuntimeError::PumpPanicked`] if the worker thread died.
    pub fn shutdown(mut self) -> Result<u64, RuntimeError> {
        self.sender.take(); // closes the channel; the worker drains and exits
        let worker = self.worker.take().expect("shutdown called once");
        if worker.join().is_err() {
            return Err(RuntimeError::PumpPanicked);
        }
        if let Some(e) = self.shared.first_error.lock().take() {
            return Err(e);
        }
        Ok(self.shared.delivered.load(Ordering::Relaxed))
    }

    /// Like [`EventPump::shutdown`], but waits at most `deadline` for
    /// in-flight injections to drain.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::ShutdownTimeout`] if the queue does not drain in
    /// time (the worker is detached and keeps draining in the
    /// background); otherwise as [`EventPump::shutdown`].
    pub fn shutdown_with_deadline(mut self, deadline: Duration) -> Result<u64, RuntimeError> {
        self.sender.take();
        let start = Instant::now();
        while !self.shared.done.load(Ordering::Acquire) {
            if start.elapsed() >= deadline {
                self.worker.take(); // detach; it exits once the channel drains
                return Err(RuntimeError::ShutdownTimeout);
            }
            std::thread::sleep(Duration::from_micros(200));
        }
        let worker = self.worker.take().expect("shutdown called once");
        if worker.join().is_err() {
            return Err(RuntimeError::PumpPanicked);
        }
        if let Some(e) = self.shared.first_error.lock().take() {
            return Err(e);
        }
        Ok(self.shared.delivered.load(Ordering::Relaxed))
    }
}

impl Drop for EventPump {
    fn drop(&mut self) {
        // Close the channel so the worker drains and exits, then give it
        // a short grace period and join — a silently detached worker
        // would leak the thread and lose any recorded machine error.
        self.sender.take();
        let Some(worker) = self.worker.take() else {
            return; // already shut down
        };
        let deadline = Instant::now() + Duration::from_millis(200);
        while !self.shared.done.load(Ordering::Acquire) && Instant::now() < deadline {
            std::thread::sleep(Duration::from_micros(200));
        }
        if self.shared.done.load(Ordering::Acquire) {
            let _ = worker.join();
            if let Some(e) = self.shared.first_error.lock().take() {
                eprintln!("EventPump dropped with an unobserved machine error: {e}");
            }
        }
        // Not done within the grace period: detach. The worker still
        // exits once the (closed) channel drains.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counter_runtime() -> (Runtime, MachineId) {
        let src = r#"
            event inc;
            machine Counter {
                var n : int;
                state Run { on inc do bump; }
                action bump { n := n + 1; }
            }
            main Counter();
        "#;
        let program = p_parser::parse(src).unwrap();
        let runtime = Runtime::builder(&program).unwrap().start();
        let id = runtime
            .create_machine("Counter", &[("n", Value::Int(0))])
            .unwrap();
        (runtime, id)
    }

    /// A runtime whose only action blocks in a foreign function for
    /// `delay`, so the pump worker can be held busy deterministically.
    fn slow_runtime(delay: Duration) -> (Runtime, MachineId) {
        let src = r#"
            event tick;
            machine Slow {
                var n : int;
                foreign fn nap() : int;
                state Run { on tick do bump; }
                action bump { n := n + nap(); }
            }
            main Slow();
        "#;
        let program = p_parser::parse(src).unwrap();
        let mut builder = Runtime::builder(&program).unwrap();
        builder.foreign("nap", move |_args| {
            std::thread::sleep(delay);
            Value::Int(1)
        });
        let runtime = builder.start();
        let id = runtime
            .create_machine("Slow", &[("n", Value::Int(0))])
            .unwrap();
        (runtime, id)
    }

    #[test]
    fn pump_delivers_in_order_and_drains_on_shutdown() {
        let (runtime, id) = counter_runtime();
        let pump = EventPump::start(runtime.clone(), 4);
        for _ in 0..100 {
            pump.inject(Injection::new(id, "inc", Value::Null)).unwrap();
        }
        let delivered = pump.shutdown().unwrap();
        assert_eq!(delivered, 100);
        assert_eq!(runtime.read_var(id, "n"), Some(Value::Int(100)));
    }

    #[test]
    fn multiple_producers_one_pump() {
        let (runtime, id) = counter_runtime();
        let pump = std::sync::Arc::new(EventPump::start(runtime.clone(), 32));
        let producers: Vec<_> = (0..4)
            .map(|_| {
                let pump = std::sync::Arc::clone(&pump);
                std::thread::spawn(move || {
                    for _ in 0..50 {
                        pump.inject(Injection::new(id, "inc", Value::Null)).unwrap();
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        let pump = std::sync::Arc::into_inner(pump).expect("sole owner");
        let delivered = pump.shutdown().unwrap();
        assert_eq!(delivered, 200);
        assert_eq!(runtime.read_var(id, "n"), Some(Value::Int(200)));
    }

    #[test]
    fn pump_surfaces_machine_errors() {
        let src = r#"
            event boom;
            machine M {
                state S { on boom goto Bad; }
                state Bad { entry { assert(false); } }
            }
            main M();
        "#;
        let program = p_parser::parse(src).unwrap();
        let runtime = Runtime::builder(&program).unwrap().start();
        let id = runtime.create_machine("M", &[]).unwrap();
        let pump = EventPump::start(runtime, 4);
        pump.inject(Injection::new(id, "boom", Value::Null))
            .unwrap();
        match pump.shutdown() {
            Err(RuntimeError::Machine(e)) => {
                assert_eq!(e.kind, p_semantics::ErrorKind::AssertionFailure);
            }
            other => panic!("expected machine error, got {other:?}"),
        }
    }

    #[test]
    fn drop_newest_drops_exactly_the_excess_and_stats_count_it() {
        let (runtime, id) = slow_runtime(Duration::from_millis(300));
        let pump = EventPump::builder(runtime.clone())
            .capacity(1)
            .overflow(OverflowPolicy::DropNewest)
            .start();
        // #1 occupies the worker (asleep in the foreign call); the rest
        // race a full 1-slot buffer, so at least one must be dropped.
        pump.inject(Injection::new(id, "tick", Value::Null))
            .unwrap();
        std::thread::sleep(Duration::from_millis(50));
        for _ in 0..4 {
            pump.inject(Injection::new(id, "tick", Value::Null))
                .unwrap();
        }
        let dropped = pump.stats().dropped;
        assert!(dropped >= 2, "expected at least two drops, got {dropped}");
        let delivered = pump.shutdown().unwrap();
        // Exactly the excess is dropped: every injection is either
        // delivered or counted as dropped, never both, never lost.
        assert_eq!(delivered + dropped, 5);
        assert_eq!(
            runtime.read_var(id, "n"),
            Some(Value::Int(delivered as i64))
        );
        let rt_stats = runtime.stats();
        assert_eq!(rt_stats.dropped, dropped);
        let row = rt_stats
            .machines
            .iter()
            .find(|m| m.machine == id)
            .expect("target machine has a stats row");
        assert_eq!(row.dropped, dropped);
        assert_eq!(row.delivered, delivered);
    }

    #[test]
    fn fail_policy_and_try_inject_report_queue_full() {
        let (runtime, id) = slow_runtime(Duration::from_millis(300));
        let pump = EventPump::builder(runtime)
            .capacity(1)
            .overflow(OverflowPolicy::Fail)
            .start();
        pump.inject(Injection::new(id, "tick", Value::Null))
            .unwrap();
        std::thread::sleep(Duration::from_millis(50));
        // Fill the buffer to the brim (its exact in-flight boundary is a
        // channel implementation detail), then expect fail-fast.
        let mut full = false;
        for _ in 0..5 {
            match pump.inject(Injection::new(id, "tick", Value::Null)) {
                Ok(()) => {}
                Err(RuntimeError::QueueFull) => {
                    full = true;
                    break;
                }
                other => panic!("unexpected inject result: {other:?}"),
            }
        }
        assert!(full, "a 1-slot pump must overflow within 5 injections");
        assert!(matches!(
            pump.try_inject(
                Injection::new(id, "tick", Value::Null),
                Duration::from_millis(10)
            ),
            Err(RuntimeError::QueueFull)
        ));
        pump.shutdown().unwrap();
    }

    #[test]
    fn retry_rides_out_transient_backpressure() {
        let (runtime, id) = slow_runtime(Duration::from_millis(100));
        let pump = EventPump::builder(runtime.clone())
            .capacity(1)
            .overflow(OverflowPolicy::Fail)
            .start();
        pump.inject(Injection::new(id, "tick", Value::Null))
            .unwrap();
        std::thread::sleep(Duration::from_millis(20));
        pump.inject(Injection::new(id, "tick", Value::Null))
            .unwrap();
        // The buffer is full now, but the worker frees it in ~80ms; a
        // patient retry schedule must get through.
        let policy = RetryPolicy {
            max_attempts: 10,
            base_delay: Duration::from_millis(5),
            jitter: true,
        };
        pump.inject_with_retry(Injection::new(id, "tick", Value::Null), &policy)
            .unwrap();
        let delivered = pump.shutdown().unwrap();
        assert_eq!(delivered, 3);
        assert_eq!(runtime.read_var(id, "n"), Some(Value::Int(3)));
    }

    #[test]
    fn shutdown_with_deadline_times_out_on_a_stuck_worker() {
        let (runtime, id) = slow_runtime(Duration::from_millis(500));
        let pump = EventPump::start(runtime, 4);
        pump.inject(Injection::new(id, "tick", Value::Null))
            .unwrap();
        std::thread::sleep(Duration::from_millis(20));
        match pump.shutdown_with_deadline(Duration::from_millis(50)) {
            Err(RuntimeError::ShutdownTimeout) => {}
            other => panic!("expected shutdown timeout, got {other:?}"),
        }
    }

    #[test]
    fn shutdown_with_deadline_drains_a_healthy_pump() {
        let (runtime, id) = counter_runtime();
        let pump = EventPump::start(runtime.clone(), 16);
        for _ in 0..10 {
            pump.inject(Injection::new(id, "inc", Value::Null)).unwrap();
        }
        let delivered = pump.shutdown_with_deadline(Duration::from_secs(5)).unwrap();
        assert_eq!(delivered, 10);
        assert_eq!(runtime.read_var(id, "n"), Some(Value::Int(10)));
    }

    #[test]
    fn dropping_a_pump_joins_the_worker_and_drains() {
        let (runtime, id) = counter_runtime();
        {
            let pump = EventPump::start(runtime.clone(), 16);
            for _ in 0..20 {
                pump.inject(Injection::new(id, "inc", Value::Null)).unwrap();
            }
            // No shutdown: Drop must still drain and join.
        }
        assert_eq!(runtime.read_var(id, "n"), Some(Value::Int(20)));
    }

    #[test]
    fn retry_policy_backoff_grows_and_caps() {
        let p = RetryPolicy {
            max_attempts: 4,
            base_delay: Duration::from_millis(2),
            jitter: false,
        };
        assert_eq!(p.delay_for(0), Duration::from_millis(2));
        assert_eq!(p.delay_for(1), Duration::from_millis(4));
        assert_eq!(p.delay_for(3), Duration::from_millis(16));
        let j = RetryPolicy {
            jitter: true,
            ..p.clone()
        };
        let d = j.delay_for(1);
        assert!(d >= Duration::from_millis(4) && d < Duration::from_millis(6));
    }
}
