//! Asynchronous event injection: the single-shard facade over the
//! sharded executor.
//!
//! Windows calls into a driver from many contexts — application requests,
//! interrupts, deferred procedure calls (§4). [`EventPump`] models those
//! asynchronous sources: producers send [`Injection`]s from any thread;
//! the executor delivers them through `SMAddEvent` (run-to-completion),
//! exactly like interface code running on an OS worker thread.
//!
//! Since the sharded executor landed (ROADMAP item 2), the pump is a thin
//! wrapper over [`Executor`] in adopt mode: one shard wrapping the
//! caller's runtime, injection credits standing in for the old bounded
//! channel's capacity. The public API and failure model are unchanged —
//! the bounded queue overflows per [`OverflowPolicy`]; transient
//! backpressure can be ridden out with [`EventPump::try_inject`]
//! (deadline) or [`EventPump::inject_with_retry`] (exponential backoff
//! via [`RetryPolicy`]); machine errors do **not** kill the pump (the
//! worker records the first failure, keeps delivering to healthy
//! machines, and the error surfaces on [`EventPump::shutdown`]) — and
//! the pump gains [`EventPump::inject_after`] from the executor's timer
//! wheel for free.

use std::time::Duration;

use crate::{Executor, Injection, OverflowPolicy, RetryPolicy, Runtime, RuntimeError};

/// Delivery counters for one pump (see [`EventPump::stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PumpStats {
    /// Injections delivered into the runtime.
    pub delivered: u64,
    /// Injections the runtime rejected (machine halted, quarantined,
    /// unknown event, …).
    pub failed: u64,
    /// Injections dropped by the [`OverflowPolicy::DropNewest`] policy.
    pub dropped: u64,
}

/// Configures an [`EventPump`] (see [`EventPump::builder`]).
#[derive(Debug)]
pub struct PumpBuilder {
    runtime: Runtime,
    capacity: usize,
    overflow: OverflowPolicy,
}

impl PumpBuilder {
    /// Queue capacity (default 64).
    pub fn capacity(mut self, capacity: usize) -> PumpBuilder {
        self.capacity = capacity.max(1);
        self
    }

    /// Overflow policy for [`EventPump::inject`] (default
    /// [`OverflowPolicy::Block`]).
    pub fn overflow(mut self, policy: OverflowPolicy) -> PumpBuilder {
        self.overflow = policy;
        self
    }

    /// Spawns the worker thread and returns the pump handle.
    pub fn start(self) -> EventPump {
        EventPump {
            exec: Executor::adopt(self.runtime)
                // The old bounded channel's capacity maps onto the
                // shard's credit budget: at most `capacity` injections
                // queued at once, pump-wide.
                .mailbox_capacity(self.capacity)
                .credits(self.capacity)
                .overflow(self.overflow)
                .start(),
        }
    }
}

/// A background event-delivery worker over a bounded queue.
///
/// # Examples
///
/// ```
/// let src = r#"
///     event inc;
///     machine Counter {
///         var n : int;
///         state Run { on inc do bump; }
///         action bump { n := n + 1; }
///     }
///     main Counter();
/// "#;
/// let program = p_parser::parse(src).unwrap();
/// let runtime = p_runtime::Runtime::builder(&program).unwrap().start();
/// let id = runtime.create_machine("Counter", &[("n", p_semantics::Value::Int(0))]).unwrap();
///
/// let pump = p_runtime::EventPump::start(runtime.clone(), 16);
/// for _ in 0..10 {
///     pump.inject(p_runtime::Injection::new(id, "inc", p_semantics::Value::Null)).unwrap();
/// }
/// pump.shutdown().unwrap();
/// assert_eq!(runtime.read_var(id, "n"), Some(p_semantics::Value::Int(10)));
/// ```
#[derive(Debug)]
pub struct EventPump {
    exec: Executor,
}

impl EventPump {
    /// Starts configuring a pump (capacity, overflow policy).
    pub fn builder(runtime: Runtime) -> PumpBuilder {
        PumpBuilder {
            runtime,
            capacity: 64,
            overflow: OverflowPolicy::default(),
        }
    }

    /// Spawns a pump with a queue of the given capacity and the default
    /// [`OverflowPolicy::Block`] policy.
    pub fn start(runtime: Runtime, capacity: usize) -> EventPump {
        EventPump::builder(runtime).capacity(capacity).start()
    }

    /// Queues one event for delivery. A full queue is handled per the
    /// pump's [`OverflowPolicy`]: `Block` waits, `DropNewest` counts the
    /// event as dropped and succeeds, `Fail` returns
    /// [`RuntimeError::QueueFull`].
    ///
    /// # Errors
    ///
    /// [`RuntimeError::PumpStopped`] if the pump has stopped;
    /// [`RuntimeError::QueueFull`] under the `Fail` policy.
    pub fn inject(&self, injection: Injection) -> Result<(), RuntimeError> {
        self.exec.inject(injection)
    }

    /// Queues one event, waiting at most `deadline` for queue space.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::QueueFull`] if the deadline expires;
    /// [`RuntimeError::PumpStopped`] if the pump has stopped.
    pub fn try_inject(&self, injection: Injection, deadline: Duration) -> Result<(), RuntimeError> {
        self.exec.try_inject(injection, deadline)
    }

    /// Queues one event, retrying transient [`RuntimeError::QueueFull`]
    /// conditions with exponential backoff per `policy`.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::QueueFull`] once `policy.max_attempts` attempts
    /// are exhausted; [`RuntimeError::PumpStopped`] if the pump stops.
    pub fn inject_with_retry(
        &self,
        injection: Injection,
        policy: &RetryPolicy,
    ) -> Result<(), RuntimeError> {
        self.exec.inject_with_retry(injection, policy)
    }

    /// Arms a delayed injection on the executor's timer wheel: the event
    /// is delivered once `delay` has elapsed. Delayed sends to one
    /// machine fire in deadline order.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::PumpStopped`] after shutdown has begun.
    pub fn inject_after(&self, injection: Injection, delay: Duration) -> Result<(), RuntimeError> {
        self.exec.inject_after(injection, delay)
    }

    /// This pump's delivery counters.
    pub fn stats(&self) -> PumpStats {
        let stats = self.exec.stats();
        PumpStats {
            delivered: stats.delivered,
            failed: stats.failed,
            dropped: stats.dropped,
        }
    }

    /// Stops intake and waits for the pump to drain; returns the number
    /// of events delivered.
    ///
    /// # Errors
    ///
    /// Propagates the first machine error the pump encountered, or
    /// [`RuntimeError::PumpPanicked`] if the worker thread died.
    pub fn shutdown(self) -> Result<u64, RuntimeError> {
        self.exec.shutdown().map(|report| report.delivered)
    }

    /// Like [`EventPump::shutdown`], but waits at most `deadline` for
    /// in-flight injections to drain.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::ShutdownTimeout`] — carrying the in-flight count —
    /// if the queue does not drain in time (the worker is detached and
    /// keeps draining in the background); otherwise as
    /// [`EventPump::shutdown`].
    pub fn shutdown_with_deadline(self, deadline: Duration) -> Result<u64, RuntimeError> {
        self.exec
            .shutdown_with_deadline(deadline)
            .map(|report| report.delivered)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p_semantics::{MachineId, Value};

    fn counter_runtime() -> (Runtime, MachineId) {
        let src = r#"
            event inc;
            machine Counter {
                var n : int;
                state Run { on inc do bump; }
                action bump { n := n + 1; }
            }
            main Counter();
        "#;
        let program = p_parser::parse(src).unwrap();
        let runtime = Runtime::builder(&program).unwrap().start();
        let id = runtime
            .create_machine("Counter", &[("n", Value::Int(0))])
            .unwrap();
        (runtime, id)
    }

    /// A runtime whose only action blocks in a foreign function for
    /// `delay`, so the pump worker can be held busy deterministically.
    fn slow_runtime(delay: Duration) -> (Runtime, MachineId) {
        let src = r#"
            event tick;
            machine Slow {
                var n : int;
                foreign fn nap() : int;
                state Run { on tick do bump; }
                action bump { n := n + nap(); }
            }
            main Slow();
        "#;
        let program = p_parser::parse(src).unwrap();
        let mut builder = Runtime::builder(&program).unwrap();
        builder.foreign("nap", move |_args| {
            std::thread::sleep(delay);
            Value::Int(1)
        });
        let runtime = builder.start();
        let id = runtime
            .create_machine("Slow", &[("n", Value::Int(0))])
            .unwrap();
        (runtime, id)
    }

    #[test]
    fn pump_delivers_in_order_and_drains_on_shutdown() {
        let (runtime, id) = counter_runtime();
        let pump = EventPump::start(runtime.clone(), 4);
        for _ in 0..100 {
            pump.inject(Injection::new(id, "inc", Value::Null)).unwrap();
        }
        let delivered = pump.shutdown().unwrap();
        assert_eq!(delivered, 100);
        assert_eq!(runtime.read_var(id, "n"), Some(Value::Int(100)));
    }

    #[test]
    fn multiple_producers_one_pump() {
        let (runtime, id) = counter_runtime();
        let pump = std::sync::Arc::new(EventPump::start(runtime.clone(), 32));
        let producers: Vec<_> = (0..4)
            .map(|_| {
                let pump = std::sync::Arc::clone(&pump);
                std::thread::spawn(move || {
                    for _ in 0..50 {
                        pump.inject(Injection::new(id, "inc", Value::Null)).unwrap();
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        let pump = std::sync::Arc::into_inner(pump).expect("sole owner");
        let delivered = pump.shutdown().unwrap();
        assert_eq!(delivered, 200);
        assert_eq!(runtime.read_var(id, "n"), Some(Value::Int(200)));
    }

    #[test]
    fn pump_surfaces_machine_errors() {
        let src = r#"
            event boom;
            machine M {
                state S { on boom goto Bad; }
                state Bad { entry { assert(false); } }
            }
            main M();
        "#;
        let program = p_parser::parse(src).unwrap();
        let runtime = Runtime::builder(&program).unwrap().start();
        let id = runtime.create_machine("M", &[]).unwrap();
        let pump = EventPump::start(runtime, 4);
        pump.inject(Injection::new(id, "boom", Value::Null))
            .unwrap();
        match pump.shutdown() {
            Err(RuntimeError::Machine(e)) => {
                assert_eq!(e.kind, p_semantics::ErrorKind::AssertionFailure);
            }
            other => panic!("expected machine error, got {other:?}"),
        }
    }

    #[test]
    fn drop_newest_drops_exactly_the_excess_and_stats_count_it() {
        let (runtime, id) = slow_runtime(Duration::from_millis(300));
        let pump = EventPump::builder(runtime.clone())
            .capacity(1)
            .overflow(OverflowPolicy::DropNewest)
            .start();
        // #1 occupies the worker (asleep in the foreign call); the rest
        // race a full 1-slot buffer, so at least one must be dropped.
        pump.inject(Injection::new(id, "tick", Value::Null))
            .unwrap();
        std::thread::sleep(Duration::from_millis(50));
        for _ in 0..4 {
            pump.inject(Injection::new(id, "tick", Value::Null))
                .unwrap();
        }
        let dropped = pump.stats().dropped;
        assert!(dropped >= 2, "expected at least two drops, got {dropped}");
        let delivered = pump.shutdown().unwrap();
        // Exactly the excess is dropped: every injection is either
        // delivered or counted as dropped, never both, never lost.
        assert_eq!(delivered + dropped, 5);
        assert_eq!(
            runtime.read_var(id, "n"),
            Some(Value::Int(delivered as i64))
        );
        let rt_stats = runtime.stats();
        assert_eq!(rt_stats.dropped, dropped);
        let row = rt_stats
            .machines
            .iter()
            .find(|m| m.machine == id)
            .expect("target machine has a stats row");
        assert_eq!(row.dropped, dropped);
        assert_eq!(row.delivered, delivered);
    }

    #[test]
    fn fail_policy_and_try_inject_report_queue_full() {
        let (runtime, id) = slow_runtime(Duration::from_millis(300));
        let pump = EventPump::builder(runtime)
            .capacity(1)
            .overflow(OverflowPolicy::Fail)
            .start();
        pump.inject(Injection::new(id, "tick", Value::Null))
            .unwrap();
        std::thread::sleep(Duration::from_millis(50));
        // Fill the buffer to the brim (its exact in-flight boundary is a
        // scheduling detail), then expect fail-fast.
        let mut full = false;
        for _ in 0..5 {
            match pump.inject(Injection::new(id, "tick", Value::Null)) {
                Ok(()) => {}
                Err(RuntimeError::QueueFull) => {
                    full = true;
                    break;
                }
                other => panic!("unexpected inject result: {other:?}"),
            }
        }
        assert!(full, "a 1-slot pump must overflow within 5 injections");
        assert!(matches!(
            pump.try_inject(
                Injection::new(id, "tick", Value::Null),
                Duration::from_millis(10)
            ),
            Err(RuntimeError::QueueFull)
        ));
        pump.shutdown().unwrap();
    }

    #[test]
    fn retry_rides_out_transient_backpressure() {
        let (runtime, id) = slow_runtime(Duration::from_millis(100));
        let pump = EventPump::builder(runtime.clone())
            .capacity(1)
            .overflow(OverflowPolicy::Fail)
            .start();
        pump.inject(Injection::new(id, "tick", Value::Null))
            .unwrap();
        std::thread::sleep(Duration::from_millis(20));
        pump.inject(Injection::new(id, "tick", Value::Null))
            .unwrap();
        // The buffer is full now, but the worker frees it in ~80ms; a
        // patient retry schedule must get through.
        let policy = RetryPolicy {
            max_attempts: 10,
            base_delay: Duration::from_millis(5),
            max_delay: Duration::from_secs(30),
            jitter: true,
        };
        pump.inject_with_retry(Injection::new(id, "tick", Value::Null), &policy)
            .unwrap();
        let delivered = pump.shutdown().unwrap();
        assert_eq!(delivered, 3);
        assert_eq!(runtime.read_var(id, "n"), Some(Value::Int(3)));
    }

    #[test]
    fn shutdown_with_deadline_times_out_on_a_stuck_worker() {
        let (runtime, id) = slow_runtime(Duration::from_millis(500));
        let pump = EventPump::start(runtime, 4);
        pump.inject(Injection::new(id, "tick", Value::Null))
            .unwrap();
        std::thread::sleep(Duration::from_millis(20));
        match pump.shutdown_with_deadline(Duration::from_millis(50)) {
            Err(RuntimeError::ShutdownTimeout { pending }) => {
                assert!(pending >= 1, "a stuck delivery counts as in flight");
            }
            other => panic!("expected shutdown timeout, got {other:?}"),
        }
    }

    #[test]
    fn shutdown_with_deadline_drains_a_healthy_pump() {
        let (runtime, id) = counter_runtime();
        let pump = EventPump::start(runtime.clone(), 16);
        for _ in 0..10 {
            pump.inject(Injection::new(id, "inc", Value::Null)).unwrap();
        }
        let delivered = pump.shutdown_with_deadline(Duration::from_secs(5)).unwrap();
        assert_eq!(delivered, 10);
        assert_eq!(runtime.read_var(id, "n"), Some(Value::Int(10)));
    }

    #[test]
    fn dropping_a_pump_joins_the_worker_and_drains() {
        let (runtime, id) = counter_runtime();
        {
            let pump = EventPump::start(runtime.clone(), 16);
            for _ in 0..20 {
                pump.inject(Injection::new(id, "inc", Value::Null)).unwrap();
            }
            // No shutdown: Drop must still drain and join.
        }
        assert_eq!(runtime.read_var(id, "n"), Some(Value::Int(20)));
    }

    #[test]
    fn inject_after_delivers_through_the_timer_wheel() {
        let (runtime, id) = counter_runtime();
        let pump = EventPump::start(runtime.clone(), 16);
        pump.inject_after(
            Injection::new(id, "inc", Value::Null),
            Duration::from_millis(30),
        )
        .unwrap();
        // Not yet delivered (the timer is still armed)…
        assert_eq!(runtime.read_var(id, "n"), Some(Value::Int(0)));
        // …but shutdown waits for armed timers before draining.
        let delivered = pump.shutdown().unwrap();
        assert_eq!(delivered, 1);
        assert_eq!(runtime.read_var(id, "n"), Some(Value::Int(1)));
    }

    #[test]
    fn retry_policy_backoff_grows_and_caps() {
        let p = RetryPolicy {
            max_attempts: 4,
            base_delay: Duration::from_millis(2),
            max_delay: Duration::from_secs(30),
            jitter: false,
        };
        assert_eq!(p.delay_for(0), Duration::from_millis(2));
        assert_eq!(p.delay_for(1), Duration::from_millis(4));
        assert_eq!(p.delay_for(3), Duration::from_millis(16));
        let j = RetryPolicy {
            jitter: true,
            ..p.clone()
        };
        let d = j.delay_for(1);
        assert!(d >= Duration::from_millis(4) && d < Duration::from_millis(6));
    }

    #[test]
    fn retry_policy_backoff_saturates_at_max_delay() {
        let p = RetryPolicy {
            max_attempts: 4,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_secs(30),
            jitter: false,
        };
        // 1ms << 14 = 16.384s is the last step below the cap…
        assert_eq!(p.delay_for(14), Duration::from_millis(16_384));
        // …and attempt 15 (32.768s) pins to max_delay. From here on the
        // schedule is flat, no matter how absurd the attempt count.
        assert_eq!(p.delay_for(15), Duration::from_secs(30));
        assert_eq!(p.delay_for(63), Duration::from_secs(30));
        assert_eq!(p.delay_for(64), Duration::from_secs(30));
        assert_eq!(p.delay_for(u32::MAX), Duration::from_secs(30));
        // A pathological base_delay saturates instead of panicking.
        let huge = RetryPolicy {
            max_attempts: 4,
            base_delay: Duration::from_secs(u64::MAX / 2),
            max_delay: Duration::MAX,
            jitter: false,
        };
        assert_eq!(huge.delay_for(40), Duration::MAX);
    }
}
