//! Asynchronous event injection: a background thread that drains a
//! channel of events into the runtime.
//!
//! Windows calls into a driver from many contexts — application requests,
//! interrupts, deferred procedure calls (§4). [`EventPump`] models those
//! asynchronous sources: producers send [`Injection`]s from any thread;
//! a dedicated pump thread delivers them through `SMAddEvent`
//! (run-to-completion), exactly like interface code running on an OS
//! worker thread.

use std::thread::JoinHandle;

use crossbeam::channel::{bounded, Sender};

use p_semantics::{MachineId, Value};

use crate::{Runtime, RuntimeError};

/// One event to deliver.
#[derive(Debug, Clone)]
pub struct Injection {
    /// Target machine.
    pub target: MachineId,
    /// Event name.
    pub event: String,
    /// Payload.
    pub payload: Value,
}

impl Injection {
    /// Creates an injection.
    pub fn new(target: MachineId, event: &str, payload: Value) -> Injection {
        Injection {
            target,
            event: event.to_owned(),
            payload,
        }
    }
}

/// A background event-delivery thread over a bounded channel.
///
/// # Examples
///
/// ```
/// let src = r#"
///     event inc;
///     machine Counter {
///         var n : int;
///         state Run { on inc do bump; }
///         action bump { n := n + 1; }
///     }
///     main Counter();
/// "#;
/// let program = p_parser::parse(src).unwrap();
/// let runtime = p_runtime::Runtime::builder(&program).unwrap().start();
/// let id = runtime.create_machine("Counter", &[("n", p_semantics::Value::Int(0))]).unwrap();
///
/// let pump = p_runtime::EventPump::start(runtime.clone(), 16);
/// for _ in 0..10 {
///     pump.inject(p_runtime::Injection::new(id, "inc", p_semantics::Value::Null)).unwrap();
/// }
/// pump.shutdown().unwrap();
/// assert_eq!(runtime.read_var(id, "n"), Some(p_semantics::Value::Int(10)));
/// ```
#[derive(Debug)]
pub struct EventPump {
    sender: Option<Sender<Injection>>,
    worker: Option<JoinHandle<Result<u64, RuntimeError>>>,
}

impl EventPump {
    /// Spawns the pump thread with a channel of the given capacity.
    pub fn start(runtime: Runtime, capacity: usize) -> EventPump {
        let (sender, receiver) = bounded::<Injection>(capacity);
        let worker = std::thread::spawn(move || {
            let mut delivered = 0u64;
            for injection in receiver {
                runtime.add_event(injection.target, &injection.event, injection.payload)?;
                delivered += 1;
            }
            Ok(delivered)
        });
        EventPump {
            sender: Some(sender),
            worker: Some(worker),
        }
    }

    /// Queues one event for delivery (blocks when the channel is full —
    /// backpressure from a slow driver, like a full DPC queue).
    ///
    /// # Errors
    ///
    /// Fails if the pump thread has already stopped (e.g. after a machine
    /// error).
    pub fn inject(&self, injection: Injection) -> Result<(), RuntimeError> {
        self.sender
            .as_ref()
            .expect("pump is live until shutdown")
            .send(injection)
            .map_err(|_| RuntimeError::UnknownName {
                kind: "pump",
                name: "event pump has stopped".to_owned(),
            })
    }

    /// Closes the channel and waits for the pump to drain; returns the
    /// number of events delivered.
    ///
    /// # Errors
    ///
    /// Propagates the first machine error the pump encountered.
    pub fn shutdown(mut self) -> Result<u64, RuntimeError> {
        self.sender.take(); // closes the channel; the worker drains and exits
        let worker = self.worker.take().expect("shutdown called once");
        match worker.join() {
            Ok(result) => result,
            Err(_) => Err(RuntimeError::UnknownName {
                kind: "pump",
                name: "pump thread panicked".to_owned(),
            }),
        }
    }
}

impl Drop for EventPump {
    fn drop(&mut self) {
        // Closing the channel stops the worker; a dropped (not shut down)
        // pump detaches its thread, which exits once the channel drains.
        self.sender.take();
        self.worker.take();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counter_runtime() -> (Runtime, MachineId) {
        let src = r#"
            event inc;
            machine Counter {
                var n : int;
                state Run { on inc do bump; }
                action bump { n := n + 1; }
            }
            main Counter();
        "#;
        let program = p_parser::parse(src).unwrap();
        let runtime = Runtime::builder(&program).unwrap().start();
        let id = runtime
            .create_machine("Counter", &[("n", Value::Int(0))])
            .unwrap();
        (runtime, id)
    }

    #[test]
    fn pump_delivers_in_order_and_drains_on_shutdown() {
        let (runtime, id) = counter_runtime();
        let pump = EventPump::start(runtime.clone(), 4);
        for _ in 0..100 {
            pump.inject(Injection::new(id, "inc", Value::Null)).unwrap();
        }
        let delivered = pump.shutdown().unwrap();
        assert_eq!(delivered, 100);
        assert_eq!(runtime.read_var(id, "n"), Some(Value::Int(100)));
    }

    #[test]
    fn multiple_producers_one_pump() {
        let (runtime, id) = counter_runtime();
        let pump = std::sync::Arc::new(EventPump::start(runtime.clone(), 32));
        let producers: Vec<_> = (0..4)
            .map(|_| {
                let pump = std::sync::Arc::clone(&pump);
                std::thread::spawn(move || {
                    for _ in 0..50 {
                        pump.inject(Injection::new(id, "inc", Value::Null)).unwrap();
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        let pump = std::sync::Arc::into_inner(pump).expect("sole owner");
        let delivered = pump.shutdown().unwrap();
        assert_eq!(delivered, 200);
        assert_eq!(runtime.read_var(id, "n"), Some(Value::Int(200)));
    }

    #[test]
    fn pump_surfaces_machine_errors() {
        let src = r#"
            event boom;
            machine M {
                state S { on boom goto Bad; }
                state Bad { entry { assert(false); } }
            }
            main M();
        "#;
        let program = p_parser::parse(src).unwrap();
        let runtime = Runtime::builder(&program).unwrap().start();
        let id = runtime.create_machine("M", &[]).unwrap();
        let pump = EventPump::start(runtime, 4);
        pump.inject(Injection::new(id, "boom", Value::Null)).unwrap();
        match pump.shutdown() {
            Err(RuntimeError::Machine(e)) => {
                assert_eq!(e.kind, p_semantics::ErrorKind::AssertionFailure);
            }
            other => panic!("expected machine error, got {other:?}"),
        }
    }
}
