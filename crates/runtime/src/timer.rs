//! Hashed timer wheel for delayed injections (`inject_after`).
//!
//! Entries hash into `SLOTS` buckets by deadline tick (`deadline %
//! SLOTS`); the executor's timer thread sweeps due buckets once per tick
//! and moves expired entries into their target mailboxes through the
//! shard's non-blocking push. Two details matter for ordering under
//! load:
//!
//! * Expired entries are delivered sorted by `(deadline_tick, seq)`, so
//!   two timers armed for the same machine fire in deadline order even
//!   when a coarse tick expires them together.
//! * A full mailbox re-arms the entry for the *next* tick but keeps its
//!   original `(deadline_tick, seq)` sort key, so backpressure delays a
//!   delivery without ever reordering it past a later-deadline timer.
//!
//! The `pending` count is decremented only after the entry has entered a
//! mailbox (or been dropped), and mailbox pushes increment the shard's
//! `queued` count first — so at every instant `pending + queued` covers
//! all undelivered work, which is what lets workers use "stopped, no
//! pending timers, nothing queued" as their exit condition.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use p_semantics::{MachineId, Value};

use crate::RuntimeError;

/// Bucket count; power of two so the modulo is a mask.
const SLOTS: usize = 256;

/// One armed timer.
pub(crate) struct TimerEntry {
    /// Tick at which the entry next fires (advanced on re-arm).
    pub fire_tick: u64,
    /// Original deadline tick — the ordering key, preserved across
    /// backpressure re-arms.
    pub deadline_tick: u64,
    /// Arm-order tie-breaker within one tick.
    pub seq: u64,
    /// Target shard index.
    pub shard: usize,
    /// Target machine, shard-local.
    pub local: MachineId,
    /// Event name.
    pub event: String,
    /// Payload, already translated into the shard's id space.
    pub payload: Value,
}

/// The wheel itself. Shared between `inject_after` callers and the
/// executor's timer thread.
pub(crate) struct TimerWheel {
    slots: Vec<Mutex<Vec<TimerEntry>>>,
    tick: Duration,
    start: Instant,
    /// Entries armed but not yet moved into a mailbox (or dropped).
    pending: AtomicUsize,
    seq: AtomicU64,
    scheduled_total: AtomicU64,
    /// Parking spot for the timer thread; `schedule` nudges it. Also the
    /// stop-flag barrier for arming (see [`TimerWheel::schedule`]).
    park: Mutex<()>,
    alarm: Condvar,
}

impl TimerWheel {
    pub(crate) fn new(tick: Duration) -> TimerWheel {
        TimerWheel {
            slots: (0..SLOTS).map(|_| Mutex::new(Vec::new())).collect(),
            tick: tick.max(Duration::from_micros(100)),
            start: Instant::now(),
            pending: AtomicUsize::new(0),
            seq: AtomicU64::new(0),
            scheduled_total: AtomicU64::new(0),
            park: Mutex::new(()),
            alarm: Condvar::new(),
        }
    }

    /// Elapsed ticks since the wheel was built.
    pub(crate) fn now_tick(&self) -> u64 {
        (self.start.elapsed().as_nanos() / self.tick.as_nanos().max(1)) as u64
    }

    /// Entries armed but not yet delivered into a mailbox.
    pub(crate) fn pending(&self) -> usize {
        self.pending.load(Ordering::SeqCst)
    }

    /// Timers armed over the wheel's lifetime.
    pub(crate) fn scheduled_total(&self) -> u64 {
        self.scheduled_total.load(Ordering::Relaxed)
    }

    /// Arms a timer `delay` from now. Checks `stop` under the park lock:
    /// the shutdown barrier cycles that lock after raising the flag, so
    /// no timer can be armed once the barrier has passed.
    pub(crate) fn schedule(
        &self,
        shard: usize,
        local: MachineId,
        event: String,
        payload: Value,
        delay: Duration,
        stop: &AtomicBool,
    ) -> Result<(), RuntimeError> {
        let _guard = self.park.lock();
        if stop.load(Ordering::SeqCst) {
            return Err(RuntimeError::PumpStopped);
        }
        let now = self.now_tick();
        let tick_ns = self.tick.as_nanos().max(1);
        let ticks = delay.as_nanos().div_ceil(tick_ns) as u64;
        let deadline = now + ticks.max(1);
        let entry = TimerEntry {
            fire_tick: deadline,
            deadline_tick: deadline,
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            shard,
            local,
            event,
            payload,
        };
        self.pending.fetch_add(1, Ordering::SeqCst);
        self.scheduled_total.fetch_add(1, Ordering::Relaxed);
        self.slots[(deadline % SLOTS as u64) as usize]
            .lock()
            .push(entry);
        self.alarm.notify_one();
        Ok(())
    }

    /// Removes every entry due at or before `now_tick`, sorted by
    /// `(deadline_tick, seq)`. Entries stay `pending` until the caller
    /// reports them moved or dropped.
    pub(crate) fn collect_due(&self, now_tick: u64) -> Vec<TimerEntry> {
        let mut due = Vec::new();
        if self.pending() == 0 {
            return due;
        }
        for slot in &self.slots {
            let mut entries = slot.lock();
            let mut i = 0;
            while i < entries.len() {
                if entries[i].fire_tick <= now_tick {
                    due.push(entries.swap_remove(i));
                } else {
                    i += 1;
                }
            }
        }
        due.sort_by_key(|e| (e.deadline_tick, e.seq));
        due
    }

    /// Puts back an entry whose mailbox was full, to fire again next
    /// tick. Its `(deadline_tick, seq)` key is untouched, so deadline
    /// order survives the re-arm; it never left `pending`.
    pub(crate) fn rearm(&self, mut entry: TimerEntry, now_tick: u64) {
        entry.fire_tick = now_tick + 1;
        self.slots[(entry.fire_tick % SLOTS as u64) as usize]
            .lock()
            .push(entry);
    }

    /// Reports one collected entry as delivered or dropped.
    pub(crate) fn note_moved(&self) {
        self.pending.fetch_sub(1, Ordering::SeqCst);
    }

    /// Parks the timer thread: at tick cadence while timers are armed,
    /// loosely otherwise (an arm or shutdown nudges the alarm).
    pub(crate) fn park_thread(&self) {
        let mut guard = self.park.lock();
        if self.pending() > 0 {
            self.alarm.wait_for(&mut guard, self.tick);
        } else {
            self.alarm.wait_for(&mut guard, Duration::from_millis(50));
        }
    }

    /// Stop-flag barrier, mirroring `Shard::barrier`: cycling the park
    /// lock after raising the stop flag guarantees no further arming.
    pub(crate) fn barrier(&self) {
        drop(self.park.lock());
        self.alarm.notify_all();
    }
}
