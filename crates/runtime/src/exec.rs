//! The sharded executor: N worker shards over per-machine mailboxes.
//!
//! This is the production-shaped runtime core (ROADMAP item 2). A
//! [`Runtime`] alone processes events on the calling thread; an
//! [`Executor`] owns `N` shards, each with its own runtime (and thus its
//! own machine table — shards share nothing but the program), a worker
//! thread, bounded per-machine mailboxes, and credit-based injection
//! backpressure. A hashed timer wheel adds delayed injections
//! ([`Executor::inject_after`]).
//!
//! **Semantics are unchanged.** Every delivery is one
//! `Runtime::add_event` call — one enqueue through the paper's ⊕
//! operator followed by a run-to-completion drain — executed by exactly
//! one worker per machine at a time (the mailbox's single-drainer flag).
//! Batching happens strictly *between* deliveries: a worker drains up to
//! one scheduling quantum of envelopes from a mailbox before moving on,
//! which amortizes scheduling overhead without ever merging two events
//! into one enqueue (that would change ⊕-dedup behavior). Work stealing
//! moves *scheduling* of a ready machine to an idle worker; the stolen
//! machine still runs against its owning shard's runtime, so supervision
//! (quarantine, halt, typed errors) and ordering are untouched.
//!
//! **Sharding boundary.** Machines created through the executor get a
//! *global* id mapped to a `(shard, local id)` pair. In-program machine
//! references (`send` targets, id-typed variables) must stay on one
//! shard — the executor rejects cross-shard initializers and payloads
//! with [`RuntimeError::CrossShard`] — while executor-level injections
//! route to any shard. Co-locate machines that talk to each other with
//! [`Executor::create_machine_on`].
//!
//! [`EventPump`](crate::EventPump) is a shards=1 facade over this module
//! that adopts an existing runtime, preserving the PR 1 pump API.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::{Mutex, RwLock};

use p_ast::Program;
use p_semantics::{lower, LoweredProgram, MachineId, Value};
use p_telemetry::Telemetry;

use crate::shard::{Envelope, Shard};
use crate::timer::TimerWheel;
use crate::{MachineStatus, Runtime, RuntimeBuilder, RuntimeError};

/// One event to deliver.
#[derive(Debug, Clone)]
pub struct Injection {
    /// Target machine.
    pub target: MachineId,
    /// Event name.
    pub event: String,
    /// Payload.
    pub payload: Value,
}

impl Injection {
    /// Creates an injection.
    pub fn new(target: MachineId, event: &str, payload: Value) -> Injection {
        Injection {
            target,
            event: event.to_owned(),
            payload,
        }
    }
}

/// What [`Executor::inject`] (and [`EventPump::inject`]
/// (crate::EventPump::inject)) does when the target mailbox is full or
/// the shard is out of injection credits.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum OverflowPolicy {
    /// Block the producer until space frees up (backpressure, like a
    /// full DPC queue). The default.
    #[default]
    Block,
    /// Drop the event being injected, count it in the stats and the
    /// target machine's [`RuntimeStats`](crate::RuntimeStats) row, and
    /// report success.
    DropNewest,
    /// Fail fast with [`RuntimeError::QueueFull`].
    Fail,
}

/// Exponential-backoff schedule for [`Executor::inject_with_retry`].
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Total send attempts before giving up with
    /// [`RuntimeError::QueueFull`].
    pub max_attempts: u32,
    /// Delay after the first failed attempt; doubles per attempt.
    pub base_delay: Duration,
    /// Ceiling on the exponential backoff: delays saturate here instead
    /// of overflowing at high attempt counts.
    pub max_delay: Duration,
    /// Add up to +50% random jitter per delay, decorrelating producers
    /// that fail in lockstep.
    pub jitter: bool,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 5,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_secs(30),
            jitter: true,
        }
    }
}

impl RetryPolicy {
    /// The backoff before retry number `attempt` (0-based): the base
    /// delay doubled per attempt — saturating, never overflowing — and
    /// capped at `max_delay`, plus up to +50% jitter when enabled.
    pub fn delay_for(&self, attempt: u32) -> Duration {
        // 2^attempt as a saturating u32 factor: checked_shl rejects
        // shifts ≥ 64, and the factor clamps to u32::MAX beyond 2^32.
        let factor = 1u64.checked_shl(attempt).unwrap_or(u64::MAX);
        let factor = u32::try_from(factor).unwrap_or(u32::MAX);
        let backoff = self.base_delay.saturating_mul(factor).min(self.max_delay);
        if !self.jitter {
            return backoff;
        }
        // Deterministic per-call jitter without a rand dependency: hash
        // a process-wide counter (SplitMix64).
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER
            .fetch_add(1, Ordering::Relaxed)
            .wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = n;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z ^= z >> 31;
        let half = backoff.as_nanos() as u64 / 2;
        backoff.saturating_add(Duration::from_nanos(if half == 0 { 0 } else { z % half }))
    }
}

/// How machine ids map to shards.
enum Router {
    /// Adopt mode (the `EventPump` facade): one shard wrapping a caller-
    /// owned runtime; ids pass through unchanged.
    Identity,
    /// Executor-owned machines: global id → `(shard, local id)`.
    Table(RwLock<Vec<(usize, MachineId)>>),
}

/// Per-shard rows inside an [`ExecStats`] snapshot.
#[derive(Clone, Debug)]
pub struct ShardStats {
    /// Shard index.
    pub shard: usize,
    /// Machines with a mailbox on this shard.
    pub machines: usize,
    /// Envelopes currently queued across its mailboxes (the queue-depth
    /// gauge; reads one atomic, no locks).
    pub queued: u64,
    /// Injection credits currently unclaimed.
    pub credits_free: u64,
    /// Injections delivered through this shard's runtime.
    pub delivered: u64,
    /// Injections its runtime rejected (halted/quarantined targets, …).
    pub failed: u64,
    /// Injections dropped by the `DropNewest` policy.
    pub dropped: u64,
    /// Batches this shard's worker executed that it stole from another
    /// shard's ready queue.
    pub steals: u64,
    /// Mailbox batches this shard's worker drained.
    pub batches: u64,
    /// Timer-wheel entries delivered into this shard's mailboxes.
    pub timer_fired: u64,
    /// High-water mark over its mailbox depths.
    pub max_mailbox_depth: u64,
}

/// Point-in-time executor counters (see [`Executor::stats`]).
#[derive(Clone, Debug)]
pub struct ExecStats {
    /// Injections delivered, summed over shards.
    pub delivered: u64,
    /// Injections rejected by a runtime, summed.
    pub failed: u64,
    /// Injections dropped by overflow policy, summed.
    pub dropped: u64,
    /// Cross-shard batch steals, summed.
    pub steals: u64,
    /// Mailbox batches drained, summed.
    pub batches: u64,
    /// Envelopes currently queued, summed.
    pub queued: u64,
    /// Timers armed over the executor's lifetime.
    pub timer_scheduled: u64,
    /// Timers armed but not yet delivered.
    pub timer_pending: u64,
    /// Timers delivered into mailboxes.
    pub timer_fired: u64,
    /// Per-shard breakdown.
    pub shards: Vec<ShardStats>,
}

impl ExecStats {
    /// Serializes the snapshot as JSON (the `p run --shards --stats`
    /// payload).
    pub fn to_json(&self) -> p_telemetry::json::JsonValue {
        use p_telemetry::json::{num, obj, JsonValue};
        let shards = JsonValue::Arr(
            self.shards
                .iter()
                .map(|s| {
                    obj(vec![
                        ("shard", num(s.shard as f64)),
                        ("machines", num(s.machines as f64)),
                        ("queued", num(s.queued as f64)),
                        ("credits_free", num(s.credits_free as f64)),
                        ("delivered", num(s.delivered as f64)),
                        ("failed", num(s.failed as f64)),
                        ("dropped", num(s.dropped as f64)),
                        ("steals", num(s.steals as f64)),
                        ("batches", num(s.batches as f64)),
                        ("timer_fired", num(s.timer_fired as f64)),
                        ("max_mailbox_depth", num(s.max_mailbox_depth as f64)),
                    ])
                })
                .collect(),
        );
        obj(vec![
            ("delivered", num(self.delivered as f64)),
            ("failed", num(self.failed as f64)),
            ("dropped", num(self.dropped as f64)),
            ("steals", num(self.steals as f64)),
            ("batches", num(self.batches as f64)),
            ("queued", num(self.queued as f64)),
            ("timer_scheduled", num(self.timer_scheduled as f64)),
            ("timer_pending", num(self.timer_pending as f64)),
            ("timer_fired", num(self.timer_fired as f64)),
            ("shards", shards),
        ])
    }
}

/// What a clean [`Executor::shutdown`] returns: totals plus the recorded
/// latency samples.
#[derive(Debug)]
pub struct ExecReport {
    /// Injections delivered over the executor's lifetime.
    pub delivered: u64,
    /// Final counter snapshot.
    pub stats: ExecStats,
    /// Injection-to-completion latencies in nanoseconds, sorted
    /// ascending (empty unless latency recording was enabled).
    pub latency_ns: Vec<u64>,
}

impl ExecReport {
    /// The `q`-quantile (0.0–1.0) of recorded latencies, by
    /// nearest-rank on the sorted samples.
    pub fn latency_quantile(&self, q: f64) -> Option<Duration> {
        if self.latency_ns.is_empty() {
            return None;
        }
        let idx = ((self.latency_ns.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        Some(Duration::from_nanos(self.latency_ns[idx]))
    }
}

type ForeignThunk = Box<dyn Fn(&mut RuntimeBuilder) + Send + Sync>;

enum Source {
    Lowered(Box<LoweredProgram>),
    Adopt(Runtime),
}

/// Configures and builds an [`Executor`].
pub struct ExecutorBuilder {
    source: Source,
    shards: usize,
    mailbox_capacity: usize,
    credits: usize,
    overflow: OverflowPolicy,
    quantum: usize,
    timer_tick: Duration,
    record_latency: bool,
    fuel: Option<usize>,
    telemetry: Telemetry,
    foreigns: Vec<ForeignThunk>,
}

impl std::fmt::Debug for ExecutorBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecutorBuilder")
            .field("shards", &self.shards)
            .field("mailbox_capacity", &self.mailbox_capacity)
            .finish()
    }
}

impl ExecutorBuilder {
    fn new(source: Source) -> ExecutorBuilder {
        ExecutorBuilder {
            source,
            shards: 1,
            mailbox_capacity: 64,
            credits: 4096,
            overflow: OverflowPolicy::default(),
            quantum: 32,
            timer_tick: Duration::from_millis(1),
            record_latency: false,
            fuel: None,
            telemetry: Telemetry::disabled(),
            foreigns: Vec::new(),
        }
    }

    /// Number of worker shards (default 1; ignored in adopt mode, which
    /// is always a single shard over the adopted runtime).
    pub fn shards(mut self, shards: usize) -> ExecutorBuilder {
        self.shards = shards.max(1);
        self
    }

    /// Per-machine mailbox bound (default 64).
    pub fn mailbox_capacity(mut self, capacity: usize) -> ExecutorBuilder {
        self.mailbox_capacity = capacity.max(1);
        self
    }

    /// Shard-wide injection credit budget: the total number of envelopes
    /// one shard may have queued at once (default 4096).
    pub fn credits(mut self, credits: usize) -> ExecutorBuilder {
        self.credits = credits.max(1);
        self
    }

    /// Overflow policy for [`Executor::inject`] (default
    /// [`OverflowPolicy::Block`]).
    pub fn overflow(mut self, policy: OverflowPolicy) -> ExecutorBuilder {
        self.overflow = policy;
        self
    }

    /// Scheduling quantum: max envelopes a worker drains from one
    /// mailbox before requeueing the machine (default 32).
    pub fn quantum(mut self, quantum: usize) -> ExecutorBuilder {
        self.quantum = quantum.max(1);
        self
    }

    /// Timer-wheel tick (default 1ms; floor 100µs).
    pub fn timer_tick(mut self, tick: Duration) -> ExecutorBuilder {
        self.timer_tick = tick;
        self
    }

    /// Record per-injection completion latencies (returned sorted by
    /// [`Executor::shutdown`]; default off — sampling costs one `Instant`
    /// read per delivery plus the sample storage).
    pub fn record_latency(mut self, record: bool) -> ExecutorBuilder {
        self.record_latency = record;
        self
    }

    /// Overrides the per-run small-step budget of every shard runtime.
    pub fn fuel(mut self, fuel: usize) -> ExecutorBuilder {
        self.fuel = Some(fuel);
        self
    }

    /// Attaches a telemetry handle: shard runtimes record their run
    /// spans through it, and workers add per-shard queue-depth gauges
    /// and steal/batch counters.
    pub fn telemetry(mut self, telemetry: Telemetry) -> ExecutorBuilder {
        self.telemetry = telemetry;
        self
    }

    /// Registers a pure foreign function on every shard runtime.
    /// Ignored in adopt mode (the adopted runtime already has its
    /// foreign environment).
    pub fn foreign<F>(mut self, name: &str, f: F) -> ExecutorBuilder
    where
        F: Fn(&[Value]) -> Value + Send + Sync + 'static,
    {
        let name = name.to_owned();
        let f = Arc::new(f);
        self.foreigns.push(Box::new(move |b: &mut RuntimeBuilder| {
            let f = Arc::clone(&f);
            b.foreign(&name, move |args| f(args));
        }));
        self
    }

    /// Builds the shards, spawns one worker thread per shard plus the
    /// timer thread, and returns the executor handle.
    pub fn start(self) -> Executor {
        let (shards, router) = match self.source {
            Source::Adopt(runtime) => (
                vec![Shard::new(runtime, self.mailbox_capacity, self.credits)],
                Router::Identity,
            ),
            Source::Lowered(lowered) => {
                let mut shards = Vec::with_capacity(self.shards);
                for _ in 0..self.shards {
                    let mut builder = Runtime::from_lowered((*lowered).clone());
                    for register in &self.foreigns {
                        register(&mut builder);
                    }
                    if let Some(fuel) = self.fuel {
                        builder.fuel(fuel);
                    }
                    builder.telemetry(self.telemetry.clone());
                    shards.push(Shard::new(
                        builder.start(),
                        self.mailbox_capacity,
                        self.credits,
                    ));
                }
                (shards, Router::Table(RwLock::new(Vec::new())))
            }
        };
        let inner = Arc::new(ExecInner {
            shards,
            router,
            wheel: TimerWheel::new(self.timer_tick),
            overflow: self.overflow,
            quantum: self.quantum.max(1),
            record_latency: self.record_latency,
            stop: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            first_error: Mutex::new(None),
            next_shard: AtomicUsize::new(0),
            telemetry: self.telemetry,
        });
        let workers = (0..inner.shards.len())
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("p-exec-shard-{i}"))
                    .spawn(move || worker_loop(&inner, i))
                    .expect("spawn shard worker")
            })
            .collect();
        let timer = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("p-exec-timer".to_owned())
                .spawn(move || timer_loop(&inner))
                .expect("spawn timer thread")
        };
        Executor {
            inner,
            workers,
            timer: Some(timer),
            done: false,
        }
    }
}

struct ExecInner {
    shards: Vec<Shard>,
    router: Router,
    wheel: TimerWheel,
    overflow: OverflowPolicy,
    quantum: usize,
    record_latency: bool,
    /// No new injections or timers once set (shutdown or drop).
    stop: AtomicBool,
    /// Workers currently executing a batch.
    active: AtomicUsize,
    first_error: Mutex<Option<RuntimeError>>,
    next_shard: AtomicUsize,
    #[cfg_attr(not(feature = "telemetry"), allow(dead_code))]
    telemetry: Telemetry,
}

impl ExecInner {
    fn resolve(&self, id: MachineId) -> Result<(usize, MachineId), RuntimeError> {
        match &self.router {
            Router::Identity => Ok((0, id)),
            Router::Table(table) => table
                .read()
                .get(id.0 as usize)
                .copied()
                .ok_or(RuntimeError::NoSuchMachine(id)),
        }
    }

    /// Translates a `Value::Machine` payload into the target shard's
    /// local id space, rejecting cross-shard references.
    fn translate_payload(&self, payload: Value, shard: usize) -> Result<Value, RuntimeError> {
        match payload {
            Value::Machine(id) => {
                let (home, local) = self.resolve(id)?;
                if home != shard {
                    return Err(RuntimeError::CrossShard {
                        machine: id,
                        home,
                        used_from: shard,
                    });
                }
                Ok(Value::Machine(local))
            }
            other => Ok(other),
        }
    }

    fn queued_total(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.queued.load(Ordering::SeqCst))
            .sum()
    }

    /// True once every injection has been delivered: no armed timers, no
    /// queued envelopes, no batch mid-run. Read order matters — work
    /// moves wheel→mailbox (queued++ before pending--) and
    /// mailbox→worker (active++ before queued--), so reading pending,
    /// then queued, then active can never miss an in-flight event.
    fn drained(&self) -> bool {
        self.wheel.pending() == 0
            && self.queued_total() == 0
            && self.active.load(Ordering::SeqCst) == 0
    }

    fn record_error(&self, e: RuntimeError) {
        let mut slot = self.first_error.lock();
        if slot.is_none() {
            *slot = Some(e);
        }
    }
}

/// Claims the next ready machine: own shard first (FIFO), then steal
/// from the others (LIFO), rotated by worker index.
fn next_work(inner: &ExecInner, me: usize) -> Option<(usize, MachineId)> {
    if let Some(local) = inner.shards[me].pop_ready() {
        return Some((me, local));
    }
    let n = inner.shards.len();
    for k in 1..n {
        let victim = (me + k) % n;
        if let Some(local) = inner.shards[victim].steal_ready() {
            inner.shards[me]
                .counters
                .steals
                .fetch_add(1, Ordering::Relaxed);
            return Some((victim, local));
        }
    }
    None
}

/// Drains up to one quantum of envelopes from `local`'s mailbox,
/// delivering each through the owning shard's runtime.
fn run_batch(inner: &ExecInner, shard_idx: usize, local: MachineId) {
    let shard = &inner.shards[shard_idx];
    let mb = shard.mailbox(local);
    let mut processed = 0u64;
    let mut latencies: Vec<u64> = Vec::new();
    while processed < inner.quantum as u64 {
        let Some(env) = shard.pop_envelope(&mb) else {
            break;
        };
        let started = env.at;
        match shard.runtime.add_event(env.local, &env.event, env.payload) {
            Ok(()) => {
                shard.counters.delivered.fetch_add(1, Ordering::Relaxed);
                if inner.record_latency {
                    latencies.push(started.elapsed().as_nanos() as u64);
                }
            }
            Err(e) => {
                // A failed machine must not stall delivery to healthy
                // ones: remember the first error, keep draining.
                shard.counters.failed.fetch_add(1, Ordering::Relaxed);
                inner.record_error(e);
            }
        }
        processed += 1;
    }
    if processed > 0 {
        shard.counters.batches.fetch_add(1, Ordering::Relaxed);
        if !latencies.is_empty() {
            shard.latencies.lock().extend(latencies);
        }
    }
    #[cfg(feature = "telemetry")]
    if inner.telemetry.enabled() {
        inner.telemetry.gauge(
            shard_idx as u32,
            "shard_queue_depth",
            shard.queued.load(Ordering::Relaxed) as i64,
        );
        if let Some(metrics) = inner.telemetry.metrics() {
            metrics.counter("exec.batches").inc();
            metrics.counter("exec.delivered").add(processed);
            metrics
                .gauge("exec.queue.depth")
                .set(inner.queued_total() as u64);
        }
    }
    shard.reschedule_after_batch(&mb, local);
}

fn worker_loop(inner: &Arc<ExecInner>, me: usize) {
    loop {
        match next_work(inner, me) {
            Some((shard_idx, local)) => {
                inner.active.fetch_add(1, Ordering::SeqCst);
                run_batch(inner, shard_idx, local);
                inner.active.fetch_sub(1, Ordering::SeqCst);
            }
            None => {
                if inner.stop.load(Ordering::SeqCst)
                    && inner.wheel.pending() == 0
                    && inner.queued_total() == 0
                {
                    break;
                }
                inner.shards[me].park(Duration::from_micros(500));
            }
        }
    }
}

fn timer_loop(inner: &Arc<ExecInner>) {
    loop {
        if inner.stop.load(Ordering::SeqCst) && inner.wheel.pending() == 0 {
            break;
        }
        let now = inner.wheel.now_tick();
        for entry in inner.wheel.collect_due(now) {
            let shard = &inner.shards[entry.shard];
            let (deadline_tick, seq, shard_idx) = (entry.deadline_tick, entry.seq, entry.shard);
            let env = Envelope {
                local: entry.local,
                event: entry.event,
                payload: entry.payload,
                at: Instant::now(),
            };
            match shard.try_push(env) {
                Ok(()) => {
                    shard.counters.timer_fired.fetch_add(1, Ordering::Relaxed);
                    inner.wheel.note_moved();
                }
                Err(env) => {
                    if inner.overflow == OverflowPolicy::DropNewest {
                        shard.counters.dropped.fetch_add(1, Ordering::Relaxed);
                        shard.runtime.note_dropped(env.local);
                        inner.wheel.note_moved();
                    } else {
                        // Full mailbox under Block/Fail: fire again next
                        // tick, keeping the original deadline order key.
                        inner.wheel.rearm(
                            crate::timer::TimerEntry {
                                fire_tick: now + 1,
                                deadline_tick,
                                seq,
                                shard: shard_idx,
                                local: env.local,
                                event: env.event,
                                payload: env.payload,
                            },
                            now,
                        );
                    }
                }
            }
        }
        inner.wheel.park_thread();
    }
}

/// A sharded multi-threaded executor over P machine runtimes.
///
/// # Examples
///
/// ```
/// let src = r#"
///     event inc;
///     machine Counter {
///         var n : int;
///         state Run { on inc do bump; }
///         action bump { n := n + 1; }
///     }
///     main Counter();
/// "#;
/// let program = p_parser::parse(src).unwrap();
/// let exec = p_runtime::Executor::builder(&program).unwrap().shards(2).start();
/// let ids: Vec<_> = (0..4)
///     .map(|_| exec.create_machine("Counter", &[("n", p_semantics::Value::Int(0))]).unwrap())
///     .collect();
/// for &id in &ids {
///     exec.inject(p_runtime::Injection::new(id, "inc", p_semantics::Value::Null)).unwrap();
/// }
/// let report = exec.shutdown().unwrap();
/// assert_eq!(report.delivered, 4);
/// ```
pub struct Executor {
    inner: Arc<ExecInner>,
    workers: Vec<JoinHandle<()>>,
    timer: Option<JoinHandle<()>>,
    done: bool,
}

impl std::fmt::Debug for Executor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Executor")
            .field("shards", &self.inner.shards.len())
            .field("queued", &self.inner.queued_total())
            .finish()
    }
}

impl Executor {
    /// Checks `program`, erases its ghost parts, lowers the result and
    /// returns a builder (mirroring [`Runtime::builder`]).
    ///
    /// # Errors
    ///
    /// Fails if the program is rejected by the static checker, has no
    /// real machines, or does not lower.
    pub fn builder(program: &Program) -> Result<ExecutorBuilder, RuntimeError> {
        p_typecheck::check(program)?;
        let erased = p_typecheck::erase(program)?;
        let lowered = lower(&erased)?;
        Ok(ExecutorBuilder::new(Source::Lowered(Box::new(lowered))))
    }

    /// Builder over an already-erased, lowered program.
    pub fn from_lowered(program: LoweredProgram) -> ExecutorBuilder {
        ExecutorBuilder::new(Source::Lowered(Box::new(program)))
    }

    /// Builder that adopts an existing runtime as a single shard (the
    /// [`EventPump`](crate::EventPump) facade). Machine ids pass through
    /// unchanged; machines created directly on the runtime get their
    /// mailbox lazily on first injection.
    pub fn adopt(runtime: Runtime) -> ExecutorBuilder {
        ExecutorBuilder::new(Source::Adopt(runtime))
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.inner.shards.len()
    }

    /// The runtime owning shard `shard`'s machines.
    pub fn shard_runtime(&self, shard: usize) -> Option<&Runtime> {
        self.inner.shards.get(shard).map(|s| &s.runtime)
    }

    /// The `(shard, shard-local id)` pair a global machine id routes to.
    /// Together with a cloned [`Executor::shard_runtime`] handle this
    /// lets callers inspect machine state after the executor has shut
    /// down.
    pub fn locate(&self, id: MachineId) -> Option<(usize, MachineId)> {
        self.inner.resolve(id).ok()
    }

    /// Creates a machine on the least-recently-used shard (round-robin)
    /// and returns its global id.
    ///
    /// # Errors
    ///
    /// As [`Runtime::create_machine`], plus
    /// [`RuntimeError::CrossShard`] if an initializer references a
    /// machine on a different shard.
    pub fn create_machine(
        &self,
        type_name: &str,
        inits: &[(&str, Value)],
    ) -> Result<MachineId, RuntimeError> {
        let n = self.inner.shards.len();
        let shard = self.inner.next_shard.fetch_add(1, Ordering::Relaxed) % n;
        self.create_machine_on(shard, type_name, inits)
    }

    /// Creates a machine on a specific shard. Machines that reference
    /// each other in-program (id-typed variables, `send` targets) must
    /// be co-located this way.
    ///
    /// # Errors
    ///
    /// As [`Executor::create_machine`]; unknown shard indices report
    /// [`RuntimeError::UnknownName`].
    pub fn create_machine_on(
        &self,
        shard: usize,
        type_name: &str,
        inits: &[(&str, Value)],
    ) -> Result<MachineId, RuntimeError> {
        let inner = &self.inner;
        if shard >= inner.shards.len() {
            return Err(RuntimeError::UnknownName {
                kind: "shard",
                name: shard.to_string(),
            });
        }
        let mut translated: Vec<(&str, Value)> = Vec::with_capacity(inits.len());
        for (name, value) in inits {
            translated.push((name, inner.translate_payload(*value, shard)?));
        }
        let local = inner.shards[shard]
            .runtime
            .create_machine(type_name, &translated)?;
        let global = match &inner.router {
            Router::Identity => local,
            Router::Table(table) => {
                let mut table = table.write();
                table.push((shard, local));
                MachineId((table.len() - 1) as u32)
            }
        };
        // Pre-size the mailbox table so first injection takes the read path.
        let _ = inner.shards[shard].mailbox(local);
        Ok(global)
    }

    /// Queues one event for asynchronous delivery. A full mailbox (or an
    /// exhausted credit budget) is handled per the executor's
    /// [`OverflowPolicy`].
    ///
    /// # Errors
    ///
    /// [`RuntimeError::PumpStopped`] after shutdown has begun;
    /// [`RuntimeError::QueueFull`] under the `Fail` policy;
    /// [`RuntimeError::NoSuchMachine`] / [`RuntimeError::CrossShard`]
    /// for unroutable targets or payloads.
    pub fn inject(&self, injection: Injection) -> Result<(), RuntimeError> {
        let inner = &self.inner;
        let (shard_idx, local) = inner.resolve(injection.target)?;
        let payload = inner.translate_payload(injection.payload, shard_idx)?;
        let env = Envelope {
            local,
            event: injection.event,
            payload,
            at: Instant::now(),
        };
        inner.shards[shard_idx].push(env, inner.overflow, None, &inner.stop)
    }

    /// Queues one event, waiting at most `deadline` for space regardless
    /// of the configured overflow policy.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::QueueFull`] if the deadline expires; otherwise as
    /// [`Executor::inject`].
    pub fn try_inject(&self, injection: Injection, deadline: Duration) -> Result<(), RuntimeError> {
        let inner = &self.inner;
        let (shard_idx, local) = inner.resolve(injection.target)?;
        let payload = inner.translate_payload(injection.payload, shard_idx)?;
        let env = Envelope {
            local,
            event: injection.event,
            payload,
            at: Instant::now(),
        };
        inner.shards[shard_idx].push(
            env,
            OverflowPolicy::Block,
            Some(Instant::now() + deadline),
            &inner.stop,
        )
    }

    /// Queues one event, retrying transient full-queue conditions with
    /// exponential backoff per `policy`.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::QueueFull`] once `policy.max_attempts` attempts
    /// are exhausted; otherwise as [`Executor::inject`].
    pub fn inject_with_retry(
        &self,
        injection: Injection,
        policy: &RetryPolicy,
    ) -> Result<(), RuntimeError> {
        let inner = &self.inner;
        let (shard_idx, local) = inner.resolve(injection.target)?;
        let payload = inner.translate_payload(injection.payload, shard_idx)?;
        let mut env = Envelope {
            local,
            event: injection.event,
            payload,
            at: Instant::now(),
        };
        let attempts = policy.max_attempts.max(1);
        for attempt in 0..attempts {
            if inner.stop.load(Ordering::SeqCst) {
                return Err(RuntimeError::PumpStopped);
            }
            match inner.shards[shard_idx].try_push(env) {
                Ok(()) => return Ok(()),
                Err(back) => {
                    env = back;
                    if attempt + 1 < attempts {
                        std::thread::sleep(policy.delay_for(attempt));
                    }
                }
            }
        }
        Err(RuntimeError::QueueFull)
    }

    /// Arms a delayed injection: `injection` is delivered through the
    /// timer wheel once `delay` has elapsed. Delayed sends to one
    /// machine fire in deadline order (arm order breaking ties), even
    /// when mailbox backpressure postpones actual delivery.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::PumpStopped`] after shutdown has begun; routing
    /// errors as [`Executor::inject`].
    pub fn inject_after(&self, injection: Injection, delay: Duration) -> Result<(), RuntimeError> {
        let inner = &self.inner;
        let (shard_idx, local) = inner.resolve(injection.target)?;
        let payload = inner.translate_payload(injection.payload, shard_idx)?;
        inner.wheel.schedule(
            shard_idx,
            local,
            injection.event,
            payload,
            delay,
            &inner.stop,
        )
    }

    /// Pending-mailbox depth of machine `id` (one atomic read; no
    /// locks). `None` for unroutable ids.
    pub fn queue_len(&self, id: MachineId) -> Option<usize> {
        let (shard, local) = self.inner.resolve(id).ok()?;
        Some(self.inner.shards[shard].mailbox(local).depth())
    }

    /// Supervision status of machine `id` (see
    /// [`Runtime::machine_status`]).
    pub fn machine_status(&self, id: MachineId) -> Option<MachineStatus> {
        let (shard, local) = self.inner.resolve(id).ok()?;
        self.inner.shards[shard].runtime.machine_status(local)
    }

    /// Reads a machine variable by name (introspection; machine-id
    /// values come back in the owning shard's local id space).
    pub fn read_var(&self, id: MachineId, name: &str) -> Option<Value> {
        let (shard, local) = self.inner.resolve(id).ok()?;
        self.inner.shards[shard].runtime.read_var(local, name)
    }

    /// The source name of machine `id`'s current control state.
    pub fn current_state(&self, id: MachineId) -> Option<String> {
        let (shard, local) = self.inner.resolve(id).ok()?;
        self.inner.shards[shard].runtime.current_state(local)
    }

    /// Events accepted across all shard runtimes.
    pub fn events_processed(&self) -> u64 {
        self.inner
            .shards
            .iter()
            .map(|s| s.runtime.events_processed())
            .sum()
    }

    /// Counter snapshot: totals plus per-shard queue depths, credits,
    /// steal/batch/timer counters.
    pub fn stats(&self) -> ExecStats {
        stats_of(&self.inner)
    }

    fn begin_stop(&self) {
        self.inner.stop.store(true, Ordering::SeqCst);
        for shard in &self.inner.shards {
            shard.barrier();
        }
        self.inner.wheel.barrier();
    }

    fn finish(&mut self) -> Result<ExecReport, RuntimeError> {
        self.done = true;
        for shard in &self.inner.shards {
            shard.wake_worker();
        }
        self.inner.wheel.barrier();
        for worker in self.workers.drain(..) {
            if worker.join().is_err() {
                return Err(RuntimeError::PumpPanicked);
            }
        }
        if let Some(timer) = self.timer.take() {
            if timer.join().is_err() {
                return Err(RuntimeError::PumpPanicked);
            }
        }
        if let Some(e) = self.inner.first_error.lock().take() {
            return Err(e);
        }
        let stats = stats_of(&self.inner);
        let mut latency_ns: Vec<u64> = Vec::new();
        for shard in &self.inner.shards {
            latency_ns.extend(shard.latencies.lock().drain(..));
        }
        latency_ns.sort_unstable();
        Ok(ExecReport {
            delivered: stats.delivered,
            stats,
            latency_ns,
        })
    }

    /// Stops accepting injections, waits for every queued envelope and
    /// armed timer to deliver, joins the workers, and returns the final
    /// report.
    ///
    /// # Errors
    ///
    /// Propagates the first machine error any shard encountered, or
    /// [`RuntimeError::PumpPanicked`] if a worker thread died.
    pub fn shutdown(mut self) -> Result<ExecReport, RuntimeError> {
        self.begin_stop();
        while !self.inner.drained() {
            std::thread::sleep(Duration::from_micros(200));
        }
        self.finish()
    }

    /// Like [`Executor::shutdown`], but waits at most `deadline` for the
    /// drain.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::ShutdownTimeout`] (carrying the in-flight count)
    /// if the deadline expires — the workers are detached and keep
    /// draining in the background; otherwise as [`Executor::shutdown`].
    pub fn shutdown_with_deadline(
        mut self,
        deadline: Duration,
    ) -> Result<ExecReport, RuntimeError> {
        self.begin_stop();
        let end = Instant::now() + deadline;
        while !self.inner.drained() {
            if Instant::now() >= end {
                self.done = true;
                let pending = (self.inner.queued_total()
                    + self.inner.wheel.pending()
                    + self.inner.active.load(Ordering::SeqCst))
                    as u64;
                self.workers.clear();
                self.timer.take();
                return Err(RuntimeError::ShutdownTimeout {
                    pending: pending.max(1),
                });
            }
            std::thread::sleep(Duration::from_micros(100));
        }
        self.finish()
    }
}

fn stats_of(inner: &ExecInner) -> ExecStats {
    let shards: Vec<ShardStats> = inner
        .shards
        .iter()
        .enumerate()
        .map(|(i, s)| ShardStats {
            shard: i,
            machines: s.machine_count(),
            queued: s.queued.load(Ordering::SeqCst) as u64,
            credits_free: s.credits_free() as u64,
            delivered: s.counters.delivered.load(Ordering::Relaxed),
            failed: s.counters.failed.load(Ordering::Relaxed),
            dropped: s.counters.dropped.load(Ordering::Relaxed),
            steals: s.counters.steals.load(Ordering::Relaxed),
            batches: s.counters.batches.load(Ordering::Relaxed),
            timer_fired: s.counters.timer_fired.load(Ordering::Relaxed),
            max_mailbox_depth: s.counters.max_depth.load(Ordering::Relaxed),
        })
        .collect();
    ExecStats {
        delivered: shards.iter().map(|s| s.delivered).sum(),
        failed: shards.iter().map(|s| s.failed).sum(),
        dropped: shards.iter().map(|s| s.dropped).sum(),
        steals: shards.iter().map(|s| s.steals).sum(),
        batches: shards.iter().map(|s| s.batches).sum(),
        queued: shards.iter().map(|s| s.queued).sum(),
        timer_scheduled: inner.wheel.scheduled_total(),
        timer_pending: inner.wheel.pending() as u64,
        timer_fired: shards.iter().map(|s| s.timer_fired).sum(),
        shards,
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        if self.done {
            return;
        }
        // Stop intake, give the drain a short grace period, then join —
        // a silently detached worker would leak the thread and lose any
        // recorded machine error.
        self.begin_stop();
        let grace = Instant::now() + Duration::from_millis(200);
        while !self.inner.drained() && Instant::now() < grace {
            std::thread::sleep(Duration::from_micros(200));
        }
        if self.inner.drained() {
            for worker in self.workers.drain(..) {
                let _ = worker.join();
            }
            if let Some(timer) = self.timer.take() {
                let _ = timer.join();
            }
            if let Some(e) = self.inner.first_error.lock().take() {
                eprintln!("Executor dropped with an unobserved machine error: {e}");
            }
        }
        // Not drained within the grace period: detach. The workers keep
        // draining and exit once their queues empty.
    }
}
