//! Interface code: the KMDF-skeleton analog of §4.
//!
//! The paper's interface code "mediates between the OS and the P code": on
//! `EvtAddDevice` it creates the device's state machine with
//! `SMCreateMachine`; OS callbacks (Plug-and-Play, power management) are
//! translated into P events queued with `SMAddEvent`; `EvtRemoveDevice`
//! results in a special `Delete` event that the machine must handle by
//! cleaning up and executing `delete`.
//!
//! [`DriverHost`] simulates that skeleton over the simulated OS: each
//! *device* is a machine instance, identified by an opaque
//! [`DeviceHandle`].

use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use p_semantics::{MachineId, Value};

use crate::{Runtime, RuntimeError};

/// An opaque handle the "OS" uses to refer to a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DeviceHandle(u32);

/// A simulated KMDF driver host: creates device machines on device
/// arrival, routes OS callbacks to events, and delivers the removal
/// event on device departure.
///
/// # Examples
///
/// ```
/// let src = r#"
///     event PowerUp;
///     event RemoveDevice;
///     machine Device {
///         state Off {
///             on PowerUp goto On;
///             on RemoveDevice goto Removing;
///         }
///         state On {
///             on RemoveDevice goto Removing;
///         }
///         state Removing { entry { delete; } }
///     }
///     main Device();
/// "#;
/// let program = p_parser::parse(src).unwrap();
/// let runtime = p_runtime::Runtime::builder(&program).unwrap().start();
/// let host = p_runtime::DriverHost::new(runtime, "Device", "RemoveDevice");
/// let dev = host.add_device(&[]).unwrap();
/// host.os_event(dev, "PowerUp", p_semantics::Value::Null).unwrap();
/// host.remove_device(dev).unwrap();
/// assert!(!host.is_attached(dev));
/// ```
#[derive(Debug, Clone)]
pub struct DriverHost {
    runtime: Runtime,
    device_machine: String,
    remove_event: String,
    devices: Arc<Mutex<HashMap<DeviceHandle, MachineId>>>,
    next_handle: Arc<AtomicU32>,
}

impl DriverHost {
    /// Creates a host whose devices are instances of `device_machine` and
    /// whose removal callback sends `remove_event` (the paper's `Delete`
    /// event).
    pub fn new(runtime: Runtime, device_machine: &str, remove_event: &str) -> DriverHost {
        DriverHost {
            runtime,
            device_machine: device_machine.to_owned(),
            remove_event: remove_event.to_owned(),
            devices: Arc::new(Mutex::new(HashMap::new())),
            next_handle: Arc::new(AtomicU32::new(0)),
        }
    }

    /// The underlying runtime.
    pub fn runtime(&self) -> &Runtime {
        &self.runtime
    }

    /// `EvtAddDevice`: instantiates the device machine.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors (unknown names, machine errors during
    /// the entry statement).
    pub fn add_device(&self, inits: &[(&str, Value)]) -> Result<DeviceHandle, RuntimeError> {
        let id = self.runtime.create_machine(&self.device_machine, inits)?;
        let handle = DeviceHandle(self.next_handle.fetch_add(1, Ordering::Relaxed));
        self.devices.lock().insert(handle, id);
        Ok(handle)
    }

    /// Translates an OS callback into a P event on the device's machine.
    ///
    /// # Errors
    ///
    /// Fails on detached handles, unknown events, or machine errors while
    /// processing.
    pub fn os_event(
        &self,
        device: DeviceHandle,
        event: &str,
        payload: Value,
    ) -> Result<(), RuntimeError> {
        let id = self.machine_of(device)?;
        self.runtime.add_event(id, event, payload)
    }

    /// `EvtRemoveDevice`: sends the removal event; the machine is expected
    /// to clean up and execute `delete` (§4). The handle is detached
    /// afterwards.
    ///
    /// # Errors
    ///
    /// Fails on detached handles or machine errors during removal
    /// processing.
    pub fn remove_device(&self, device: DeviceHandle) -> Result<(), RuntimeError> {
        let id = self.machine_of(device)?;
        self.runtime
            .add_event(id, &self.remove_event, Value::Null)?;
        self.devices.lock().remove(&device);
        Ok(())
    }

    /// Whether `device` is still attached (its machine may additionally
    /// have deleted itself; see [`DriverHost::device_machine_alive`]).
    pub fn is_attached(&self, device: DeviceHandle) -> bool {
        self.devices.lock().contains_key(&device)
    }

    /// Whether the machine behind `device` is still alive.
    pub fn device_machine_alive(&self, device: DeviceHandle) -> bool {
        self.machine_of(device)
            .map(|id| self.runtime.is_alive(id))
            .unwrap_or(false)
    }

    /// The machine id behind a handle.
    pub fn machine_of(&self, device: DeviceHandle) -> Result<MachineId, RuntimeError> {
        self.devices
            .lock()
            .get(&device)
            .copied()
            .ok_or_else(|| RuntimeError::UnknownName {
                kind: "device",
                name: format!("{device:?}"),
            })
    }

    /// Number of attached devices.
    pub fn device_count(&self) -> usize {
        self.devices.lock().len()
    }
}
