//! The execution runtime (§4 of the paper).
//!
//! The paper's runtime exposes three APIs to the interface code:
//! `SMCreateMachine`, `SMAddEvent` and `SMGetContext`. This module exposes
//! the same three operations as [`Runtime::create_machine`],
//! [`Runtime::add_event`] and [`Runtime::with_context`], and reproduces
//! the runtime's execution discipline:
//!
//! * ghost machines, variables and statements are **erased** before the
//!   program is lowered to its table-driven form;
//! * the calling thread processes events **run-to-completion**: an
//!   `add_event` drives the target machine (and, transitively, every
//!   machine it sends to, in causal order) until the system is quiescent —
//!   Windows drivers "use calling threads to do all the work";
//! * multiple host threads may call in concurrently; machine state is
//!   protected by locking (the paper locks per machine instance; this
//!   reproduction serializes on one configuration lock, which preserves
//!   the observable run-to-completion semantics — see DESIGN.md).
//!
//! Foreign functions may carry per-machine *external memory*, mirroring
//! the `void*` context of §4, via [`RuntimeBuilder::foreign_with_context`]
//! and [`Runtime::set_context`].

use std::any::Any;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use p_ast::Program;
use p_semantics::{
    lower, Config, Engine, ExecOutcome, ForeignEnv, ForeignRegistry, Granularity, LoweredProgram,
    MachineId, Value, YieldKind,
};
use p_telemetry::Telemetry;

use crate::RuntimeError;

type ContextMap = HashMap<MachineId, Box<dyn Any + Send>>;

/// Configures and builds a [`Runtime`].
///
/// Created by [`Runtime::builder`]; statically checks and erases the
/// program up front, then accepts foreign-function implementations.
pub struct RuntimeBuilder {
    program: LoweredProgram,
    registry: ForeignRegistry,
    contexts: Arc<Mutex<ContextMap>>,
    fuel: usize,
    telemetry: Telemetry,
}

impl std::fmt::Debug for RuntimeBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RuntimeBuilder")
            .field("machines", &self.program.machines.len())
            .finish()
    }
}

impl RuntimeBuilder {
    /// Registers a pure foreign function.
    pub fn foreign<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: Fn(&[Value]) -> Value + Send + Sync + 'static,
    {
        self.registry.register(name, f);
        self
    }

    /// Registers a foreign function with access to the calling machine's
    /// external context of type `T` (the `void*` memory of §4).
    ///
    /// If the calling machine has no context, or its context has a
    /// different type, the function receives `None`.
    pub fn foreign_with_context<T, F>(&mut self, name: &str, f: F) -> &mut Self
    where
        T: Any + Send,
        F: Fn(Option<&mut T>, &[Value]) -> Value + Send + Sync + 'static,
    {
        let contexts = Arc::clone(&self.contexts);
        self.registry.register_with_self(name, move |caller, args| {
            let mut map = contexts.lock();
            let ctx = map.get_mut(&caller).and_then(|b| b.downcast_mut::<T>());
            f(ctx, args)
        });
        self
    }

    /// Overrides the per-run small-step budget.
    pub fn fuel(&mut self, fuel: usize) -> &mut Self {
        self.fuel = fuel;
        self
    }

    /// Attaches a telemetry handle. The runtime then records per-machine
    /// spans for atomic runs, instants for send/raise/dequeue/defer/
    /// halt/quarantine, and queue-depth gauges through it. A disabled
    /// handle (the default) reduces every hook to one predictable
    /// branch; building `p-runtime` without its `telemetry` feature
    /// removes the hook sites entirely.
    pub fn telemetry(&mut self, telemetry: Telemetry) -> &mut Self {
        self.telemetry = telemetry;
        self
    }

    /// Builds the runtime. No machine is created yet — that is the
    /// interface code's job (e.g. on `EvtAddDevice`).
    pub fn start(self) -> Runtime {
        let foreign = self.registry.resolve(&self.program);
        Runtime {
            inner: Arc::new(Inner {
                program: self.program,
                foreign,
                contexts: self.contexts,
                shared: Mutex::new(Shared {
                    config: Config::default(),
                    work: Vec::new(),
                }),
                meta: Mutex::new(HashMap::new()),
                fuel: self.fuel,
                events_processed: AtomicU64::new(0),
                runs_executed: AtomicU64::new(0),
                telemetry: self.telemetry,
            }),
        }
    }
}

/// Supervision status of one machine instance.
///
/// The paper's runtime halts the whole driver on an error; this
/// reproduction supervises per machine so one misbehaving instance (or
/// one panicking foreign function) cannot take the rest of the system
/// down — see the "Fault model & supervision" section of DESIGN.md.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum MachineStatus {
    /// Processing events normally.
    #[default]
    Running,
    /// Took a P error transition (assert failure, unhandled event, …);
    /// sends to it return the recorded error.
    Halted,
    /// A panic escaped while the machine was running (typically from a
    /// foreign function); sends to it return
    /// [`RuntimeError::MachineQuarantined`].
    Quarantined,
}

impl MachineStatus {
    fn is_running(self) -> bool {
        matches!(self, MachineStatus::Running)
    }
}

/// Supervision metadata kept per machine instance.
///
/// Lives under its own mutex (`Inner::meta`), *not* under the
/// configuration lock: status checks, counters and queue-depth gauges
/// stay readable while a long atomic run holds the config. The
/// `queue_depth` field is a snapshot maintained by `drain` after every
/// enqueue and run, so introspection never touches the machine table.
#[derive(Default)]
struct MachineMeta {
    status: MachineStatus,
    delivered: u64,
    dropped: u64,
    queue_depth: usize,
    error: Option<p_semantics::PError>,
    fault: Option<String>,
}

/// Point-in-time snapshot of runtime counters (see [`Runtime::stats`]).
#[derive(Clone, Debug)]
pub struct RuntimeStats {
    /// Events accepted through `add_event` (successful enqueues).
    pub events_processed: u64,
    /// Atomic machine runs executed.
    pub runs_executed: u64,
    /// Events delivered into machine queues, summed over machines.
    pub delivered: u64,
    /// Events dropped before delivery (pump overflow policy), summed.
    pub dropped: u64,
    /// Machines currently quarantined after a panic.
    pub quarantined: usize,
    /// Machines halted by a P error transition.
    pub halted: usize,
    /// Per-machine breakdown, sorted by machine id.
    pub machines: Vec<MachineStats>,
}

/// Per-machine counters inside a [`RuntimeStats`] snapshot.
#[derive(Clone, Debug)]
pub struct MachineStats {
    /// The machine instance.
    pub machine: MachineId,
    /// Its supervision status.
    pub status: MachineStatus,
    /// Events delivered into its queue.
    pub delivered: u64,
    /// Events dropped before reaching its queue.
    pub dropped: u64,
    /// Events waiting in its queue when the snapshot was taken.
    pub queue_len: usize,
}

impl MachineStatus {
    /// Stable lowercase name used in JSON output.
    pub fn as_str(self) -> &'static str {
        match self {
            MachineStatus::Running => "running",
            MachineStatus::Halted => "halted",
            MachineStatus::Quarantined => "quarantined",
        }
    }
}

impl RuntimeStats {
    /// Serializes the snapshot as JSON (the `p run --stats` payload),
    /// including per-machine supervision status.
    pub fn to_json(&self) -> p_telemetry::json::JsonValue {
        use p_telemetry::json::{num, obj, str as jstr, JsonValue};
        let machines = JsonValue::Arr(
            self.machines
                .iter()
                .map(|m| {
                    obj(vec![
                        ("machine", num(f64::from(m.machine.0))),
                        ("status", jstr(m.status.as_str())),
                        ("delivered", num(m.delivered as f64)),
                        ("dropped", num(m.dropped as f64)),
                        ("queue_len", num(m.queue_len as f64)),
                    ])
                })
                .collect(),
        );
        obj(vec![
            ("events_processed", num(self.events_processed as f64)),
            ("runs_executed", num(self.runs_executed as f64)),
            ("delivered", num(self.delivered as f64)),
            ("dropped", num(self.dropped as f64)),
            ("quarantined", num(self.quarantined as f64)),
            ("halted", num(self.halted as f64)),
            ("machines", machines),
        ])
    }
}

struct Shared {
    config: Config,
    /// Causal work stack: machines with pending work, top last.
    work: Vec<MachineId>,
}

/// Renders a `catch_unwind` payload for the quarantine record.
fn panic_message(payload: Box<dyn Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

struct Inner {
    program: LoweredProgram,
    foreign: ForeignEnv,
    contexts: Arc<Mutex<ContextMap>>,
    shared: Mutex<Shared>,
    /// Supervision status and delivery counters, keyed by machine.
    /// Separate from `shared` so introspection (`queue_len`, `stats`,
    /// `machine_status`) never blocks behind a running drain. Lock
    /// order when both are held: `shared` before `meta`.
    meta: Mutex<HashMap<MachineId, MachineMeta>>,
    fuel: usize,
    events_processed: AtomicU64,
    runs_executed: AtomicU64,
    telemetry: Telemetry,
}

/// The P runtime: hosts machine instances of one erased program.
///
/// Cheap to clone (`Arc` inside); clones share the same instances.
///
/// # Examples
///
/// ```
/// let src = r#"
///     event inc;
///     machine Counter {
///         var n : int;
///         state Run {
///             on inc do bump;
///         }
///         action bump { n := n + 1; }
///     }
///     main Counter();
/// "#;
/// let program = p_parser::parse(src).unwrap();
/// let runtime = p_runtime::Runtime::builder(&program).unwrap().start();
/// let id = runtime
///     .create_machine("Counter", &[("n", p_semantics::Value::Int(0))])
///     .unwrap();
/// runtime.add_event(id, "inc", p_semantics::Value::Null).unwrap();
/// runtime.add_event(id, "inc", p_semantics::Value::Null).unwrap();
/// assert_eq!(runtime.read_var(id, "n").unwrap(), p_semantics::Value::Int(2));
/// ```
#[derive(Clone)]
pub struct Runtime {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for Runtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runtime")
            .field("machines", &self.inner.program.machines.len())
            .field(
                "events_processed",
                &self.inner.events_processed.load(Ordering::Relaxed),
            )
            .finish()
    }
}

impl Runtime {
    /// Checks `program`, erases its ghost parts (§3.3), lowers the result
    /// and returns a builder for registering foreign functions.
    ///
    /// # Errors
    ///
    /// Fails if the program is rejected by the static checker, has no
    /// real machines, or does not lower.
    pub fn builder(program: &Program) -> Result<RuntimeBuilder, RuntimeError> {
        p_typecheck::check(program)?;
        let erased = p_typecheck::erase(program)?;
        let lowered = lower(&erased)?;
        Ok(RuntimeBuilder {
            program: lowered,
            registry: ForeignRegistry::new(),
            contexts: Arc::new(Mutex::new(HashMap::new())),
            fuel: 1_000_000,
            telemetry: Telemetry::disabled(),
        })
    }

    /// Builds a runtime directly from an already-erased, lowered program.
    pub fn from_lowered(program: LoweredProgram) -> RuntimeBuilder {
        RuntimeBuilder {
            program,
            registry: ForeignRegistry::new(),
            contexts: Arc::new(Mutex::new(HashMap::new())),
            fuel: 1_000_000,
            telemetry: Telemetry::disabled(),
        }
    }

    /// The erased, lowered program this runtime executes.
    pub fn program(&self) -> &LoweredProgram {
        &self.inner.program
    }

    /// `SMCreateMachine`: creates an instance of machine type
    /// `type_name`, initializing the named variables, and runs it (and any
    /// machines it signals) to completion.
    ///
    /// # Errors
    ///
    /// Fails on unknown machine or variable names, or if processing takes
    /// an error transition.
    pub fn create_machine(
        &self,
        type_name: &str,
        inits: &[(&str, Value)],
    ) -> Result<MachineId, RuntimeError> {
        let program = &self.inner.program;
        let ty =
            program
                .machine_type_named(type_name)
                .ok_or_else(|| RuntimeError::UnknownName {
                    kind: "machine",
                    name: type_name.to_owned(),
                })?;
        let mt = program.machine(ty);
        let mut resolved = Vec::with_capacity(inits.len());
        for (name, value) in inits {
            let sym = program
                .interner
                .get(name)
                .and_then(|s| mt.var_named(s))
                .ok_or_else(|| RuntimeError::UnknownName {
                    kind: "variable",
                    name: (*name).to_owned(),
                })?;
            resolved.push((sym, *value));
        }

        let mut shared = self.inner.shared.lock();
        let id = shared.config.allocate(program, ty);
        let machine = shared.config.machine_mut(id).expect("just allocated");
        for (var, value) in resolved {
            machine.locals[var.0 as usize] = value;
        }
        self.inner.meta.lock().insert(id, MachineMeta::default());
        shared.work.push(id);
        self.drain(&mut shared)?;
        Ok(id)
    }

    /// `SMAddEvent`: enqueues `event` (with `payload`) into machine `id`
    /// and processes to completion on the calling thread.
    ///
    /// # Errors
    ///
    /// Fails on unknown event names, dead machines, or if processing
    /// takes an error transition. Sends to a quarantined machine return
    /// [`RuntimeError::MachineQuarantined`]; sends to a halted machine
    /// return the error that halted it. Neither disturbs other machines.
    pub fn add_event(
        &self,
        id: MachineId,
        event: &str,
        payload: Value,
    ) -> Result<(), RuntimeError> {
        let ev =
            self.inner
                .program
                .event_id_named(event)
                .ok_or_else(|| RuntimeError::UnknownName {
                    kind: "event",
                    name: event.to_owned(),
                })?;
        let mut shared = self.inner.shared.lock();
        {
            let meta = self.inner.meta.lock();
            match meta.get(&id).map(|m| m.status) {
                Some(MachineStatus::Quarantined) => {
                    return Err(RuntimeError::MachineQuarantined(id));
                }
                Some(MachineStatus::Halted) => {
                    let saved = meta
                        .get(&id)
                        .and_then(|m| m.error.clone())
                        .expect("halted machines record their error");
                    return Err(RuntimeError::Machine(saved));
                }
                _ => {}
            }
        }
        let machine = shared
            .config
            .machine_mut(id)
            .ok_or(RuntimeError::NoSuchMachine(id))?;
        machine.enqueue(ev, payload);
        let depth = machine.queue.len();
        self.inner.events_processed.fetch_add(1, Ordering::Relaxed);
        {
            let mut meta = self.inner.meta.lock();
            let m = meta.entry(id).or_default();
            m.delivered += 1;
            m.queue_depth = depth;
        }
        #[cfg(feature = "telemetry")]
        {
            let program = &self.inner.program;
            self.inner.telemetry.instant(id.0, "inject", || {
                vec![("event", program.event_name(ev).into())]
            });
        }
        shared.work.push(id);
        self.drain(&mut shared)?;
        Ok(())
    }

    /// Runs the causal work stack to quiescence. Called with the
    /// configuration lock held; this is the "run to completion on the
    /// calling thread" discipline of §4. Foreign functions must not call
    /// back into the runtime (the paper restricts them to their external
    /// memory for the same reason).
    ///
    /// Every machine run executes under `catch_unwind`: a panic (from a
    /// foreign function, or a defect in the engine itself) quarantines
    /// the offending machine and the drain keeps going, so one failure
    /// never poisons the shared configuration or stalls other machines.
    /// The first failure observed is reported to the caller after the
    /// stack is quiescent.
    fn drain(&self, shared: &mut Shared) -> Result<(), RuntimeError> {
        #[allow(unused_mut)]
        let mut engine =
            Engine::new(&self.inner.program, self.inner.foreign.clone()).with_fuel(self.inner.fuel);
        #[cfg(feature = "telemetry")]
        {
            // Extended run logs (raise/defer events) cost an allocation
            // per occurrence; only pay for them when tracing.
            engine = engine.with_event_log(self.inner.telemetry.enabled());
        }
        let Shared { config, work } = shared;
        let mut first_err: Option<RuntimeError> = None;
        while let Some(id) = work.pop() {
            if config.machine(id).is_none() || !engine.enabled(config, id) {
                continue;
            }
            if !self
                .inner
                .meta
                .lock()
                .entry(id)
                .or_default()
                .status
                .is_running()
            {
                continue;
            }
            #[cfg(feature = "telemetry")]
            {
                let program = &self.inner.program;
                let ty = config.machine(id).expect("checked live above").ty;
                self.inner.telemetry.span_begin(id.0, "run", || {
                    vec![("machine", program.machine_name(ty).into())]
                });
            }
            // Erased programs contain no `*`; the closure is never
            // called on checked inputs, and returning an arbitrary
            // value keeps the runtime total if one slips through.
            let mut no_choices = || false;
            // Panics and typed engine errors both quarantine the machine:
            // the run either aborted mid-way (panic) or was rejected up
            // front (typed error); neither may poison the configuration.
            let run = match catch_unwind(AssertUnwindSafe(|| {
                engine.run_machine(config, id, &mut no_choices, Granularity::Atomic)
            }))
            .map_err(panic_message)
            .and_then(|run| run.map_err(|e| e.to_string()))
            {
                Ok(run) => run,
                Err(message) => {
                    self.inner.runs_executed.fetch_add(1, Ordering::Relaxed);
                    {
                        let mut meta = self.inner.meta.lock();
                        let m = meta.entry(id).or_default();
                        m.status = MachineStatus::Quarantined;
                        m.fault = Some(message.clone());
                    }
                    #[cfg(feature = "telemetry")]
                    {
                        let reason = message.as_str();
                        self.inner
                            .telemetry
                            .instant(id.0, "quarantine", || vec![("reason", reason.into())]);
                        self.inner.telemetry.span_end(id.0, "run");
                        if let Some(metrics) = self.inner.telemetry.metrics() {
                            metrics.counter("runtime.quarantines").inc();
                        }
                    }
                    first_err.get_or_insert(RuntimeError::MachineQuarantined(id));
                    continue;
                }
            };
            self.inner.runs_executed.fetch_add(1, Ordering::Relaxed);
            #[cfg(feature = "telemetry")]
            self.trace_run(id, config, &run);
            // Refresh the queue-depth snapshots touched by this run (the
            // runner's own queue, and the receiver's on a send) so
            // `queue_len`/`stats` stay accurate without the config lock.
            {
                let mut meta = self.inner.meta.lock();
                if let Some(m) = config.machine(id) {
                    meta.entry(id).or_default().queue_depth = m.queue.len();
                }
                if let ExecOutcome::Yield(YieldKind::Sent { to, .. }) = run.outcome {
                    if let Some(t) = config.machine(to) {
                        meta.entry(to).or_default().queue_depth = t.queue.len();
                    }
                }
            }
            match run.outcome {
                ExecOutcome::Yield(YieldKind::Sent { to, .. }) => {
                    // Causal order: the receiver processes next, then
                    // the sender resumes.
                    work.push(id);
                    work.push(to);
                }
                ExecOutcome::Yield(YieldKind::Created { id: new_id, .. }) => {
                    self.inner.meta.lock().entry(new_id).or_default();
                    work.push(id);
                    work.push(new_id);
                }
                ExecOutcome::Yield(YieldKind::Internal) => {
                    work.push(id);
                }
                ExecOutcome::Blocked => {}
                ExecOutcome::Deleted => {
                    self.inner.meta.lock().remove(&id);
                    self.inner.contexts.lock().remove(&id);
                }
                ExecOutcome::Error(e) => {
                    {
                        let mut meta = self.inner.meta.lock();
                        let m = meta.entry(id).or_default();
                        m.status = MachineStatus::Halted;
                        m.error = Some(e.clone());
                    }
                    first_err.get_or_insert(RuntimeError::Machine(e));
                }
                ExecOutcome::NeedChoice => {
                    unreachable!("erased programs are deterministic")
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Attaches external memory to machine `id` (the per-machine `void*`
    /// of §4), replacing any previous context.
    pub fn set_context(&self, id: MachineId, context: Box<dyn Any + Send>) {
        self.inner.contexts.lock().insert(id, context);
    }

    /// `SMGetContext`: runs `f` over machine `id`'s external memory.
    ///
    /// Returns `None` if the machine has no context or it has a different
    /// type.
    pub fn with_context<T: Any + Send, R>(
        &self,
        id: MachineId,
        f: impl FnOnce(&mut T) -> R,
    ) -> Option<R> {
        let mut map = self.inner.contexts.lock();
        map.get_mut(&id)?.downcast_mut::<T>().map(f)
    }

    /// Reads a machine variable by name (introspection for tests and
    /// examples).
    pub fn read_var(&self, id: MachineId, name: &str) -> Option<Value> {
        let program = &self.inner.program;
        let shared = self.inner.shared.lock();
        let machine = shared.config.machine(id)?;
        let mt = program.machine(machine.ty);
        let var = program.interner.get(name).and_then(|s| mt.var_named(s))?;
        Some(machine.locals[var.0 as usize])
    }

    /// The source name of machine `id`'s current control state.
    pub fn current_state(&self, id: MachineId) -> Option<String> {
        let program = &self.inner.program;
        let shared = self.inner.shared.lock();
        let machine = shared.config.machine(id)?;
        Some(
            program
                .state_name(machine.ty, machine.current_state())
                .to_owned(),
        )
    }

    /// Whether machine `id` is alive.
    pub fn is_alive(&self, id: MachineId) -> bool {
        self.inner.shared.lock().config.machine(id).is_some()
    }

    /// Number of events delivered through [`Runtime::add_event`].
    pub fn events_processed(&self) -> u64 {
        self.inner.events_processed.load(Ordering::Relaxed)
    }

    /// Number of atomic machine runs executed.
    pub fn runs_executed(&self) -> u64 {
        self.inner.runs_executed.load(Ordering::Relaxed)
    }

    /// Queue length of machine `id` (introspection).
    ///
    /// Reads the depth snapshot maintained alongside the supervision
    /// metadata, so it never waits for the configuration lock (and thus
    /// never blocks behind an in-progress atomic run).
    pub fn queue_len(&self, id: MachineId) -> Option<usize> {
        self.inner.meta.lock().get(&id).map(|m| m.queue_depth)
    }

    /// Supervision status of machine `id`, or `None` if it was never
    /// created (deleted machines are forgotten; halted and quarantined
    /// ones are remembered).
    pub fn machine_status(&self, id: MachineId) -> Option<MachineStatus> {
        self.inner.meta.lock().get(&id).map(|m| m.status)
    }

    /// The panic message that quarantined machine `id`, if any.
    pub fn quarantine_reason(&self, id: MachineId) -> Option<String> {
        self.inner
            .meta
            .lock()
            .get(&id)
            .and_then(|m| m.fault.clone())
    }

    /// Snapshot of the runtime's supervision counters.
    ///
    /// Like [`Runtime::queue_len`], this reads only the metadata table —
    /// a stats poll during a long drain returns immediately instead of
    /// serializing behind the machine table.
    pub fn stats(&self) -> RuntimeStats {
        let meta = self.inner.meta.lock();
        let mut machines: Vec<MachineStats> = meta
            .iter()
            .map(|(id, m)| MachineStats {
                machine: *id,
                status: m.status,
                delivered: m.delivered,
                dropped: m.dropped,
                queue_len: m.queue_depth,
            })
            .collect();
        machines.sort_by_key(|m| m.machine.0);
        RuntimeStats {
            events_processed: self.inner.events_processed.load(Ordering::Relaxed),
            runs_executed: self.inner.runs_executed.load(Ordering::Relaxed),
            delivered: machines.iter().map(|m| m.delivered).sum(),
            dropped: machines.iter().map(|m| m.dropped).sum(),
            quarantined: machines
                .iter()
                .filter(|m| m.status == MachineStatus::Quarantined)
                .count(),
            halted: machines
                .iter()
                .filter(|m| m.status == MachineStatus::Halted)
                .count(),
            machines,
        }
    }

    /// Records an event dropped before delivery (pump overflow policy).
    pub(crate) fn note_dropped(&self, id: MachineId) {
        self.inner.meta.lock().entry(id).or_default().dropped += 1;
        #[cfg(feature = "telemetry")]
        {
            self.inner.telemetry.instant(id.0, "drop", Vec::new);
            if let Some(metrics) = self.inner.telemetry.metrics() {
                metrics.counter("runtime.events.dropped").inc();
            }
        }
    }

    /// The telemetry handle this runtime records through (disabled
    /// unless one was attached via [`RuntimeBuilder::telemetry`]).
    pub fn telemetry(&self) -> &Telemetry {
        &self.inner.telemetry
    }

    /// Emits the trace records for one completed atomic run: the
    /// machine's events in run order, the closing span, a queue-depth
    /// gauge, and the aggregate counters/histograms.
    #[cfg(feature = "telemetry")]
    fn trace_run(&self, id: MachineId, config: &Config, run: &p_semantics::RunResult) {
        let telemetry = &self.inner.telemetry;
        if !telemetry.enabled() {
            return;
        }
        let program = &self.inner.program;
        let tid = id.0;
        for &ev in &run.dequeued {
            telemetry.instant(tid, "dequeue", || {
                vec![("event", program.event_name(ev).into())]
            });
        }
        for &ev in &run.deferred {
            telemetry.instant(tid, "defer", || {
                vec![("event", program.event_name(ev).into())]
            });
        }
        for &ev in &run.raised {
            telemetry.instant(tid, "raise", || {
                vec![("event", program.event_name(ev).into())]
            });
        }
        match &run.outcome {
            ExecOutcome::Yield(YieldKind::Sent {
                to,
                event,
                enqueued,
            }) => {
                telemetry.instant(tid, "send", || {
                    vec![
                        ("event", program.event_name(*event).into()),
                        ("to", u64::from(to.0).into()),
                        ("enqueued", i64::from(*enqueued).into()),
                    ]
                });
            }
            ExecOutcome::Yield(YieldKind::Created { id: new_id, ty }) => {
                telemetry.instant(tid, "create", || {
                    vec![
                        ("machine", program.machine_name(*ty).into()),
                        ("id", u64::from(new_id.0).into()),
                    ]
                });
            }
            ExecOutcome::Error(e) => {
                let summary = e.to_string();
                telemetry.instant(tid, "halt", || vec![("error", summary.into())]);
            }
            _ => {}
        }
        telemetry.span_end(tid, "run");
        if let Some(m) = config.machine(id) {
            telemetry.gauge(tid, "queue_depth", m.queue.len() as i64);
        }
        if let Some(metrics) = telemetry.metrics() {
            metrics.counter("runtime.runs").inc();
            metrics
                .histogram("runtime.run.steps")
                .observe(run.steps as u64);
            metrics
                .counter("runtime.events.dequeued")
                .add(run.dequeued.len() as u64);
            metrics
                .counter("runtime.events.deferred")
                .add(run.deferred.len() as u64);
            metrics
                .counter("runtime.events.raised")
                .add(run.raised.len() as u64);
            match &run.outcome {
                ExecOutcome::Yield(YieldKind::Sent { .. }) => {
                    metrics.counter("runtime.events.sent").inc();
                }
                ExecOutcome::Yield(YieldKind::Created { .. }) => {
                    metrics.counter("runtime.machines.created").inc();
                }
                ExecOutcome::Error(_) => {
                    metrics.counter("runtime.halts").inc();
                }
                _ => {}
            }
            if let Some(m) = config.machine(id) {
                metrics
                    .gauge("runtime.queue.depth")
                    .set(m.queue.len() as u64);
            }
        }
    }
}
