//! Regression tests for checker fault injection: a program that is
//! correct without faults but breaks when the environment drops or
//! reorders one message must be caught at `--faults 1` and pass at
//! `--faults 0`, and fault traces must replay deterministically.

use p_core::checker::{FaultKind, ReplayOutcome};
use p_core::Compiled;

fn lossy_link() -> Compiled {
    Compiled::from_program(p_core::corpus::lossy_link()).unwrap()
}

#[test]
fn drop_sensitive_bug_found_at_budget_one_missed_at_zero() {
    let compiled = lossy_link();

    // Fault-free exploration covers every schedule and passes.
    let clean = compiled.verify_with_faults(0, &[]);
    assert!(clean.report.passed(), "{:?}", clean.report.counterexample);
    assert!(clean.report.complete, "fault-free exploration truncated");
    assert_eq!(clean.fault_transitions, 0);

    // Budget 1 exposes the lost configuration message.
    let faulty = compiled.verify_with_faults(1, &[FaultKind::Drop]);
    let cx = faulty
        .report
        .counterexample
        .as_ref()
        .expect("a single drop fault must break the handshake");
    assert!(
        cx.trace.iter().any(|s| s.fault.is_some()),
        "the counterexample must record the injected fault:\n{cx}"
    );
}

#[test]
fn fault_traces_replay_round_trip() {
    let compiled = lossy_link();
    for kinds in [
        vec![FaultKind::Drop],
        vec![FaultKind::Delay],
        vec![], // all kinds
    ] {
        let report = compiled.verify_with_faults(1, &kinds);
        let cx = report
            .report
            .counterexample
            .expect("one fault breaks the handshake");
        match compiled.verifier().replay(&cx) {
            ReplayOutcome::Reproduced(e) => assert_eq!(e, cx.error),
            other => panic!("fault trace must replay ({kinds:?}): {other:?}\n{cx}"),
        }
        // The last good state is reachable through the fault prefix.
        let last_good = compiled
            .verifier()
            .replay_to_last_good(&cx)
            .expect("fault prefix replays");
        assert!(last_good.live_ids().count() >= 1);
    }
}

#[test]
fn dup_tolerant_program_passes_dup_faults() {
    // lossy_link handles a re-delivered cfg (`on cfg do ignore`) and
    // counts duplicated data without asserting, so dup-only injection
    // finds nothing even with budget 2.
    let compiled = lossy_link();
    let report = compiled.verify_with_faults(2, &[FaultKind::Dup]);
    assert!(
        report.report.passed(),
        "dup faults are tolerated by design: {:?}",
        report.report.counterexample
    );
    assert!(report.fault_transitions > 0, "dup faults were explored");
}

#[test]
fn fault_budget_scales_exploration() {
    let compiled = lossy_link();
    let b0 = compiled.verify_with_faults(0, &[FaultKind::Dup]);
    let b1 = compiled.verify_with_faults(1, &[FaultKind::Dup]);
    let b2 = compiled.verify_with_faults(2, &[FaultKind::Dup]);
    assert!(b1.fault_nodes > b0.fault_nodes);
    assert!(b2.fault_nodes > b1.fault_nodes);
}

#[test]
fn correct_corpus_programs_pass_one_dropped_stimulus() {
    // Robustness sweep: losing a ping or a pong stalls the ping_pong
    // protocol but violates no safety property, so fault injection must
    // not raise a false alarm on it.
    let compiled = Compiled::from_source(p_core::corpus::PING_PONG_SRC).unwrap();
    let report = compiled.verify_with_faults(1, &[FaultKind::Drop]);
    assert!(
        report.report.passed(),
        "dropping one message must not violate ping_pong safety: {:?}",
        report.report.counterexample
    );
}
