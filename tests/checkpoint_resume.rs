//! Kill-and-resume consistency and memory-bounded exploration, end to
//! end through the `p verify` CLI.
//!
//! The abort points use `--abort-after N`, a deterministic stand-in for
//! `kill -9` that stops the run with a final checkpoint exactly the way
//! a signal does (same code path, same exit code 3). One test sends a
//! real SIGINT as well.
//!
//! What "identical" means per mode (established empirically; see
//! DESIGN.md §13): sequential runs are fully deterministic, so a resumed
//! run must match an uninterrupted one bit for bit — verdict, unique
//! states, transitions, max depth. Parallel runs without POR expand
//! every unique state exactly once, so their totals are also exact.
//! Parallel runs *with* POR explore a schedule-dependent transition
//! subset even uninterrupted; there the verdict and unique-state count
//! are the invariants.

use std::path::PathBuf;
use std::process::{Command, Output};

fn p_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_p"))
}

fn corpus_file(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../corpus/programs")
        .join(name)
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("p-ckpt-test-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn stdout(output: &Output) -> String {
    String::from_utf8_lossy(&output.stdout).into_owned()
}

fn stderr(output: &Output) -> String {
    String::from_utf8_lossy(&output.stderr).into_owned()
}

fn exit_code(output: &Output) -> i32 {
    output.status.code().unwrap_or(-1)
}

/// Runs `p verify FILE <args...>` and returns the output.
fn verify(file: &str, args: &[&str]) -> Output {
    let path = corpus_file(file);
    let mut cmd = p_bin();
    cmd.arg("verify").arg(&path).args(args);
    cmd.output().unwrap()
}

/// The `(unique_states, transitions, max_depth)` triple from the stats
/// line `N states, M transitions, depth D, ...`.
fn parse_stats(out: &Output) -> (u64, u64, u64) {
    let text = stdout(out);
    let line = text
        .lines()
        .find(|l| l.contains(" states, ") && l.contains(" transitions, "))
        .unwrap_or_else(|| panic!("no stats line in output:\n{text}"));
    let mut nums = line.split(|c: char| !c.is_ascii_digit()).filter_map(|w| {
        if w.is_empty() {
            None
        } else {
            w.parse::<u64>().ok()
        }
    });
    let states = nums.next().unwrap();
    let transitions = nums.next().unwrap();
    let depth = nums.next().unwrap();
    (states, transitions, depth)
}

/// Aborts a run mid-search, resumes it, and returns (uninterrupted
/// baseline, resumed) outputs after checking the abort leg.
fn abort_and_resume(file: &str, mode: &[&str], abort_after: &str, tag: &str) -> (Output, Output) {
    let dir = temp_dir(tag);
    let dir_s = dir.to_str().unwrap();

    let baseline = verify(file, mode);
    assert_eq!(exit_code(&baseline), 0, "{}", stderr(&baseline));

    let mut abort_args = mode.to_vec();
    abort_args.extend(["--checkpoint", dir_s, "--abort-after", abort_after]);
    let aborted = verify(file, &abort_args);
    assert_eq!(
        exit_code(&aborted),
        3,
        "abort leg should exit 3:\n{}{}",
        stdout(&aborted),
        stderr(&aborted)
    );
    assert!(stdout(&aborted).contains("INTERRUPTED"));
    assert!(dir.join("checkpoint.bin").is_file());

    let mut resume_args = mode.to_vec();
    resume_args.extend(["--resume", dir_s]);
    let resumed = verify(file, &resume_args);
    assert_eq!(
        exit_code(&resumed),
        0,
        "resume leg should pass:\n{}{}",
        stdout(&resumed),
        stderr(&resumed)
    );
    assert!(stdout(&resumed).contains("PASSED"));

    let _ = std::fs::remove_dir_all(&dir);
    (baseline, resumed)
}

#[test]
fn sequential_resume_is_bit_identical_across_modes() {
    let modes: [(&str, &[&str]); 4] = [
        ("plain", &[]),
        ("por", &["--por"]),
        ("symmetry", &["--symmetry"]),
        ("por-symmetry", &["--por", "--symmetry"]),
    ];
    for (tag, mode) in modes {
        let (baseline, resumed) =
            abort_and_resume("german3.p", mode, "4000", &format!("seq-{tag}"));
        assert_eq!(
            parse_stats(&baseline),
            parse_stats(&resumed),
            "sequential {tag}: resumed run must match uninterrupted bit for bit"
        );
    }
}

#[test]
fn parallel_resume_without_por_is_bit_identical() {
    let (baseline, resumed) = abort_and_resume("german4.p", &["--jobs", "4"], "12000", "par-plain");
    assert_eq!(
        parse_stats(&baseline),
        parse_stats(&resumed),
        "parallel without POR expands each unique state once; totals are exact"
    );
}

#[test]
fn parallel_resume_with_por_and_symmetry_matches_verdict_and_states() {
    let (baseline, resumed) = abort_and_resume(
        "german4.p",
        &["--jobs", "4", "--por", "--symmetry"],
        "12000",
        "par-por-sym",
    );
    let (base_states, _, _) = parse_stats(&baseline);
    let (resumed_states, _, _) = parse_stats(&resumed);
    assert_eq!(
        base_states, resumed_states,
        "unique states are schedule-independent even under POR"
    );
}

#[test]
fn resume_across_checkpoint_cadences_is_identical() {
    // A tight cadence exercises many checkpoint writes before the abort;
    // the resumed totals must not depend on how often snapshots landed.
    let dir = temp_dir("cadence");
    let dir_s = dir.to_str().unwrap();
    let baseline = verify("german3.p", &["--por", "--symmetry"]);
    let aborted = verify(
        "german3.p",
        &[
            "--por",
            "--symmetry",
            "--checkpoint",
            dir_s,
            "--checkpoint-every",
            "500",
            "--abort-after",
            "6000",
        ],
    );
    assert_eq!(exit_code(&aborted), 3, "{}", stderr(&aborted));
    let resumed = verify("german3.p", &["--por", "--symmetry", "--resume", dir_s]);
    assert_eq!(exit_code(&resumed), 0, "{}", stderr(&resumed));
    assert_eq!(parse_stats(&baseline), parse_stats(&resumed));
    let _ = std::fs::remove_dir_all(&dir);
}

/// A program whose only violation sits on the *last* DFS branch at
/// every choice point (counter `a` can never overflow, so the bug needs
/// all eight rounds routed to `b`, the else branch). Sequential DFS
/// visits ~900 states before finding it, so an abort at 400 reliably
/// lands first and the counterexample is discovered by the resumed run
/// — its trace reconstructed from parent records that partly predate
/// the checkpoint.
const DEEP_BUG: &str = r#"
event inc;
event unit;
machine Counter {
    var n : int;
    var limit : int;
    state Run { on inc do bump; }
    action bump { n := n + 1; assert(n < limit); }
}
ghost machine Env {
    var a : id;
    var b : id;
    var rounds : int;
    state Init {
        entry {
            a := new Counter(n = 0, limit = 99);
            b := new Counter(n = 0, limit = 8);
            raise(unit);
        }
        on unit goto Loop;
    }
    state Loop {
        entry {
            if (rounds > 0) {
                rounds := rounds - 1;
                if (*) { send(a, inc); } else { send(b, inc); }
                raise(unit);
            } else {
                a := null;
                b := null;
            }
        }
        on unit goto Loop;
    }
}
main Env(rounds = 8);
"#;

#[test]
fn violation_found_after_resume_is_replayable() {
    let program = std::env::temp_dir().join(format!("p-ckpt-deep-bug-{}.p", std::process::id()));
    std::fs::write(&program, DEEP_BUG).unwrap();
    let program_s = program.to_str().unwrap();
    let dir = temp_dir("violation");
    let dir_s = dir.to_str().unwrap();

    let baseline = p_bin().args(["verify", program_s]).output().unwrap();
    assert_eq!(exit_code(&baseline), 1, "{}", stdout(&baseline));

    let aborted = p_bin()
        .args([
            "verify",
            program_s,
            "--checkpoint",
            dir_s,
            "--abort-after",
            "400",
        ])
        .output()
        .unwrap();
    assert_eq!(
        exit_code(&aborted),
        3,
        "abort must land before the violation:\n{}",
        stdout(&aborted)
    );

    let resumed = p_bin()
        .args(["verify", program_s, "--resume", dir_s])
        .output()
        .unwrap();
    assert_eq!(exit_code(&resumed), 1, "{}", stdout(&resumed));
    let text = stdout(&resumed);
    assert!(text.contains("FAILED"), "{text}");
    assert!(text.contains("replay: reproduced"), "{text}");
    assert_eq!(
        parse_stats(&baseline),
        parse_stats(&resumed),
        "the resumed run reaches the violation through the same search"
    );

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_file(&program);
}

#[test]
fn stale_checkpoint_is_rejected() {
    let dir = temp_dir("stale");
    let dir_s = dir.to_str().unwrap();
    let aborted = verify(
        "german3.p",
        &["--por", "--checkpoint", dir_s, "--abort-after", "2000"],
    );
    assert_eq!(exit_code(&aborted), 3, "{}", stderr(&aborted));

    // Different reduction flags change the search; resuming under them
    // must be refused, not silently produce a hybrid run.
    let wrong_flags = verify("german3.p", &["--resume", dir_s]);
    assert_eq!(exit_code(&wrong_flags), 2);
    assert!(stderr(&wrong_flags).contains("stale checkpoint"));

    // So must a different program.
    let wrong_program = verify("german4.p", &["--por", "--resume", dir_s]);
    assert_eq!(exit_code(&wrong_program), 2);
    assert!(stderr(&wrong_program).contains("stale checkpoint"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_checkpoint_is_rejected() {
    let dir = temp_dir("corrupt");
    let dir_s = dir.to_str().unwrap();
    let aborted = verify(
        "german3.p",
        &["--checkpoint", dir_s, "--abort-after", "2000"],
    );
    assert_eq!(exit_code(&aborted), 3, "{}", stderr(&aborted));

    // Flip one payload byte: the checksum must catch it.
    let file = dir.join("checkpoint.bin");
    let mut bytes = std::fs::read(&file).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    std::fs::write(&file, &bytes).unwrap();
    let resumed = verify("german3.p", &["--resume", dir_s]);
    assert_eq!(exit_code(&resumed), 2, "{}", stdout(&resumed));
    assert!(stderr(&resumed).contains("checkpoint"));

    // Truncate it: a short read is a format error, not a panic.
    std::fs::write(&file, &bytes[..32.min(bytes.len())]).unwrap();
    let truncated = verify("german3.p", &["--resume", dir_s]);
    assert_eq!(exit_code(&truncated), 2, "{}", stdout(&truncated));
    assert!(stderr(&truncated).contains("checkpoint"));

    // A missing directory is an I/O error with the path in the message.
    let _ = std::fs::remove_dir_all(&dir);
    let missing = verify("german3.p", &["--resume", dir_s]);
    assert_eq!(exit_code(&missing), 2);
}

#[test]
fn mem_limit_spills_and_matches_unbounded_run() {
    let baseline = verify("german3.p", &["--por", "--symmetry"]);
    assert_eq!(exit_code(&baseline), 0, "{}", stderr(&baseline));

    // Hash-consed slots retain ~0.11 MiB unbounded; 256k pins the hot
    // budget at its 64 KiB floor, which forces the visited tier onto disk.
    let bounded = verify("german3.p", &["--por", "--symmetry", "--mem-limit", "256k"]);
    assert_eq!(exit_code(&bounded), 0, "{}", stderr(&bounded));
    let text = stdout(&bounded);
    assert!(text.contains("spilled"), "no spill under 256 KiB?\n{text}");
    assert!(text.contains("PASSED"));
    assert_eq!(
        parse_stats(&baseline),
        parse_stats(&bounded),
        "spilling must not change what gets explored"
    );
}

#[test]
fn mem_limit_spills_in_parallel_too() {
    let baseline = verify("german3.p", &["--jobs", "4"]);
    let bounded = verify("german3.p", &["--jobs", "4", "--mem-limit", "256k"]);
    assert_eq!(exit_code(&bounded), 0, "{}", stderr(&bounded));
    assert!(stdout(&bounded).contains("spilled"));
    assert_eq!(parse_stats(&baseline), parse_stats(&bounded));
}

#[test]
fn checkpoint_resume_composes_with_mem_limit() {
    let dir = temp_dir("ckpt-mem");
    let dir_s = dir.to_str().unwrap();
    let baseline = verify("german3.p", &["--por", "--symmetry"]);
    let aborted = verify(
        "german3.p",
        &[
            "--por",
            "--symmetry",
            "--mem-limit",
            "256k",
            "--checkpoint",
            dir_s,
            "--abort-after",
            "5000",
        ],
    );
    assert_eq!(exit_code(&aborted), 3, "{}", stderr(&aborted));
    // The checkpoint is self-contained: resume without a limit too.
    let resumed = verify(
        "german3.p",
        &[
            "--por",
            "--symmetry",
            "--mem-limit",
            "256k",
            "--resume",
            dir_s,
        ],
    );
    assert_eq!(exit_code(&resumed), 0, "{}", stderr(&resumed));
    assert_eq!(parse_stats(&baseline), parse_stats(&resumed));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn flag_validation_rejects_bad_combinations() {
    let every_alone = verify("german3.p", &["--checkpoint-every", "100"]);
    assert_eq!(exit_code(&every_alone), 2);
    assert!(stderr(&every_alone).contains("--checkpoint-every needs --checkpoint"));

    let abort_alone = verify("german3.p", &["--abort-after", "100"]);
    assert_eq!(exit_code(&abort_alone), 2);
    assert!(stderr(&abort_alone).contains("--abort-after needs --checkpoint"));

    let with_delay = verify("german3.p", &["--delay", "1", "--mem-limit", "1m"]);
    assert_eq!(exit_code(&with_delay), 2);
    assert!(stderr(&with_delay).contains("exhaustive search only"));

    let bad_limit = verify("german3.p", &["--mem-limit", "lots"]);
    assert_eq!(exit_code(&bad_limit), 2);
    assert!(stderr(&bad_limit).contains("not a byte count"));

    let zero_limit = verify("german3.p", &["--mem-limit", "0"]);
    assert_eq!(exit_code(&zero_limit), 2);
}

#[cfg(unix)]
#[test]
fn sigint_writes_a_loadable_checkpoint() {
    use std::io::Read as _;

    let dir = temp_dir("sigint");
    let dir_s = dir.to_str().unwrap();
    let path = corpus_file("german4.p");
    let mut child = p_bin()
        .arg("verify")
        .arg(&path)
        .args(["--checkpoint", dir_s])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .unwrap();
    // Give the search time to start, then interrupt it.
    std::thread::sleep(std::time::Duration::from_millis(400));
    let _ = Command::new("kill")
        .args(["-INT", &child.id().to_string()])
        .status()
        .unwrap();
    let status = child.wait().unwrap();
    let mut out = String::new();
    child
        .stdout
        .take()
        .unwrap()
        .read_to_string(&mut out)
        .unwrap();

    match status.code() {
        // Interrupted mid-search: the final checkpoint must exist and
        // load cleanly (the resume leg aborts immediately after loading
        // rather than replaying the whole search).
        Some(3) => {
            assert!(out.contains("INTERRUPTED"), "{out}");
            assert!(dir.join("checkpoint.bin").is_file());
            let probe = verify("german4.p", &["--resume", dir_s, "--abort-after", "1"]);
            assert_eq!(exit_code(&probe), 3, "{}", stderr(&probe));
        }
        // The search won the race and finished first — legitimate on a
        // fast machine; the abort-based tests cover the resume logic.
        Some(0) => assert!(out.contains("PASSED"), "{out}"),
        other => panic!("unexpected exit {other:?}:\n{out}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}
