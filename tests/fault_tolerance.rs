//! Fault-tolerance tests of the execution runtime: a panicking machine
//! is quarantined while the rest of the runtime keeps running, and the
//! shared state survives concurrent failures without lock poisoning.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use p_core::runtime::{EventPump, Injection, OverflowPolicy, RetryPolicy, RuntimeError};
use p_core::runtime::{MachineStatus, Runtime};
use p_core::Value;

/// Two machine types: `Fragile` calls a foreign function that panics on
/// demand, `Steady` just counts.
const MIXED: &str = r#"
    event tick;
    event poke;
    machine Steady {
        var n : int;
        state Run { on tick do bump; }
        action bump { n := n + 1; }
    }
    machine Fragile {
        var m : int;
        foreign fn risky() : int;
        state Run { on poke do hit; }
        action hit { m := m + risky(); }
    }
    main Steady();
"#;

fn mixed_runtime(blow_up: Arc<AtomicBool>) -> Runtime {
    let program = p_core::parser::parse(MIXED).unwrap();
    let mut builder = Runtime::builder(&program).unwrap();
    builder.foreign("risky", move |_args| {
        if blow_up.load(Ordering::SeqCst) {
            panic!("simulated foreign-function crash");
        }
        Value::Int(1)
    });
    builder.start()
}

#[test]
fn panicking_machine_is_quarantined_others_keep_processing() {
    let blow_up = Arc::new(AtomicBool::new(false));
    let runtime = mixed_runtime(blow_up.clone());
    let steady = runtime
        .create_machine("Steady", &[("n", Value::Int(0))])
        .unwrap();
    let fragile = runtime
        .create_machine("Fragile", &[("m", Value::Int(0))])
        .unwrap();

    // Both machines work while the foreign function behaves.
    runtime.add_event(fragile, "poke", Value::Null).unwrap();
    assert_eq!(runtime.read_var(fragile, "m"), Some(Value::Int(1)));

    // The panic quarantines only the offending machine.
    blow_up.store(true, Ordering::SeqCst);
    match runtime.add_event(fragile, "poke", Value::Null) {
        Err(RuntimeError::MachineQuarantined(id)) => assert_eq!(id, fragile),
        other => panic!("expected quarantine, got {other:?}"),
    }
    assert_eq!(
        runtime.machine_status(fragile),
        Some(MachineStatus::Quarantined)
    );
    assert!(runtime
        .quarantine_reason(fragile)
        .unwrap()
        .contains("simulated foreign-function crash"));

    // Sends to the quarantined machine return a typed error…
    match runtime.add_event(fragile, "poke", Value::Null) {
        Err(RuntimeError::MachineQuarantined(_)) => {}
        other => panic!("expected MachineQuarantined, got {other:?}"),
    }

    // …and the other machine processes ≥100 events afterwards.
    for _ in 0..150 {
        runtime.add_event(steady, "tick", Value::Null).unwrap();
    }
    assert_eq!(runtime.read_var(steady, "n"), Some(Value::Int(150)));
    assert_eq!(runtime.machine_status(steady), Some(MachineStatus::Running));

    let stats = runtime.stats();
    assert_eq!(stats.quarantined, 1);
    let row = stats.machines.iter().find(|m| m.machine == steady).unwrap();
    assert!(row.delivered >= 150);
}

#[test]
fn concurrent_producers_survive_a_mid_stream_failure() {
    // N producer threads race a machine that starts failing mid-stream;
    // the runtime's lock must not poison, and other machines stay usable.
    let src = r#"
        event tick;
        event boom;
        machine Steady {
            var n : int;
            state Run { on tick do bump; }
            action bump { n := n + 1; }
        }
        machine Doomed {
            state Run { on boom goto Bad; }
            state Bad { entry { assert(false); } }
        }
        main Steady();
    "#;
    let program = p_core::parser::parse(src).unwrap();
    let runtime = Runtime::builder(&program).unwrap().start();
    let steady = runtime
        .create_machine("Steady", &[("n", Value::Int(0))])
        .unwrap();
    let doomed = runtime.create_machine("Doomed", &[]).unwrap();

    let threads: Vec<_> = (0..4)
        .map(|t| {
            let rt = runtime.clone();
            std::thread::spawn(move || {
                for i in 0..100 {
                    if t == 0 && i == 50 {
                        // The machine asserts false on the first boom and
                        // is halted; later sends report the saved error.
                        let _ = rt.add_event(doomed, "boom", Value::Null);
                    }
                    rt.add_event(steady, "tick", Value::Null).unwrap();
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }

    assert_eq!(runtime.read_var(steady, "n"), Some(Value::Int(400)));
    assert_eq!(runtime.machine_status(doomed), Some(MachineStatus::Halted));
    match runtime.add_event(doomed, "boom", Value::Null) {
        Err(RuntimeError::Machine(e)) => {
            assert_eq!(e.kind, p_core::semantics::ErrorKind::AssertionFailure);
        }
        other => panic!("expected the saved machine error, got {other:?}"),
    }
    // The steady machine still works after everything.
    runtime.add_event(steady, "tick", Value::Null).unwrap();
    assert_eq!(runtime.read_var(steady, "n"), Some(Value::Int(401)));
}

#[test]
fn pump_keeps_draining_around_a_quarantined_target() {
    // Injections to a quarantined machine fail inside the pump worker,
    // but the worker survives and keeps delivering to healthy machines.
    let blow_up = Arc::new(AtomicBool::new(true));
    let runtime = mixed_runtime(blow_up);
    let steady = runtime
        .create_machine("Steady", &[("n", Value::Int(0))])
        .unwrap();
    let fragile = runtime
        .create_machine("Fragile", &[("m", Value::Int(0))])
        .unwrap();

    let pump = EventPump::builder(runtime.clone())
        .capacity(32)
        .overflow(OverflowPolicy::Block)
        .start();
    pump.inject(Injection {
        target: fragile,
        event: "poke".into(),
        payload: Value::Null,
    })
    .unwrap();
    for _ in 0..100 {
        pump.inject(Injection {
            target: steady,
            event: "tick".into(),
            payload: Value::Null,
        })
        .unwrap();
    }
    // Shutdown surfaces the first worker-observed error but has still
    // delivered everything else.
    let result = pump.shutdown();
    assert!(matches!(result, Err(RuntimeError::MachineQuarantined(_))));
    assert_eq!(runtime.read_var(steady, "n"), Some(Value::Int(100)));
    assert_eq!(
        runtime.machine_status(fragile),
        Some(MachineStatus::Quarantined)
    );
}

#[test]
fn retry_policy_is_usable_from_the_facade() {
    let policy = RetryPolicy::default();
    assert!(policy.max_attempts >= 1);
    assert!(policy.delay_for(2) >= policy.delay_for(0));
}
