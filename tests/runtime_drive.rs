//! Driving erased corpus programs under the execution runtime — the "it
//! actually runs as a driver" half of the paper, exercised end to end.

use p_core::{corpus, Runtime, Value};

#[test]
fn german_protocol_runs_for_real() {
    // Home and the two clients are all real machines; only the Env ghost
    // is erased. The interface code (this test) plays the environment.
    let program = corpus::german();
    let runtime = Runtime::builder(&program).unwrap().start();

    let home = runtime
        .create_machine(
            "Home",
            &[
                ("s1v", Value::Bool(false)),
                ("s2v", Value::Bool(false)),
                ("sharers", Value::Int(0)),
                ("exclHeld", Value::Bool(false)),
                ("pendingInv", Value::Int(0)),
            ],
        )
        .unwrap();
    let c1 = runtime
        .create_machine("Client", &[("home", Value::Machine(home))])
        .unwrap();
    let c2 = runtime
        .create_machine("Client", &[("home", Value::Machine(home))])
        .unwrap();

    // c1 takes the line shared; c2 joins.
    runtime.add_event(c1, "DoShared", Value::Null).unwrap();
    assert_eq!(runtime.current_state(c1).as_deref(), Some("SharedState"));
    runtime.add_event(c2, "DoShared", Value::Null).unwrap();
    assert_eq!(runtime.current_state(c2).as_deref(), Some("SharedState"));
    assert_eq!(runtime.read_var(home, "sharers"), Some(Value::Int(2)));

    // c1 upgrades to exclusive: both sharers are invalidated.
    runtime.add_event(c1, "DoExcl", Value::Null).unwrap();
    assert_eq!(runtime.current_state(c1).as_deref(), Some("ExclusiveState"));
    assert_eq!(runtime.current_state(c2).as_deref(), Some("Invalid"));
    assert_eq!(runtime.read_var(home, "sharers"), Some(Value::Int(0)));
    assert_eq!(runtime.read_var(home, "exclHeld"), Some(Value::Bool(true)));

    // c2 reads: the owner is downgraded.
    runtime.add_event(c2, "DoShared", Value::Null).unwrap();
    assert_eq!(runtime.current_state(c2).as_deref(), Some("SharedState"));
    assert_eq!(runtime.read_var(home, "exclHeld"), Some(Value::Bool(false)));
    assert_eq!(runtime.read_var(home, "sharers"), Some(Value::Int(1)));
}

#[test]
fn usb_device_happy_path_runs() {
    let program = corpus::usb_dsm();
    let runtime = Runtime::builder(&program).unwrap().start();
    let dev = runtime.create_machine("DeviceSm", &[]).unwrap();

    let steps: &[(&str, Value, &str)] = &[
        ("Attach", Value::Null, "Attached"),
        ("PowerOn", Value::Null, "Powered"),
        ("BusReset", Value::Null, "DefaultState"),
        ("SetAddress", Value::Int(5), "AddressState"),
        ("GetDescriptor", Value::Null, "AddressState"),
        ("SetConfiguration", Value::Int(1), "Configured"),
        ("DataRequest", Value::Null, "Configured"),
        ("Suspend", Value::Null, "Suspended"),
        ("Resume", Value::Null, "Configured"),
        ("BusReset", Value::Null, "DefaultState"),
        ("Detach", Value::Null, "Detached"),
    ];
    for (event, payload, expected_state) in steps {
        runtime.add_event(dev, event, *payload).unwrap();
        assert_eq!(
            runtime.current_state(dev).as_deref(),
            Some(*expected_state),
            "after {event}"
        );
    }
    assert_eq!(runtime.read_var(dev, "addr"), Some(Value::Int(0))); // reset by BusReset
}

#[test]
fn elevator_reacts_to_button_presses() {
    let program = corpus::elevator();
    let runtime = Runtime::builder(&program).unwrap().start();
    let lift = runtime.create_machine("Elevator", &[]).unwrap();
    assert_eq!(runtime.current_state(lift).as_deref(), Some("Closed"));

    runtime.add_event(lift, "OpenDoor", Value::Null).unwrap();
    assert_eq!(runtime.current_state(lift).as_deref(), Some("Opening"));

    // The door hardware (interface code here) reports the door opened.
    runtime.add_event(lift, "DoorOpened", Value::Null).unwrap();
    assert_eq!(runtime.current_state(lift).as_deref(), Some("Opened"));

    // Dwell timer fires; the elevator is ready to close.
    runtime.add_event(lift, "TimerFired", Value::Null).unwrap();
    assert_eq!(runtime.current_state(lift).as_deref(), Some("OkToClose"));

    // Second fire auto-closes; door reports closed.
    runtime.add_event(lift, "TimerFired", Value::Null).unwrap();
    assert_eq!(runtime.current_state(lift).as_deref(), Some("Closing"));
    runtime.add_event(lift, "DoorClosed", Value::Null).unwrap();
    assert_eq!(runtime.current_state(lift).as_deref(), Some("Closed"));
}

#[test]
fn elevator_call_transition_subroutine_via_runtime() {
    // Pressing OpenDoor while Opened enters the StoppingTimer subroutine
    // (a call transition); the timer hardware's answer pops it back.
    let program = corpus::elevator();
    let runtime = Runtime::builder(&program).unwrap().start();
    let lift = runtime.create_machine("Elevator", &[]).unwrap();
    runtime.add_event(lift, "OpenDoor", Value::Null).unwrap();
    runtime.add_event(lift, "DoorOpened", Value::Null).unwrap();
    assert_eq!(runtime.current_state(lift).as_deref(), Some("Opened"));

    runtime.add_event(lift, "OpenDoor", Value::Null).unwrap();
    assert_eq!(
        runtime.current_state(lift).as_deref(),
        Some("StoppingTimer"),
        "call transition pushed the subroutine"
    );
    runtime
        .add_event(lift, "TimerStopped", Value::Null)
        .unwrap();
    assert_eq!(
        runtime.current_state(lift).as_deref(),
        Some("Opened"),
        "StopTimerReturned popped back to the caller"
    );
}

#[test]
fn switch_led_driver_full_power_cycle() {
    let program = corpus::switch_led();
    let runtime = Runtime::builder(&program).unwrap().start();
    let drv = runtime.create_machine("Driver", &[]).unwrap();
    assert_eq!(runtime.current_state(drv).as_deref(), Some("PoweredOff"));

    runtime
        .add_event(drv, "DevicePowerUp", Value::Null)
        .unwrap();
    runtime
        .add_event(drv, "SwitchStateChange", Value::Int(1))
        .unwrap();
    assert_eq!(runtime.current_state(drv).as_deref(), Some("Idle"));
    assert_eq!(runtime.read_var(drv, "switchState"), Some(Value::Int(1)));

    // A failed transfer is retried once, then completes.
    runtime
        .add_event(drv, "IoctlSetLed", Value::Int(1))
        .unwrap();
    runtime
        .add_event(drv, "TransferFailed", Value::Null)
        .unwrap();
    assert_eq!(runtime.current_state(drv).as_deref(), Some("Transferring"));
    runtime
        .add_event(drv, "TransferComplete", Value::Null)
        .unwrap();
    assert_eq!(runtime.read_var(drv, "ledState"), Some(Value::Int(1)));

    // Two failures exhaust the retry budget and fail the request.
    runtime
        .add_event(drv, "IoctlSetLed", Value::Int(0))
        .unwrap();
    runtime
        .add_event(drv, "TransferFailed", Value::Null)
        .unwrap();
    runtime
        .add_event(drv, "TransferFailed", Value::Null)
        .unwrap();
    assert_eq!(runtime.current_state(drv).as_deref(), Some("Idle"));
    assert_eq!(
        runtime.read_var(drv, "ledState"),
        Some(Value::Int(1)),
        "failed request leaves the LED unchanged"
    );

    runtime
        .add_event(drv, "DevicePowerDown", Value::Null)
        .unwrap();
    runtime
        .add_event(drv, "SwitchDisarmed", Value::Null)
        .unwrap();
    assert_eq!(runtime.current_state(drv).as_deref(), Some("PoweredOff"));
}
