//! Integration checks of the parallel exploration engine: for every
//! corpus program, `jobs = 1` and `jobs = N` must agree on the verdict,
//! the retained-state count, and (for buggy programs) produce a
//! counterexample that replays — the checker's answer is a function of
//! the program, not of the worker count.

use p_core::{corpus, CheckerOptions, Compiled};

/// Every corpus program, compiled (their committed budgets keep full
/// exhaustive verification fast enough for CI).
fn verification_corpus() -> Vec<(&'static str, Compiled)> {
    corpus::all()
        .into_iter()
        .map(|(name, program)| {
            (
                name,
                Compiled::from_program(program).expect("corpus program compiles"),
            )
        })
        .collect()
}

#[test]
fn corpus_agrees_across_job_counts() {
    for (name, compiled) in verification_corpus() {
        let sequential = compiled.verify();
        for jobs in [2, 4] {
            let parallel = compiled.verify_parallel(jobs);
            assert_eq!(
                sequential.passed(),
                parallel.passed(),
                "{name}: verdict diverged at jobs={jobs}"
            );
            assert_eq!(
                sequential.complete, parallel.complete,
                "{name}: completeness diverged at jobs={jobs}"
            );
            if sequential.complete {
                assert_eq!(
                    sequential.stats.unique_states, parallel.stats.unique_states,
                    "{name}: state count diverged at jobs={jobs}"
                );
                assert_eq!(
                    sequential.stats.transitions, parallel.stats.transitions,
                    "{name}: transition count diverged at jobs={jobs}"
                );
            }
        }
    }
}

#[test]
fn buggy_benchmarks_fail_in_parallel_with_replayable_traces() {
    for (name, _correct, buggy) in corpus::figure7_benchmarks() {
        let compiled = Compiled::from_program(buggy).expect("buggy corpus program compiles");
        let report = compiled.verify_parallel(4);
        let cx = report
            .counterexample
            .unwrap_or_else(|| panic!("{name}: seeded bug must be found in parallel"));
        assert!(
            compiled.verifier().replay(&cx).reproduced(),
            "{name}: parallel counterexample must replay deterministically"
        );
    }
}

#[test]
fn parallel_state_bound_is_respected() {
    let compiled = Compiled::from_program(corpus::german3()).unwrap();
    let options = CheckerOptions {
        max_states: 200,
        jobs: 4,
        ..CheckerOptions::default()
    };
    let report = compiled.verifier().with_options(options).check_exhaustive();
    assert!(report.stats.truncated);
    assert!(!report.complete);
    assert!(
        report.stats.unique_states <= 200,
        "retained {} states past the bound",
        report.stats.unique_states
    );
}

/// A buggy program whose exploration is a single chain (the frontier
/// never holds more than one configuration): the driver's entry run is
/// the only choice at depth 0, and afterwards only the chain machine is
/// enabled, consuming one queued event per atomic run until the assert
/// trips. Because no interleaving choice exists, every worker count must
/// explore exactly the same prefix before aborting on the
/// counterexample — so the final counters must agree *exactly*, even
/// though the parallel engine stops mid-flight. This pins the
/// worker-local counter flush: totals are built from flushed deltas, and
/// an abort path that skipped a flush would undercount (or a re-merge
/// would double-count).
const SINGLE_CHAIN_BUGGY_SRC: &str = r#"
    event step;
    machine Chain {
        var n : int;
        state Run { on step do bump; }
        action bump {
            n := n + 1;
            assert(n < 6);
        }
    }
    ghost machine Driver {
        var c : id;
        state Init {
            entry {
                c := new Chain();
                send(c, step);
                send(c, step);
                send(c, step);
                send(c, step);
                send(c, step);
                send(c, step);
            }
        }
    }
    main Driver();
"#;

#[test]
fn aborted_search_counters_match_sequential_exactly() {
    let compiled = Compiled::from_source(SINGLE_CHAIN_BUGGY_SRC).unwrap();
    let sequential = compiled.verify();
    assert!(
        !sequential.passed(),
        "the chain must trip its assert at n = 6"
    );
    for jobs in [2, 4] {
        let parallel = compiled.verify_parallel(jobs);
        assert!(!parallel.passed(), "jobs={jobs}: verdict diverged");
        assert_eq!(
            sequential.stats.unique_states, parallel.stats.unique_states,
            "jobs={jobs}: unique_states diverged on the aborted run"
        );
        assert_eq!(
            sequential.stats.transitions, parallel.stats.transitions,
            "jobs={jobs}: transitions diverged on the aborted run"
        );
        assert_eq!(
            sequential.stats.dedup_hits, parallel.stats.dedup_hits,
            "jobs={jobs}: dedup_hits diverged on the aborted run"
        );
        assert_eq!(
            sequential.stats.max_depth, parallel.stats.max_depth,
            "jobs={jobs}: max_depth diverged on the aborted run"
        );
    }
}

#[test]
fn jobs_one_through_options_matches_plain_verify() {
    let compiled = Compiled::from_program(corpus::ping_pong()).unwrap();
    let plain = compiled.verify();
    let one = compiled.verify_parallel(1);
    assert_eq!(plain.passed(), one.passed());
    assert_eq!(plain.stats.unique_states, one.stats.unique_states);
    assert_eq!(plain.stats.transitions, one.stats.transitions);
}
