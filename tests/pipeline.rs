//! Cross-crate integration: the full pipeline — parse, check, verify,
//! erase, lower, generate C — over the complete benchmark corpus.

use p_core::{corpus, Compiled};

#[test]
fn every_corpus_program_flows_through_the_whole_pipeline() {
    for (name, program) in corpus::all() {
        let compiled = Compiled::from_program(program)
            .unwrap_or_else(|e| panic!("{name} failed to compile: {e}"));

        // Checker warnings would indicate sloppy corpus programs.
        assert!(
            compiled.warnings().is_empty(),
            "{name} has warnings: {:?}",
            compiled.warnings()
        );

        // The delay-0 causal schedule must be clean for all of them.
        let d0 = compiled.verify_delay_bounded(0);
        assert!(
            d0.report.passed(),
            "{name} fails at delay bound 0: {:?}",
            d0.report.counterexample
        );

        // Erasure must produce a valid program that lowers and generates.
        let erased = p_core::typecheck::erase(compiled.program())
            .unwrap_or_else(|e| panic!("{name} failed to erase: {e}"));
        p_core::typecheck::check(&erased)
            .unwrap_or_else(|e| panic!("{name} erased program fails checks: {e}"));
        p_core::semantics::lower(&erased)
            .unwrap_or_else(|e| panic!("{name} erased program fails lowering: {e}"));
        let c = compiled
            .emit_c()
            .unwrap_or_else(|e| panic!("{name} failed codegen: {e}"));
        assert!(
            c.stats.lines > 100,
            "{name} generated suspiciously little C"
        );
    }
}

#[test]
fn erased_programs_have_no_ghosts() {
    for (name, program) in corpus::all() {
        let erased = p_core::typecheck::erase(&program).unwrap();
        assert_eq!(
            erased.ghost_machines().count(),
            0,
            "{name} kept ghost machines"
        );
        for m in &erased.machines {
            assert!(
                m.vars.iter().all(|v| !v.ghost),
                "{name} kept ghost variables"
            );
        }
    }
}

#[test]
fn compiled_program_reports_paper_scale_shapes() {
    // The switch-LED example of §4.1: "The P code is about 150 lines with
    // one driver machine and four ghost machines. The driver machine has
    // 15 states and 23 transitions."
    let p = corpus::switch_led();
    assert_eq!(p.real_machines().count(), 1);
    assert_eq!(p.ghost_machines().count(), 4);
    let driver = p.machine_named("Driver").unwrap();
    assert!((12..=16).contains(&driver.states.len()));
    assert!((20..=40).contains(&driver.transition_count()));
}

#[test]
fn verifier_statistics_are_populated() {
    let compiled = Compiled::from_program(corpus::ping_pong()).unwrap();
    let report = compiled.verify();
    assert!(report.passed());
    assert!(report.complete);
    assert!(report.stats.unique_states > 0);
    assert!(report.stats.transitions >= report.stats.unique_states - 1);
    assert!(report.stats.stored_bytes > 0);
    assert!(report.stats.max_depth > 0);
}

#[test]
fn exhaustive_and_random_agree_on_corpus_verdicts() {
    for (name, program) in [
        ("elevator", corpus::elevator()),
        ("german", corpus::german()),
    ] {
        let compiled = Compiled::from_program(program).unwrap();
        let random = compiled.verifier().check_random(7, 50, 200);
        assert!(
            random.passed(),
            "{name}: random walk found a violation exhaustive search must also find"
        );
    }
    // And on a buggy program random walks usually find the bug too.
    let buggy = Compiled::from_program(corpus::german_buggy()).unwrap();
    let random = buggy.verifier().check_random(7, 500, 400);
    assert!(!random.passed(), "german bug should be findable randomly");
}
