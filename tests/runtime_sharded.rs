//! Sharded-executor tests: shard-count invariance of program outcomes,
//! supervision and backpressure under shards > 1, timer-wheel ordering,
//! and the cross-shard reference boundary.
//!
//! The load-bearing claim is the first one: because every delivery is
//! one run-to-completion `add_event` and machines never share state
//! across shards, the per-machine final state of a deterministic
//! workload must be identical whether it runs on 1, 2 or 8 shards.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use p_core::runtime::{
    Executor, Injection, MachineStatus, OverflowPolicy, RetryPolicy, Runtime, RuntimeError,
};
use p_core::Value;

const COUNTER: &str = r#"
    event add;
    machine Counter {
        var n : int;
        state Run { on add do accum; }
        action accum { n := n + arg; }
    }
    main Counter();
"#;

/// Runs the deterministic counter workload on `shards` shards and
/// returns (per-machine final `n`, events delivered).
fn counter_outcome(shards: usize, machines: usize, injections: usize) -> (Vec<i64>, u64) {
    let program = p_core::parser::parse(COUNTER).unwrap();
    let exec = Executor::builder(&program).unwrap().shards(shards).start();
    let ids: Vec<_> = (0..machines)
        .map(|_| {
            exec.create_machine("Counter", &[("n", Value::Int(0))])
                .unwrap()
        })
        .collect();
    for i in 0..injections {
        let target = ids[(i * 7 + 3) % machines];
        exec.inject(Injection::new(target, "add", Value::Int((i % 5) as i64)))
            .unwrap();
    }
    // Resolve each global id to its shard runtime before shutdown
    // consumes the executor; `Runtime` handles are cheap clones.
    let homes: Vec<(Runtime, p_core::MachineId)> = ids
        .iter()
        .map(|&id| {
            let (shard, local) = exec.locate(id).unwrap();
            (exec.shard_runtime(shard).unwrap().clone(), local)
        })
        .collect();
    let report = exec.shutdown().unwrap();
    let finals = homes
        .iter()
        .map(|(rt, local)| match rt.read_var(*local, "n") {
            Some(Value::Int(n)) => n,
            other => panic!("expected an int counter, got {other:?}"),
        })
        .collect();
    (finals, report.delivered)
}

#[test]
fn shard_count_invariance() {
    let (machines, injections) = (12, 240);
    let baseline = counter_outcome(1, machines, injections);
    assert_eq!(baseline.1, injections as u64, "every injection delivers");
    // The workload's total is independent of routing, so the baseline
    // itself is checkable in closed form.
    let total: i64 = (0..injections).map(|i| (i % 5) as i64).sum();
    assert_eq!(baseline.0.iter().sum::<i64>(), total);
    for shards in [2, 8] {
        let outcome = counter_outcome(shards, machines, injections);
        assert_eq!(
            outcome, baseline,
            "per-machine final state must not depend on the shard count ({shards} shards)"
        );
    }
}

const MIXED: &str = r#"
    event tick;
    event poke;
    machine Steady {
        var n : int;
        state Run { on tick do bump; }
        action bump { n := n + 1; }
    }
    machine Fragile {
        var m : int;
        foreign fn risky() : int;
        state Run { on poke do hit; }
        action hit { m := m + risky(); }
    }
    main Steady();
"#;

#[test]
fn quarantine_is_per_machine_under_many_shards() {
    let program = p_core::parser::parse(MIXED).unwrap();
    let blow_up = Arc::new(AtomicBool::new(true));
    let trigger = Arc::clone(&blow_up);
    let exec = Executor::builder(&program)
        .unwrap()
        .shards(4)
        .foreign("risky", move |_args| {
            if trigger.load(Ordering::SeqCst) {
                panic!("simulated foreign-function crash");
            }
            Value::Int(1)
        })
        .start();
    let steadies: Vec<_> = (0..4)
        .map(|shard| {
            exec.create_machine_on(shard, "Steady", &[("n", Value::Int(0))])
                .unwrap()
        })
        .collect();
    let fragile = exec
        .create_machine("Fragile", &[("m", Value::Int(0))])
        .unwrap();

    exec.inject(Injection::new(fragile, "poke", Value::Null))
        .unwrap();
    // The panic is absorbed asynchronously; wait for the quarantine to
    // land before asserting around it.
    let deadline = Instant::now() + Duration::from_secs(5);
    while exec.machine_status(fragile) != Some(MachineStatus::Quarantined) {
        assert!(Instant::now() < deadline, "quarantine never landed");
        std::thread::sleep(Duration::from_millis(1));
    }
    // Healthy machines on every shard keep processing afterwards.
    for &s in &steadies {
        for _ in 0..10 {
            exec.inject(Injection::new(s, "tick", Value::Null)).unwrap();
        }
    }
    let homes: Vec<(Runtime, p_core::MachineId)> = steadies
        .iter()
        .map(|&id| {
            let (shard, local) = exec.locate(id).unwrap();
            (exec.shard_runtime(shard).unwrap().clone(), local)
        })
        .collect();
    // The quarantine surfaced as the first recorded delivery error.
    match exec.shutdown() {
        Err(RuntimeError::MachineQuarantined(_)) => {}
        other => panic!("expected the quarantine to surface on shutdown, got {other:?}"),
    }
    for (rt, local) in homes {
        assert_eq!(rt.read_var(local, "n"), Some(Value::Int(10)));
    }
}

const SLOW: &str = r#"
    event tick;
    machine Slow {
        var n : int;
        foreign fn nap() : int;
        state Run { on tick do bump; }
        action bump { n := n + nap(); }
    }
    main Slow();
"#;

fn slow_executor(delay: Duration, policy: OverflowPolicy) -> (Executor, p_core::MachineId) {
    let program = p_core::parser::parse(SLOW).unwrap();
    let exec = Executor::builder(&program)
        .unwrap()
        .mailbox_capacity(1)
        .credits(1)
        .overflow(policy)
        .foreign("nap", move |_args| {
            std::thread::sleep(delay);
            Value::Int(1)
        })
        .start();
    let id = exec
        .create_machine("Slow", &[("n", Value::Int(0))])
        .unwrap();
    (exec, id)
}

#[test]
fn executor_overflow_fail_and_retry() {
    let (exec, id) = slow_executor(Duration::from_millis(100), OverflowPolicy::Fail);
    exec.inject(Injection::new(id, "tick", Value::Null))
        .unwrap();
    std::thread::sleep(Duration::from_millis(20));
    exec.inject(Injection::new(id, "tick", Value::Null))
        .unwrap();
    // One credit, one queued envelope: fail-fast now, and a deadline'd
    // try_inject times out while the worker naps.
    assert!(matches!(
        exec.inject(Injection::new(id, "tick", Value::Null)),
        Err(RuntimeError::QueueFull)
    ));
    assert!(matches!(
        exec.try_inject(
            Injection::new(id, "tick", Value::Null),
            Duration::from_millis(10)
        ),
        Err(RuntimeError::QueueFull)
    ));
    // A patient retry schedule rides out the backpressure.
    let policy = RetryPolicy {
        max_attempts: 12,
        base_delay: Duration::from_millis(5),
        max_delay: Duration::from_secs(30),
        jitter: true,
    };
    exec.inject_with_retry(Injection::new(id, "tick", Value::Null), &policy)
        .unwrap();
    let (shard, local) = exec.locate(id).unwrap();
    let rt = exec.shard_runtime(shard).unwrap().clone();
    let report = exec.shutdown().unwrap();
    assert_eq!(report.delivered, 3);
    assert_eq!(rt.read_var(local, "n"), Some(Value::Int(3)));
}

#[test]
fn executor_drop_newest_counts_every_overflow() {
    let (exec, id) = slow_executor(Duration::from_millis(300), OverflowPolicy::DropNewest);
    exec.inject(Injection::new(id, "tick", Value::Null))
        .unwrap();
    std::thread::sleep(Duration::from_millis(50));
    for _ in 0..4 {
        exec.inject(Injection::new(id, "tick", Value::Null))
            .unwrap();
    }
    let dropped = exec.stats().dropped;
    assert!(dropped >= 2, "expected at least two drops, got {dropped}");
    let report = exec.shutdown().unwrap();
    // Every injection is either delivered or counted dropped — never
    // both, never lost.
    assert_eq!(report.delivered + report.stats.dropped, 5);
}

const RECORDER: &str = r#"
    event note;
    machine Recorder {
        var order : int;
        state Run { on note do log; }
        action log { order := order * 10 + arg; }
    }
    main Recorder();
"#;

#[test]
fn timer_wheel_fires_in_deadline_order() {
    let program = p_core::parser::parse(RECORDER).unwrap();
    let exec = Executor::builder(&program)
        .unwrap()
        .shards(2)
        .timer_tick(Duration::from_millis(1))
        .start();
    let recorders = [
        exec.create_machine_on(0, "Recorder", &[("order", Value::Int(0))])
            .unwrap(),
        exec.create_machine_on(1, "Recorder", &[("order", Value::Int(0))])
            .unwrap(),
    ];
    // Armed out of deadline order on purpose; delivery must sort by
    // deadline, not by arm order, on both shards.
    for &r in &recorders {
        exec.inject_after(
            Injection::new(r, "note", Value::Int(3)),
            Duration::from_millis(120),
        )
        .unwrap();
        exec.inject_after(
            Injection::new(r, "note", Value::Int(1)),
            Duration::from_millis(40),
        )
        .unwrap();
        exec.inject_after(
            Injection::new(r, "note", Value::Int(2)),
            Duration::from_millis(80),
        )
        .unwrap();
    }
    let homes: Vec<(Runtime, p_core::MachineId)> = recorders
        .iter()
        .map(|&id| {
            let (shard, local) = exec.locate(id).unwrap();
            (exec.shard_runtime(shard).unwrap().clone(), local)
        })
        .collect();
    // Shutdown waits for armed timers before draining.
    let report = exec.shutdown().unwrap();
    assert_eq!(report.delivered, 6);
    assert_eq!(report.stats.timer_scheduled, 6);
    assert_eq!(report.stats.timer_fired, 6);
    assert_eq!(report.stats.timer_pending, 0);
    for (rt, local) in homes {
        assert_eq!(
            rt.read_var(local, "order"),
            Some(Value::Int(123)),
            "delayed sends must fire in deadline order"
        );
    }
}

const RELAY: &str = r#"
    event go;
    machine Relay {
        var next : id;
        var has_next : bool;
        var hits : int;
        state Run { on go do forward; }
        action forward {
            hits := hits + 1;
            if (has_next) { send(next, go); }
        }
    }
    main Relay();
"#;

#[test]
fn cross_shard_references_are_rejected() {
    let program = p_core::parser::parse(RELAY).unwrap();
    let exec = Executor::builder(&program).unwrap().shards(2).start();
    let base = &[("hits", Value::Int(0)), ("has_next", Value::Bool(false))];
    let a = exec.create_machine_on(0, "Relay", base).unwrap();
    let b = exec.create_machine_on(1, "Relay", base).unwrap();

    // An initializer pointing across the shard boundary is rejected…
    match exec.create_machine_on(
        1,
        "Relay",
        &[
            ("hits", Value::Int(0)),
            ("has_next", Value::Bool(true)),
            ("next", Value::Machine(a)),
        ],
    ) {
        Err(RuntimeError::CrossShard {
            machine,
            home,
            used_from,
        }) => {
            assert_eq!(machine, a);
            assert_eq!(home, 0);
            assert_eq!(used_from, 1);
        }
        other => panic!("expected a cross-shard rejection, got {other:?}"),
    }
    // …as is a machine-id payload injected toward the wrong shard…
    assert!(matches!(
        exec.inject(Injection::new(b, "go", Value::Machine(a))),
        Err(RuntimeError::CrossShard { .. })
    ));
    // …while the co-located equivalents are fine.
    let c = exec
        .create_machine_on(
            0,
            "Relay",
            &[
                ("hits", Value::Int(0)),
                ("has_next", Value::Bool(true)),
                ("next", Value::Machine(a)),
            ],
        )
        .unwrap();
    exec.inject(Injection::new(c, "go", Value::Null)).unwrap();
    let homes: Vec<(Runtime, p_core::MachineId)> = [a, c]
        .iter()
        .map(|&id| {
            let (shard, local) = exec.locate(id).unwrap();
            (exec.shard_runtime(shard).unwrap().clone(), local)
        })
        .collect();
    let report = exec.shutdown().unwrap();
    // One injection, two hits: the in-program relay hop ran inside the
    // same run-to-completion delivery.
    assert_eq!(report.delivered, 1);
    for (rt, local) in homes {
        assert_eq!(rt.read_var(local, "hits"), Some(Value::Int(1)));
    }
}

#[test]
fn shutdown_deadline_reports_typed_pending() {
    let (exec, id) = slow_executor(Duration::from_millis(500), OverflowPolicy::Block);
    exec.inject(Injection::new(id, "tick", Value::Null))
        .unwrap();
    std::thread::sleep(Duration::from_millis(20));
    match exec.shutdown_with_deadline(Duration::from_millis(50)) {
        Err(RuntimeError::ShutdownTimeout { pending }) => {
            assert!(pending >= 1, "the napping delivery is still in flight");
        }
        other => panic!("expected a shutdown timeout, got {other:?}"),
    }
}
