//! Sleep-set partial-order reduction must be invisible to the checker's
//! answer: for every corpus program — buggy variants included — POR-on
//! and POR-off exploration agree on the verdict, on the retained state
//! count for complete runs, and (for buggy programs) both produce
//! counterexamples that replay. POR may only prune *transitions*.

use p_core::{corpus, CheckerOptions, Compiled};

fn por_options(jobs: usize) -> CheckerOptions {
    CheckerOptions {
        por: true,
        jobs,
        ..CheckerOptions::default()
    }
}

/// Every passing corpus program: POR must preserve the verdict and the
/// reachable state space while never exploring more transitions.
#[test]
fn corpus_agrees_with_and_without_por() {
    for (name, program) in corpus::all() {
        let compiled = Compiled::from_program(program).expect("corpus program compiles");
        let full = compiled.verify();
        let por = compiled
            .verifier()
            .with_options(por_options(1))
            .check_exhaustive();
        assert_eq!(
            full.passed(),
            por.passed(),
            "{name}: verdict diverged under POR"
        );
        assert_eq!(
            full.complete, por.complete,
            "{name}: completeness diverged under POR"
        );
        if full.complete {
            assert_eq!(
                full.stats.unique_states, por.stats.unique_states,
                "{name}: POR changed the reachable state count"
            );
        }
        assert!(
            por.stats.transitions <= full.stats.transitions,
            "{name}: POR explored more transitions ({} > {})",
            por.stats.transitions,
            full.stats.transitions
        );
    }
}

/// Seeded bugs stay reachable under POR, and the pruned exploration's
/// counterexample still replays deterministically.
#[test]
fn buggy_benchmarks_fail_under_por_with_replayable_traces() {
    for (name, _correct, buggy) in corpus::figure7_benchmarks() {
        let compiled = Compiled::from_program(buggy).expect("buggy corpus program compiles");
        let full = compiled.verify();
        assert!(!full.passed(), "{name}: seeded bug missing without POR");
        let por = compiled
            .verifier()
            .with_options(por_options(1))
            .check_exhaustive();
        assert!(!por.passed(), "{name}: POR hid the seeded bug");
        let cx = por
            .counterexample
            .unwrap_or_else(|| panic!("{name}: POR run produced no counterexample"));
        assert!(
            compiled.verifier().replay(&cx).reproduced(),
            "{name}: POR counterexample must replay deterministically"
        );
    }
}

/// POR composes with the parallel engine: verdict and state count match
/// the sequential full exploration. (Transition counts are not compared
/// — which interleavings the sleep sets prune depends on expansion
/// order, which is nondeterministic across workers.)
#[test]
fn por_agrees_across_job_counts() {
    for (name, program) in corpus::all() {
        let compiled = Compiled::from_program(program).expect("corpus program compiles");
        let sequential = compiled.verify();
        let por_parallel = compiled
            .verifier()
            .with_options(por_options(4))
            .check_exhaustive_parallel(4);
        assert_eq!(
            sequential.passed(),
            por_parallel.passed(),
            "{name}: verdict diverged under parallel POR"
        );
        assert_eq!(
            sequential.complete, por_parallel.complete,
            "{name}: completeness diverged under parallel POR"
        );
        if sequential.complete {
            assert_eq!(
                sequential.stats.unique_states, por_parallel.stats.unique_states,
                "{name}: state count diverged under parallel POR"
            );
        }
    }
}
