//! The compiled execution backend must be invisible to the checker's
//! answer: for every corpus program — buggy variants included — running
//! with the ahead-of-time compiled table and with the interpreter must
//! produce bit-identical verdicts, unique-state counts and transition
//! counts, under the sequential engine, `--por`, `--symmetry`, and the
//! parallel engine. The interpreter is the specification; the compiled
//! tables are an optimization that may never change an answer.

use p_core::corpus::{self, compiled};
use p_core::{CheckerOptions, Compiled, Report};

fn modes() -> Vec<(&'static str, CheckerOptions)> {
    let base = CheckerOptions::default();
    vec![
        ("sequential", base.clone()),
        (
            "--por",
            CheckerOptions {
                por: true,
                ..base.clone()
            },
        ),
        (
            "--symmetry",
            CheckerOptions {
                symmetry: true,
                ..base.clone()
            },
        ),
        ("--jobs 4", CheckerOptions { jobs: 4, ..base }),
    ]
}

fn check(program: &Compiled, options: &CheckerOptions, use_table: bool, name: &str) -> Report {
    let mut verifier = program.verifier().with_options(options.clone());
    if use_table {
        let table = compiled::compiled_program(name)
            .unwrap_or_else(|| panic!("{name}: no compiled table in the corpus registry"));
        verifier = verifier
            .with_compiled(table)
            .unwrap_or_else(|e| panic!("{name}: compiled table rejected: {e}"));
    }
    if options.jobs > 1 {
        verifier.check_exhaustive_parallel(options.jobs)
    } else {
        verifier.check_exhaustive()
    }
}

fn assert_identical(name: &str, mode: &str, interpreted: &Report, compiled_run: &Report) {
    assert_eq!(
        interpreted.passed(),
        compiled_run.passed(),
        "{name} [{mode}]: verdict diverged between interpreter and compiled backend"
    );
    assert_eq!(
        interpreted.complete, compiled_run.complete,
        "{name} [{mode}]: completeness diverged"
    );
    // A parallel search aborted by a counterexample stops at a
    // worker-timing-dependent point, so its counters are not
    // reproducible even interpreter-vs-interpreter; everywhere else the
    // counts must be bit-identical.
    if mode == "--jobs 4" && !interpreted.passed() {
        return;
    }
    assert_eq!(
        interpreted.stats.unique_states, compiled_run.stats.unique_states,
        "{name} [{mode}]: unique state count diverged"
    );
    assert_eq!(
        interpreted.stats.transitions, compiled_run.stats.transitions,
        "{name} [{mode}]: transition count diverged"
    );
}

/// Every passing corpus program agrees between backends, in every mode.
#[test]
fn corpus_agrees_between_compiled_and_interpreted() {
    for (name, program) in corpus::all() {
        let program = Compiled::from_program(program).expect("corpus program compiles");
        for (mode, options) in modes() {
            let interpreted = check(&program, &options, false, name);
            let compiled_run = check(&program, &options, true, name);
            assert_identical(name, mode, &interpreted, &compiled_run);
        }
    }
}

/// Seeded bugs are found through the compiled path too, with identical
/// exploration statistics, and the counterexample a compiled-backend run
/// produces replays deterministically on the plain interpreter.
#[test]
fn buggy_benchmarks_agree_and_compiled_counterexamples_replay() {
    for (name, _correct, buggy) in corpus::figure7_benchmarks() {
        let table_name = format!("{name}_buggy");
        let program = Compiled::from_program(buggy).expect("buggy corpus program compiles");
        for (mode, options) in modes() {
            let interpreted = check(&program, &options, false, name);
            let compiled_run = check(&program, &options, true, &table_name);
            assert_identical(name, mode, &interpreted, &compiled_run);
            assert!(
                !compiled_run.passed(),
                "{name} [{mode}]: compiled backend hid the seeded bug"
            );
            let cx = compiled_run
                .counterexample
                .unwrap_or_else(|| panic!("{name} [{mode}]: no counterexample"));
            assert!(
                program.verifier().replay(&cx).reproduced(),
                "{name} [{mode}]: counterexample found through the compiled \
                 backend must replay on the interpreter"
            );
        }
    }
}

/// A compiled table only attaches to the exact program it was generated
/// from: against any other program the digest check fails eagerly with a
/// typed error, before exploration starts.
#[test]
fn digest_mismatch_is_a_typed_error() {
    let (_, elevator) = corpus::all().swap_remove(1);
    let program = Compiled::from_program(elevator).expect("corpus program compiles");
    let wrong = compiled::compiled_program("ping_pong").unwrap();
    let err = program
        .verifier()
        .with_compiled(wrong)
        .expect_err("attaching ping_pong's table to elevator must fail");
    let msg = err.to_string();
    assert!(
        msg.contains("generated from a different program"),
        "error should name the digest mismatch: {msg}"
    );
}
