//! The erasure theorem of §3.3, checked dynamically: erasing ghost
//! machines and variables does not change the behaviour of real machines.
//!
//! We run the *closed* program (ghosts included) under the operational
//! semantics with the causal schedule, record what the ghost environment
//! sent to the real machine, then drive the *erased* program in the
//! execution runtime with exactly those events and compare the real
//! machine's final variables and control state.

use p_core::semantics::{
    lower, Engine, ExecOutcome, ForeignEnv, Granularity, MachineId, Value, YieldKind,
};
use p_core::{Compiled, Runtime};

/// A program where a ghost environment deterministically drives one real
/// machine through transitions, variable updates and an action.
const SRC: &str = r#"
    event start : int;
    event step;
    event finish;

    machine Worker {
        var total : int;
        var steps : int;
        ghost var envRef : id;

        state Idle {
            entry { steps := 0; }
            on start goto Working;
        }

        state Working {
            entry { total := arg; }
            on step do accumulate;
            on finish goto Done;
        }

        state Done {
            entry { assert(total == steps + 10); }
        }

        action accumulate {
            total := total + 1;
            steps := steps + 1;
        }
    }

    ghost machine Env {
        var w : id;
        state Drive {
            entry {
                w := new Worker();
                send(w, start, 10);
                send(w, step);
                send(w, step);
                send(w, step);
                send(w, finish);
            }
        }
    }

    main Env();
"#;

/// Runs the closed program to quiescence under the causal schedule and
/// returns `(events sent to the worker, worker's final (total, steps),
/// final state name)`.
fn run_closed() -> (Vec<(String, Value)>, (Value, Value), String) {
    let program = p_core::parser::parse(SRC).unwrap();
    p_core::typecheck::check(&program).unwrap();
    let lowered = lower(&program).unwrap();
    let engine = Engine::new(&lowered, ForeignEnv::empty());
    let mut config = engine.initial_config();

    let worker_ty = lowered.machine_type_named("Worker").unwrap();
    let mut sent = Vec::new();
    // Causal work stack, exactly like the runtime's drain loop.
    let mut work = vec![MachineId(0)];
    let mut no_choices = || panic!("closed program is deterministic here");
    while let Some(id) = work.pop() {
        if config.machine(id).is_none() || !engine.enabled(&config, id) {
            continue;
        }
        let run = engine
            .run_machine(&mut config, id, &mut no_choices, Granularity::Atomic)
            .unwrap();
        match run.outcome {
            ExecOutcome::Yield(YieldKind::Sent { to, event, .. }) => {
                let receiver_is_worker = config.machine(to).is_some_and(|m| m.ty == worker_ty);
                let sender_is_ghost = lowered
                    .machine(config.machine(id).expect("sender alive").ty)
                    .ghost;
                if receiver_is_worker && sender_is_ghost {
                    // Record the ghost→real stimulus with its payload.
                    let payload = config
                        .machine(to)
                        .unwrap()
                        .queue
                        .last()
                        .map(|&(_, v)| v)
                        .unwrap_or(Value::Null);
                    sent.push((lowered.event_name(event).to_owned(), payload));
                }
                work.push(id);
                work.push(to);
            }
            ExecOutcome::Yield(YieldKind::Created { id: new_id, .. }) => {
                work.push(id);
                work.push(new_id);
            }
            ExecOutcome::Yield(YieldKind::Internal) => work.push(id),
            ExecOutcome::Blocked | ExecOutcome::Deleted => {}
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    let worker_id = config
        .live_ids()
        .find(|&id| config.machine(id).unwrap().ty == worker_ty)
        .expect("worker exists");
    let worker = config.machine(worker_id).unwrap();
    let mt = lowered.machine(worker_ty);
    let total_var = mt
        .var_named(lowered.interner.get("total").unwrap())
        .unwrap();
    let steps_var = mt
        .var_named(lowered.interner.get("steps").unwrap())
        .unwrap();
    let state = lowered
        .state_name(worker_ty, worker.current_state())
        .to_owned();
    (
        sent,
        (
            worker.locals[total_var.0 as usize],
            worker.locals[steps_var.0 as usize],
        ),
        state,
    )
}

#[test]
fn erased_worker_behaves_like_the_closed_one() {
    let (stimuli, (closed_total, closed_steps), closed_state) = run_closed();
    assert_eq!(stimuli.len(), 5, "env sends 5 events");

    // Now the erased program, driven with the recorded stimuli.
    let program = p_core::parser::parse(SRC).unwrap();
    let runtime = Runtime::builder(&program).unwrap().start();
    let worker = runtime.create_machine("Worker", &[]).unwrap();
    for (event, payload) in &stimuli {
        runtime.add_event(worker, event, *payload).unwrap();
    }

    assert_eq!(runtime.read_var(worker, "total"), Some(closed_total));
    assert_eq!(runtime.read_var(worker, "steps"), Some(closed_steps));
    assert_eq!(
        runtime.current_state(worker).as_deref(),
        Some(closed_state.as_str())
    );
}

#[test]
fn closed_verification_also_passes() {
    let compiled = Compiled::from_source(SRC).unwrap();
    let report = compiled.verify();
    assert!(report.passed(), "{:?}", report.counterexample);
    assert!(report.complete);
}

#[test]
fn erasure_is_idempotent() {
    let program = p_core::parser::parse(SRC).unwrap();
    let once = p_core::typecheck::erase(&program).unwrap();
    let twice = p_core::typecheck::erase(&once).unwrap();
    assert_eq!(
        p_core::ast::print_program(&once),
        p_core::ast::print_program(&twice)
    );
}
