//! Integration-level checks of the §5 delay-bounding claims, across the
//! Figure 7 benchmarks (small budgets so the suite stays fast).

use p_core::{corpus, Compiled};

#[test]
fn coverage_grows_with_delay_bound_on_elevator() {
    let compiled = Compiled::from_program(corpus::elevator_with_budget(2)).unwrap();
    let exhaustive = compiled.verify();
    assert!(exhaustive.passed() && exhaustive.complete);

    let mut last = 0;
    let mut reached_full = false;
    for d in 0..=12 {
        let r = compiled.verify_delay_bounded(d);
        assert!(r.report.passed());
        let states = r.report.stats.unique_states;
        assert!(states >= last, "coverage shrank at d={d}");
        last = states;
        if states == exhaustive.stats.unique_states {
            reached_full = true;
            break;
        }
    }
    assert!(
        reached_full,
        "delay bound 12 should cover the space: {last} vs {}",
        exhaustive.stats.unique_states
    );
}

#[test]
fn delay_zero_matches_runtime_schedule_count() {
    // With d = 0 and no ghost nondeterminism the scheduler explores a
    // single (causal) schedule: the number of scheduler nodes equals the
    // path length, and the run is deterministic.
    let src = r#"
        event a;
        machine M {
            var peer : id;
            state S {
                entry { peer := new N(); send(peer, a); }
            }
        }
        machine N { state T { defer a; } }
        main M();
    "#;
    let compiled = Compiled::from_source(src).unwrap();
    let r1 = compiled.verify_delay_bounded(0);
    let r2 = compiled.verify_delay_bounded(0);
    assert!(r1.report.passed());
    assert_eq!(r1.scheduler_nodes, r2.scheduler_nodes);
    assert_eq!(
        r1.report.stats.unique_states, r1.scheduler_nodes,
        "one schedule: every node is a distinct point on the single path"
    );
}

#[test]
fn delayed_coverage_dominates_depth_bounded_at_same_transition_budget() {
    // The paper's motivation for delay bounding over depth bounding: at a
    // comparable exploration cost, a small delay budget reaches deep
    // states a depth bound cuts off. Verify the mechanism: with a depth
    // bound shorter than the bug's depth the exhaustive search misses the
    // elevator bug while delay-2 finds it.
    let buggy = corpus::elevator_buggy();
    let compiled = Compiled::from_program(buggy).unwrap();

    let shallow = compiled.verifier().check_exhaustive_with_depth(6);
    assert!(
        shallow.passed(),
        "the seeded bug needs more than 6 scheduler decisions"
    );

    let delayed = compiled.verify_delay_bounded(2);
    assert!(
        !delayed.report.passed(),
        "delay bound 2 reaches the bug at arbitrary depth"
    );
}

#[test]
fn all_figure7_bugs_found_by_delay_two_with_larger_budgets() {
    for (name, _, buggy) in corpus::figure7_benchmarks() {
        let compiled = Compiled::from_program(buggy).unwrap();
        let r = compiled.verify_delay_bounded(2);
        assert!(!r.report.passed(), "{name}: bug not found at d=2");
        let cx = r.report.counterexample.unwrap();
        assert!(!cx.trace.is_empty(), "{name}: counterexample has a trace");
    }
}
