//! Code generation over the whole corpus: every program produces a
//! structurally sound C translation unit.

use p_core::{corpus, Compiled};

#[test]
fn every_corpus_program_generates_balanced_c() {
    for (name, program) in corpus::all() {
        let compiled = Compiled::from_program(program).unwrap();
        let out = compiled.emit_c().unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(
            out.code.matches('{').count(),
            out.code.matches('}').count(),
            "{name}: unbalanced braces"
        );
        assert_eq!(
            out.code.matches('(').count(),
            out.code.matches(')').count(),
            "{name}: unbalanced parentheses"
        );
        assert!(out.code.contains("const PDriverDecl p_driver"), "{name}");
    }
}

#[test]
fn generated_code_reflects_real_machines_only() {
    let compiled = Compiled::from_program(corpus::elevator()).unwrap();
    let out = compiled.emit_c().unwrap();
    assert!(out.code.contains("P_MACHINE_Elevator"));
    for ghost in ["User", "Door", "Timer"] {
        assert!(
            !out.code.contains(&format!("P_MACHINE_{ghost}")),
            "ghost machine {ghost} leaked into generated code"
        );
    }
    // Real transition targets of Figure 1 appear in the tables.
    assert!(out.code.contains("P_STATE_Elevator_Opening"));
    assert!(out.code.contains("P_STATE_Elevator_StoppingTimer"));
    assert!(out.code.contains("P_TRANS_CALL"));
}

#[test]
fn state_counts_match_source_counts() {
    for (name, program) in corpus::all() {
        let real_states: usize = program.real_machines().map(|m| m.states.len()).sum();
        let compiled = Compiled::from_program(program).unwrap();
        let out = compiled.emit_c().unwrap();
        assert_eq!(out.stats.states, real_states, "{name}");
    }
}

#[test]
fn deferred_sets_become_tables() {
    let compiled = Compiled::from_program(corpus::switch_led()).unwrap();
    let out = compiled.emit_c().unwrap();
    assert!(out.code.contains("Driver_Transferring_deferred"));
    assert!(out.code.contains("P_EVENT_SwitchStateChange"));
    assert!(out.code.contains("Driver_Transferring_postponed"));
}
