//! Symmetry reduction must be invisible to the checker's answer: for
//! every corpus program — buggy variants included — `--symmetry` on and
//! off agree on the verdict, alone, combined with `--por`, and on the
//! parallel engine. Symmetry may only *merge* states (never invent or
//! lose reachable behavior), counterexamples stay concrete and replay
//! deterministically, and on the German-protocol family the merge is
//! required to actually happen.

use p_core::{corpus, CheckerOptions, Compiled};

fn sym_options(por: bool, jobs: usize) -> CheckerOptions {
    CheckerOptions {
        symmetry: true,
        por,
        jobs,
        ..CheckerOptions::default()
    }
}

/// Every passing corpus program: `--symmetry` (alone and with `--por`)
/// must preserve the verdict, never retain more states than the full
/// exploration, and POR on top of symmetry must not change the retained
/// orbit count. The German family has interchangeable clients by
/// construction, so there symmetry must strictly reduce.
#[test]
fn corpus_agrees_with_and_without_symmetry() {
    for (name, program) in corpus::all() {
        let compiled = Compiled::from_program(program).expect("corpus program compiles");
        let full = compiled.verify();
        let sym = compiled
            .verifier()
            .with_options(sym_options(false, 1))
            .check_exhaustive();
        let sym_por = compiled
            .verifier()
            .with_options(sym_options(true, 1))
            .check_exhaustive();
        for (mode, run) in [("--symmetry", &sym), ("--symmetry --por", &sym_por)] {
            assert_eq!(
                full.passed(),
                run.passed(),
                "{name}: verdict diverged under {mode}"
            );
            assert_eq!(
                full.complete, run.complete,
                "{name}: completeness diverged under {mode}"
            );
        }
        if full.complete {
            assert!(
                sym.stats.unique_states <= full.stats.unique_states,
                "{name}: symmetry retained more states ({} > {})",
                sym.stats.unique_states,
                full.stats.unique_states
            );
            assert_eq!(
                sym.stats.unique_states, sym_por.stats.unique_states,
                "{name}: POR changed the orbit count under symmetry"
            );
            if name.starts_with("german") && name != "german" {
                assert!(
                    sym.stats.unique_states < full.stats.unique_states,
                    "{name}: interchangeable clients must merge ({} vs {})",
                    sym.stats.unique_states,
                    full.stats.unique_states
                );
                assert!(
                    sym.stats.symmetry_merges > 0,
                    "{name}: no symmetry merges recorded"
                );
            }
        }
    }
}

/// Seeded bugs stay reachable under symmetry, and the counterexamples
/// are concrete: they replay deterministically on the unreduced
/// semantics, with or without POR stacked on top.
#[test]
fn buggy_benchmarks_fail_under_symmetry_with_replayable_traces() {
    for (name, _correct, buggy) in corpus::figure7_benchmarks() {
        let compiled = Compiled::from_program(buggy).expect("buggy corpus program compiles");
        for (mode, por) in [("--symmetry", false), ("--symmetry --por", true)] {
            let run = compiled
                .verifier()
                .with_options(sym_options(por, 1))
                .check_exhaustive();
            assert!(!run.passed(), "{name}: {mode} hid the seeded bug");
            let cx = run
                .counterexample
                .unwrap_or_else(|| panic!("{name}: {mode} run produced no counterexample"));
            assert!(
                compiled.verifier().replay(&cx).reproduced(),
                "{name}: {mode} counterexample must replay deterministically"
            );
        }
    }
}

/// Symmetry composes with the parallel engine: verdict and retained
/// orbit count match the sequential symmetry run on every corpus
/// program. (Transition and merge counts are not compared — which
/// concrete representative reaches an orbit first depends on worker
/// scheduling.)
#[test]
fn symmetry_agrees_across_job_counts() {
    for (name, program) in corpus::all() {
        let compiled = Compiled::from_program(program).expect("corpus program compiles");
        let sequential = compiled
            .verifier()
            .with_options(sym_options(false, 1))
            .check_exhaustive();
        let parallel = compiled
            .verifier()
            .with_options(sym_options(false, 4))
            .check_exhaustive_parallel(4);
        assert_eq!(
            sequential.passed(),
            parallel.passed(),
            "{name}: verdict diverged under parallel symmetry"
        );
        assert_eq!(
            sequential.complete, parallel.complete,
            "{name}: completeness diverged under parallel symmetry"
        );
        if sequential.complete {
            assert_eq!(
                sequential.stats.unique_states, parallel.stats.unique_states,
                "{name}: orbit count diverged under parallel symmetry"
            );
        }
    }
}
