//! End-to-end tests of the `p` command-line tool.

use std::path::PathBuf;
use std::process::{Command, Output};

fn p_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_p"))
}

fn corpus_file(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../corpus/programs")
        .join(name)
}

fn write_temp(name: &str, contents: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("p-cli-test-{name}"));
    std::fs::write(&path, contents).unwrap();
    path
}

fn stdout(output: &Output) -> String {
    String::from_utf8_lossy(&output.stdout).into_owned()
}

fn stderr(output: &Output) -> String {
    String::from_utf8_lossy(&output.stderr).into_owned()
}

#[test]
fn check_accepts_corpus_program() {
    let out = p_bin()
        .args(["check", corpus_file("elevator.p").to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("OK"));
}

#[test]
fn check_rejects_ill_typed_program() {
    let path = write_temp(
        "bad.p",
        "machine M { var x : int; state S { entry { x := true; } } } main M();",
    );
    let out = p_bin()
        .args(["check", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(stderr(&out).contains("type mismatch"));
}

#[test]
fn verify_passes_and_fails_appropriately() {
    let out = p_bin()
        .args(["verify", corpus_file("ping_pong.p").to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("PASSED"));

    let buggy = write_temp(
        "buggy.p",
        r#"
        event hit;
        machine T { state S { on hit goto Bad; } state Bad { entry { assert(false); } } }
        ghost machine E {
            var t : id;
            state D { entry { t := new T(); send(t, hit); } }
        }
        main E();
        "#,
    );
    let out = p_bin()
        .args(["verify", buggy.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let text = stdout(&out);
    assert!(text.contains("FAILED"), "{text}");
    assert!(text.contains("trace"), "{text}");
    assert!(text.contains("replay: reproduced"), "{text}");
}

#[test]
fn verify_delay_flag() {
    let out = p_bin()
        .args([
            "verify",
            corpus_file("elevator.p").to_str().unwrap(),
            "--delay",
            "1",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("delay bound 1"));
}

#[test]
fn verify_symmetry_flag() {
    // german3 has three interchangeable clients: --symmetry must agree
    // on the verdict while retaining strictly fewer states.
    let file = corpus_file("german3.p");
    let states = |out: &Output| {
        stdout(out)
            .split(" states")
            .next()
            .unwrap()
            .trim()
            .parse::<u64>()
            .unwrap()
    };
    let plain = p_bin()
        .args(["verify", file.to_str().unwrap()])
        .output()
        .unwrap();
    let sym = p_bin()
        .args(["verify", file.to_str().unwrap(), "--symmetry"])
        .output()
        .unwrap();
    assert!(plain.status.success(), "{}", stderr(&plain));
    assert!(sym.status.success(), "{}", stderr(&sym));
    assert!(stdout(&sym).contains("PASSED"));
    assert!(
        states(&sym) < states(&plain),
        "symmetry must merge client orbits: {} vs {}",
        states(&sym),
        states(&plain)
    );

    // A symmetry-reduced visited set only keys the exhaustive search;
    // the scheduling strategies reject the flag.
    let out = p_bin()
        .args([
            "verify",
            file.to_str().unwrap(),
            "--symmetry",
            "--delay",
            "1",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(
        stderr(&out).contains("--symmetry applies to the exhaustive search only"),
        "{}",
        stderr(&out)
    );
}

#[test]
fn telemetry_flags_validate_their_inputs() {
    let program = corpus_file("ping_pong.p");
    // --profile/--progress are exhaustive-search-only knobs.
    let out = p_bin()
        .args([
            "verify",
            program.to_str().unwrap(),
            "--delay",
            "1",
            "--progress",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(
        stderr(&out).contains("--profile/--progress"),
        "{}",
        stderr(&out)
    );

    // A path-taking flag without its path is rejected.
    let out = p_bin()
        .args(["run", program.to_str().unwrap(), "Client", "--trace"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(
        stderr(&out).contains("--trace needs a path"),
        "{}",
        stderr(&out)
    );
}

#[test]
fn verify_fault_flags() {
    let lossy = corpus_file("lossy_link.p");
    // Fault-free: the handshake is correct under FIFO delivery.
    let out = p_bin()
        .args(["verify", lossy.to_str().unwrap(), "--faults", "0"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("fault budget 0"), "{text}");
    assert!(text.contains("PASSED"), "{text}");

    // One dropped event finds the bug, with a replayable fault trace.
    let out = p_bin()
        .args([
            "verify",
            lossy.to_str().unwrap(),
            "--faults",
            "1",
            "--fault-kinds",
            "drop",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let text = stdout(&out);
    assert!(text.contains("fault budget 1 (drop)"), "{text}");
    assert!(text.contains("FAILED"), "{text}");
    assert!(text.contains("FAULT: dropped cfg"), "{text}");
    assert!(text.contains("replay: reproduced"), "{text}");

    // Flag validation.
    let out = p_bin()
        .args([
            "verify",
            lossy.to_str().unwrap(),
            "--faults",
            "1",
            "--fault-kinds",
            "corrupt",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(
        stderr(&out).contains("unknown fault kind"),
        "{}",
        stderr(&out)
    );
    let out = p_bin()
        .args([
            "verify",
            lossy.to_str().unwrap(),
            "--delay",
            "1",
            "--faults",
            "1",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(
        stderr(&out).contains("cannot be combined"),
        "{}",
        stderr(&out)
    );
}

#[test]
fn info_prints_shapes() {
    let out = p_bin()
        .args(["info", corpus_file("switch_led.p").to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("machines: 5 (4 ghost)"), "{text}");
    assert!(text.contains("Driver: 14 states"), "{text}");
}

#[test]
fn fmt_output_reparses() {
    let out = p_bin()
        .args(["fmt", corpus_file("german.p").to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let formatted = stdout(&out);
    p_core::parser::parse(&formatted).expect("formatted output parses");
}

#[test]
fn compile_writes_c() {
    let target = std::env::temp_dir().join("p-cli-test-out.c");
    let out = p_bin()
        .args([
            "compile",
            corpus_file("ping_pong.p").to_str().unwrap(),
            "-o",
            target.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", stderr(&out));
    let code = std::fs::read_to_string(&target).unwrap();
    assert!(code.contains("PDriverDecl"));
}

#[test]
fn dot_exports_machine_diagram() {
    let out = p_bin()
        .args([
            "dot",
            corpus_file("elevator.p").to_str().unwrap(),
            "Elevator",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("digraph Elevator"));
    assert!(
        text.contains("style=dashed"),
        "call transitions rendered: {text}"
    );
}

#[test]
fn run_drives_a_machine() {
    let out = p_bin()
        .args([
            "run",
            corpus_file("usb_dsm.p").to_str().unwrap(),
            "DeviceSm",
            "Attach",
            "PowerOn",
            "BusReset",
            "SetAddress:5",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("state = AddressState"), "{text}");
}

#[test]
fn run_shards_drives_the_sharded_executor() {
    let out = p_bin()
        .args([
            "run",
            corpus_file("usb_dsm.p").to_str().unwrap(),
            "DeviceSm",
            "Attach",
            "PowerOn",
            "BusReset",
            "SetAddress:5",
            "--shards",
            "4",
            "--stats",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("(4 shard(s))"), "{text}");
    // Same end state as the single-runtime path above.
    assert!(text.contains("state = AddressState"), "{text}");
    // --stats prints the executor report with per-shard rows.
    assert!(text.contains("\"delivered\": 4"), "{text}");
    assert!(text.contains("\"shard\": 3"), "{text}");

    let out = p_bin()
        .args([
            "run",
            corpus_file("usb_dsm.p").to_str().unwrap(),
            "DeviceSm",
            "Attach",
            "--shards",
            "0",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(stderr(&out).contains("--shards must be at least 1"));
}

#[test]
fn liveness_flags_spinner() {
    let spinner = write_temp(
        "spin.p",
        r#"
        event tick;
        machine S { state A { entry { send(this, tick); } on tick goto A; } }
        main S();
        "#,
    );
    let out = p_bin()
        .args(["liveness", spinner.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(stdout(&out).contains("run forever"));
}

#[test]
fn unknown_command_shows_usage() {
    let out = p_bin().args(["bogus"]).output().unwrap();
    assert!(!out.status.success());
    assert!(stderr(&out).contains("usage:"));
}

#[test]
fn mem_limit_rejects_overflow_and_zero() {
    // `99999999999999999999k` overflows even a 64-bit byte count; the
    // parser must reject it (exit 2), not wrap around to a tiny limit.
    let file = corpus_file("ping_pong.p");
    let out = p_bin()
        .args([
            "verify",
            file.to_str().unwrap(),
            "--mem-limit",
            "99999999999999999999k",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "{}", stderr(&out));
    assert!(stderr(&out).contains("--mem-limit"));

    // A zero limit would truncate every search at the first state.
    let out = p_bin()
        .args(["verify", file.to_str().unwrap(), "--mem-limit", "0"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "{}", stderr(&out));
    assert!(stderr(&out).contains("out of range"));
}

#[test]
fn verify_compiled_uses_corpus_table() {
    let out = p_bin()
        .args([
            "verify",
            corpus_file("german.p").to_str().unwrap(),
            "--compiled",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("backend: compiled (digest "));
    assert!(stdout(&out).contains("PASSED"));
}

#[test]
fn verify_compiled_rejects_unknown_programs_with_exit_2() {
    // Any program that does not lower bit-identically to a corpus entry
    // has no checked-in table; `--compiled` must fail up front.
    let path = write_temp(
        "not-in-corpus.p",
        "event e; machine M { state S { on e goto S; } } main M();",
    );
    let out = p_bin()
        .args(["verify", path.to_str().unwrap(), "--compiled"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "{}", stderr(&out));
    assert!(stderr(&out).contains("no ahead-of-time compiled module"));
}

#[test]
fn verify_compiled_refuses_fine_granularity() {
    let out = p_bin()
        .args([
            "verify",
            corpus_file("ping_pong.p").to_str().unwrap(),
            "--compiled",
            "--fine",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "{}", stderr(&out));
    assert!(stderr(&out).contains("--fine"));
}
