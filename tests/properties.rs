//! Property-based tests (proptest) over core invariants: the
//! printer/parser round trip on randomly generated machines, the ⊕ queue
//! discipline, and runtime execution against a reference model.

use proptest::prelude::*;

use p_core::ast::{print_program, Expr, Program, ProgramBuilder, Stmt, Ty};
use p_core::semantics::{lower, Config, EventId, Value};
use p_core::{Runtime, Value as V};

// ---------- random program generation ----------------------------------

#[derive(Debug, Clone)]
struct ProgSpec {
    n_events: usize,
    n_states: usize,
    // (from, event, to, is_call)
    transitions: Vec<(usize, usize, usize, bool)>,
    // (state, events deferred)
    deferred: Vec<(usize, usize)>,
    // per-state entry constant assignment
    entries: Vec<Option<i64>>,
}

fn arb_spec() -> impl Strategy<Value = ProgSpec> {
    (1usize..4, 1usize..5)
        .prop_flat_map(|(n_events, n_states)| {
            let transitions = proptest::collection::vec(
                (0..n_states, 0..n_events, 0..n_states, any::<bool>()),
                0..6,
            );
            let deferred = proptest::collection::vec((0..n_states, 0..n_events), 0..4);
            let entries =
                proptest::collection::vec(proptest::option::of(-100i64..100), n_states..=n_states);
            (
                Just(n_events),
                Just(n_states),
                transitions,
                deferred,
                entries,
            )
        })
        .prop_map(
            |(n_events, n_states, transitions, deferred, entries)| ProgSpec {
                n_events,
                n_states,
                transitions,
                deferred,
                entries,
            },
        )
}

fn build_program(spec: &ProgSpec) -> Program {
    let mut b = ProgramBuilder::new();
    for e in 0..spec.n_events {
        b.event(&format!("ev{e}"));
    }
    let mut m = b.machine("M");
    m.var("x", Ty::Int);
    let x = m.sym("x");
    // Deduplicate (from, event) pairs to keep transitions deterministic.
    let mut seen = std::collections::HashSet::new();
    let transitions: Vec<_> = spec
        .transitions
        .iter()
        .filter(|(from, ev, _, _)| seen.insert((*from, *ev)))
        .cloned()
        .collect();
    for s in 0..spec.n_states {
        let deferred: Vec<String> = spec
            .deferred
            .iter()
            .filter(|(state, _)| *state == s)
            .map(|(_, e)| format!("ev{e}"))
            .collect();
        let deferred_refs: Vec<&str> = deferred.iter().map(String::as_str).collect();
        let sb = m.state(&format!("s{s}"));
        let sb = if deferred_refs.is_empty() {
            sb
        } else {
            sb.defer(&deferred_refs)
        };
        if let Some(v) = spec.entries.get(s).copied().flatten() {
            sb.entry(Stmt::assign(x, Expr::int(v)));
        }
    }
    for (from, ev, to, is_call) in &transitions {
        let from = format!("s{from}");
        let ev = format!("ev{ev}");
        let to = format!("s{to}");
        if *is_call {
            m.call(&from, &ev, &to);
        } else {
            m.step(&from, &ev, &to);
        }
    }
    m.finish();
    b.finish("M")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn print_parse_print_is_a_fixpoint(spec in arb_spec()) {
        let program = build_program(&spec);
        let text1 = print_program(&program);
        let reparsed = p_core::parser::parse(&text1).expect("printed programs parse");
        let text2 = print_program(&reparsed);
        prop_assert_eq!(text1, text2);
    }

    #[test]
    fn generated_programs_typecheck_and_lower(spec in arb_spec()) {
        let program = build_program(&spec);
        p_core::typecheck::check(&program).expect("generated programs are well-formed");
        let lowered = lower(&program).expect("and lower");
        // Transition counts survive lowering.
        let mt = lowered.machine(lowered.machine_type_named("M").unwrap());
        let table_transitions: usize = mt
            .states
            .iter()
            .map(|s| {
                s.steps.iter().filter(|t| t.is_some()).count()
                    + s.calls.iter().filter(|t| t.is_some()).count()
            })
            .sum();
        let mut seen = std::collections::HashSet::new();
        let expected = spec
            .transitions
            .iter()
            .filter(|(from, ev, _, _)| seen.insert((*from, *ev)))
            .count();
        prop_assert_eq!(table_transitions, expected);
    }

    #[test]
    fn queue_append_deduplicates_and_preserves_order(
        ops in proptest::collection::vec((0u32..4, -3i64..3), 0..40)
    ) {
        // Build a tiny machine to host a queue.
        let mut b = ProgramBuilder::new();
        for e in 0..4 {
            b.event_with(&format!("q{e}"), Ty::Int);
        }
        let mut m = b.machine("M");
        m.state("S");
        m.finish();
        let lowered = lower(&b.finish("M")).unwrap();
        let mut config = Config::default();
        let id = config.allocate(&lowered, lowered.main);
        let machine = config.machine_mut(id).unwrap();

        // Reference model: first occurrence wins, order preserved.
        let mut model: Vec<(u32, i64)> = Vec::new();
        for (e, v) in &ops {
            machine.enqueue(EventId(*e), Value::Int(*v));
            if !model.contains(&(*e, *v)) {
                model.push((*e, *v));
            }
        }
        let actual: Vec<(u32, i64)> = machine
            .queue
            .iter()
            .map(|(e, v)| (e.0, v.as_int().unwrap()))
            .collect();
        prop_assert_eq!(actual, model);
    }

    #[test]
    fn runtime_counter_matches_reference_fold(
        deltas in proptest::collection::vec(-5i64..5, 0..30)
    ) {
        let src = r#"
            event delta : int;
            machine Counter {
                var n : int;
                state Run { on delta do apply; }
                action apply { n := n + arg; }
            }
            main Counter();
        "#;
        let program = p_core::parser::parse(src).unwrap();
        let runtime = Runtime::builder(&program).unwrap().start();
        let id = runtime.create_machine("Counter", &[("n", V::Int(0))]).unwrap();
        let mut expected = 0i64;
        let mut last_sent: Option<i64> = None;
        for d in &deltas {
            runtime.add_event(id, "delta", V::Int(*d)).unwrap();
            // Run-to-completion: the event is consumed immediately, so ⊕
            // dedup never drops anything here.
            expected += d;
            last_sent = Some(*d);
        }
        let _ = last_sent;
        prop_assert_eq!(runtime.read_var(id, "n"), Some(V::Int(expected)));
    }
}
