//! Telemetry integration tests: the subsystem must be *observably
//! invisible* — enabling it changes no verdict and no exploration
//! counter — and the trace files it writes must round-trip through the
//! Chrome `trace_event` JSON format with well-formed span nesting.

use std::path::PathBuf;
use std::process::Command;
use std::time::Duration;

use p_core::telemetry::json::JsonValue;
use p_core::telemetry::Telemetry;
use p_core::{corpus, CheckerOptions, Compiled};

fn p_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_p"))
}

fn corpus_file(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../corpus/programs")
        .join(name)
}

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("p-telemetry-test-{name}"))
}

/// An enabled handle with an aggressive snapshot interval, so even the
/// tiny corpus programs record several snapshots.
fn hot_telemetry() -> Telemetry {
    Telemetry::builder()
        .snapshot_interval(Duration::from_micros(1))
        .build()
        .0
}

// ---- on-vs-off equivalence ---------------------------------------------

/// For every corpus program and every engine configuration (sequential,
/// POR, parallel), running with an enabled telemetry handle must produce
/// exactly the same verdict and counters as running disabled. Telemetry
/// observes the search; it must never steer it.
#[test]
fn telemetry_never_changes_checker_results() {
    for (name, program) in corpus::all() {
        let compiled = Compiled::from_program(program).expect("corpus program compiles");
        for (tag, por, jobs) in [
            ("sequential", false, 1),
            ("por", true, 1),
            ("parallel", false, 4),
        ] {
            let options = CheckerOptions {
                por,
                jobs,
                ..CheckerOptions::default()
            };
            let plain = compiled
                .verifier()
                .with_options(options.clone())
                .check_exhaustive();
            let traced = compiled
                .verifier()
                .with_options(options)
                .with_telemetry(hot_telemetry())
                .check_exhaustive();
            assert_eq!(
                plain.passed(),
                traced.passed(),
                "{name}/{tag}: telemetry changed the verdict"
            );
            assert_eq!(
                plain.complete, traced.complete,
                "{name}/{tag}: telemetry changed completeness"
            );
            assert_eq!(
                plain.stats.unique_states, traced.stats.unique_states,
                "{name}/{tag}: telemetry changed the state count"
            );
            assert_eq!(
                plain.stats.transitions, traced.stats.transitions,
                "{name}/{tag}: telemetry changed the transition count"
            );
            assert_eq!(
                plain.stats.dedup_hits, traced.stats.dedup_hits,
                "{name}/{tag}: telemetry changed the dedup count"
            );
            assert_eq!(
                plain.stats.sleep_pruned, traced.stats.sleep_pruned,
                "{name}/{tag}: telemetry changed the POR prune count"
            );
        }
    }
}

// ---- profile round-trip -------------------------------------------------

/// `p verify --profile` must emit parseable Chrome JSON whose
/// exploration counters agree with the stats the CLI printed, and the
/// verdict lines must be byte-identical to a run without the flag.
#[test]
fn verify_profile_round_trips_and_matches_plain_output() {
    let program = corpus_file("german3.p");
    let profile = temp_path("german3-prof.json");
    let with = p_bin()
        .args([
            "verify",
            program.to_str().unwrap(),
            "--profile",
            profile.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(with.status.success());
    let without = p_bin()
        .args(["verify", program.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(without.status.success());

    // The stats line and verdict line are identical with telemetry on —
    // except the wall time, which no two runs share; compare the
    // deterministic prefix ("N states, M transitions, depth D").
    let deterministic = |out: &std::process::Output| -> Vec<String> {
        String::from_utf8_lossy(&out.stdout)
            .lines()
            .filter(|l| l.contains(" states, ") || l.contains("PASSED") || l.contains("FAILED"))
            .map(|l| match l.split(", depth ").next() {
                Some(prefix) if l.contains(" states, ") => {
                    let depth = l
                        .split(", depth ")
                        .nth(1)
                        .and_then(|rest| rest.split(',').next())
                        .unwrap_or("");
                    format!("{prefix}, depth {depth}")
                }
                _ => l.to_owned(),
            })
            .collect()
    };
    assert_eq!(
        deterministic(&with),
        deterministic(&without),
        "--profile changed the verification output"
    );

    // Round-trip the profile document through the JSON parser.
    let text = std::fs::read_to_string(&profile).unwrap();
    let doc = JsonValue::parse(&text).expect("profile is valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(JsonValue::as_array)
        .expect("traceEvents array");
    let snapshots: Vec<&JsonValue> = events
        .iter()
        .filter(|e| e.get("name").and_then(JsonValue::as_str) == Some("exploration"))
        .collect();
    assert!(
        !snapshots.is_empty(),
        "profile must contain exploration snapshots"
    );
    for snap in &snapshots {
        assert_eq!(snap.get("ph").and_then(JsonValue::as_str), Some("C"));
        assert!(snap.get("args").and_then(|a| a.get("states")).is_some());
    }

    // The embedded final metrics row agrees with the CLI's stats line.
    let exploration = doc.get("exploration").expect("final metrics row");
    let states = exploration
        .get("states")
        .and_then(JsonValue::as_u64)
        .unwrap();
    let transitions = exploration
        .get("transitions")
        .and_then(JsonValue::as_u64)
        .unwrap();
    let stdout = String::from_utf8_lossy(&with.stdout).into_owned();
    assert!(
        stdout.contains(&format!("{states} states, {transitions} transitions")),
        "profile metrics ({states} states, {transitions} transitions) disagree with CLI output:\n{stdout}"
    );
    // The last recorded snapshot has converged to the final counts.
    let last = snapshots.last().unwrap();
    assert_eq!(
        last.get("args")
            .and_then(|a| a.get("states"))
            .and_then(JsonValue::as_u64),
        Some(states)
    );
    let _ = std::fs::remove_file(&profile);
}

// ---- runtime trace nesting ---------------------------------------------

/// `p run --trace` must emit a Chrome document in which every `run` span
/// is properly bracketed (B before E, per track) and the per-event
/// instants (`dequeue`, `send`, `raise`, `inject`) fall *inside* a run
/// span on their track — the span covers the atomic run that produced
/// them.
#[test]
fn run_trace_spans_nest_their_events() {
    let program = corpus_file("switch_led.p");
    let trace = temp_path("switch-trace.json");
    let out = p_bin()
        .args([
            "run",
            program.to_str().unwrap(),
            "Driver",
            "--trace",
            trace.to_str().unwrap(),
            "DevicePowerUp",
            "IoctlSetLed:1",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let text = std::fs::read_to_string(&trace).unwrap();
    let doc = JsonValue::parse(&text).expect("trace is valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(JsonValue::as_array)
        .expect("traceEvents array");
    assert!(!events.is_empty());

    // Replay the event stream per track, tracking open-span depth.
    use std::collections::HashMap;
    let mut depth: HashMap<u64, i64> = HashMap::new();
    let mut nested_instants = 0;
    for e in events {
        let tid = e.get("tid").and_then(JsonValue::as_u64).unwrap_or(0);
        let name = e.get("name").and_then(JsonValue::as_str).unwrap_or("");
        match e.get("ph").and_then(JsonValue::as_str) {
            Some("B") => {
                assert_eq!(name, "run", "only run spans are emitted by the runtime");
                *depth.entry(tid).or_insert(0) += 1;
            }
            Some("E") => {
                let d = depth.entry(tid).or_insert(0);
                *d -= 1;
                assert!(*d >= 0, "span end without begin on track {tid}");
            }
            Some("i") => {
                if matches!(name, "dequeue" | "send" | "raise") {
                    assert!(
                        depth.get(&tid).copied().unwrap_or(0) > 0,
                        "`{name}` instant outside any run span on track {tid}"
                    );
                    nested_instants += 1;
                }
            }
            _ => {}
        }
    }
    assert!(
        depth.values().all(|d| *d == 0),
        "unbalanced run spans: {depth:?}"
    );
    assert!(
        nested_instants > 0,
        "expected dequeue/raise instants inside run spans"
    );

    // Timestamps are non-decreasing (single runtime thread).
    let ts: Vec<u64> = events
        .iter()
        .filter_map(|e| e.get("ts").and_then(JsonValue::as_u64))
        .collect();
    assert!(ts.windows(2).all(|w| w[0] <= w[1]), "timestamps regressed");
    let _ = std::fs::remove_file(&trace);
}

/// `p run` output (states, queue lengths, exit code) is identical with
/// and without tracing, and `--metrics` writes a parseable registry
/// report with the runtime counters.
#[test]
fn run_flags_do_not_change_behavior_and_metrics_parse() {
    let program = corpus_file("switch_led.p");
    let metrics = temp_path("switch-metrics.json");
    let events = ["DevicePowerUp", "IoctlSetLed:1", "DevicePowerDown"];
    let plain = p_bin()
        .args(["run", program.to_str().unwrap(), "Driver"])
        .args(events)
        .output()
        .unwrap();
    let instrumented = p_bin()
        .args([
            "run",
            program.to_str().unwrap(),
            "Driver",
            "--metrics",
            metrics.to_str().unwrap(),
        ])
        .args(events)
        .output()
        .unwrap();
    assert!(plain.status.success() && instrumented.status.success());
    let body = |out: &std::process::Output| -> String {
        String::from_utf8_lossy(&out.stdout)
            .lines()
            .filter(|l| !l.starts_with("wrote "))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(
        body(&plain),
        body(&instrumented),
        "--metrics changed the run output"
    );

    let report = JsonValue::parse(&std::fs::read_to_string(&metrics).unwrap()).unwrap();
    assert_eq!(
        report.get("schema").and_then(JsonValue::as_str),
        Some("p-metrics-v1")
    );
    let runs = report
        .get("counters")
        .and_then(|c| c.get("runtime.runs"))
        .and_then(JsonValue::as_u64)
        .expect("runtime.runs counter");
    assert!(runs > 0, "the runtime executed runs");
    let _ = std::fs::remove_file(&metrics);
}

/// `p run --stats` appends the RuntimeStats JSON snapshot, including the
/// per-machine supervision status.
#[test]
fn run_stats_reports_machine_status_json() {
    let program = corpus_file("switch_led.p");
    let out = p_bin()
        .args([
            "run",
            program.to_str().unwrap(),
            "Driver",
            "--stats",
            "DevicePowerUp",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    let json_start = stdout.find('{').expect("stats JSON in output");
    let stats = JsonValue::parse(&stdout[json_start..stdout.rfind('}').unwrap() + 1])
        .expect("stats JSON parses");
    assert!(
        stats
            .get("events_processed")
            .and_then(JsonValue::as_u64)
            .unwrap()
            >= 1
    );
    let machines = stats
        .get("machines")
        .and_then(JsonValue::as_array)
        .expect("machines array");
    assert_eq!(machines.len(), 1);
    assert_eq!(
        machines[0].get("status").and_then(JsonValue::as_str),
        Some("running")
    );
}
