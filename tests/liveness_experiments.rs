//! E6: the two liveness properties of §3.2, end to end. The paper
//! specifies these in LTL and defers checking to future work; this
//! reproduction implements a bounded fair-cycle check.

use p_core::checker::LivenessViolation;
use p_core::{Compiled, Verifier};

fn liveness(src: &str) -> p_core::LivenessReport {
    let compiled = Compiled::from_source(src).unwrap();
    let safety = compiled.verify();
    assert!(
        safety.passed(),
        "liveness programs must be safe first: {:?}",
        safety.counterexample
    );
    compiled.verify_liveness()
}

#[test]
fn property_one_machine_running_forever() {
    // A machine that keeps itself enabled forever by self-sends —
    // the ∃m. ◇□ sched(m) violation.
    let report = liveness(
        r#"
        event tick;
        machine Spinner {
            state S {
                entry { send(this, tick); }
                on tick goto S;
            }
        }
        main Spinner();
        "#,
    );
    assert!(report
        .violations
        .iter()
        .any(|v| matches!(v, LivenessViolation::MachineRunsForever { .. })));
}

#[test]
fn property_two_event_deferred_forever() {
    // `job` is enqueued once and deferred in every state of the busy
    // loop; under fair scheduling it is never dequeued.
    let report = liveness(
        r#"
        event job;
        event tick;
        machine Busy {
            state S {
                defer job;
                entry { send(this, tick); }
                on tick goto S;
            }
        }
        ghost machine Env {
            var b : id;
            state Drive {
                entry { b := new Busy(); send(b, job); }
            }
        }
        main Env();
        "#,
    );
    assert!(report.violations.iter().any(|v| matches!(
        v,
        LivenessViolation::EventNeverDequeued { event_name, .. } if event_name == "job"
    )));
}

#[test]
fn postpone_annotation_documents_accepted_starvation() {
    // §3.2's refinement: annotating the state with `postpone job`
    // removes the property-two violation (the property-one violation for
    // the spinner itself remains — it is a different defect).
    let report = liveness(
        r#"
        event job;
        event tick;
        machine Busy {
            state S {
                defer job;
                postpone job;
                entry { send(this, tick); }
                on tick goto S;
            }
        }
        ghost machine Env {
            var b : id;
            state Drive {
                entry { b := new Busy(); send(b, job); }
            }
        }
        main Env();
        "#,
    );
    assert!(!report
        .violations
        .iter()
        .any(|v| matches!(v, LivenessViolation::EventNeverDequeued { .. })));
}

#[test]
fn responsive_protocols_have_no_liveness_violations() {
    // Request/response ping-pong with bounded stimulus: every event is
    // eventually dequeued and every machine eventually blocks.
    let report = liveness(p_core::corpus::PING_PONG_SRC);
    assert!(report.passed(), "{:?}", report.violations);
    assert!(report.complete);
}

#[test]
fn unfair_cycles_are_not_reported() {
    // Two machines ping-pong forever, but each is disabled while waiting
    // for the other — neither runs forever *without being disabled*, so
    // property one does not fire; and every event is dequeued, so
    // property two does not fire either. This guards against the checker
    // over-approximating.
    let report = liveness(
        r#"
        event ping : id;
        event pong;
        machine Left {
            var right : id;
            state S {
                entry { right := new Right(); send(right, ping, this); }
                on pong goto Again;
            }
            state Again {
                entry { send(right, ping, this); }
                on pong goto Again;
            }
        }
        machine Right {
            var l : id;
            state T {
                on ping do reply;
            }
            action reply { l := arg; send(l, pong); }
        }
        main Left();
        "#,
    );
    assert!(
        !report
            .violations
            .iter()
            .any(|v| matches!(v, LivenessViolation::MachineRunsForever { .. })),
        "alternating machines are each disabled infinitely often: {:?}",
        report.violations
    );
}

#[test]
fn liveness_report_on_elevator_with_budget_one() {
    let program = p_core::corpus::elevator_with_budget(1);
    let lowered = p_core::semantics::lower(&program).unwrap();
    let report = Verifier::new(&lowered).check_liveness();
    assert!(report.complete);
    // All legitimate deferrals are postponed in the corpus elevator.
    assert!(
        !report
            .violations
            .iter()
            .any(|v| matches!(v, LivenessViolation::EventNeverDequeued { .. })),
        "{:?}",
        report.violations
    );
}
