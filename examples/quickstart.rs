//! Quickstart: compile a small P program, verify it exhaustively, run it
//! under the execution runtime, and peek at the generated C.
//!
//! ```sh
//! cargo run -p p-core --example quickstart
//! ```

use p_core::{Compiled, Value};

fn main() {
    // A P program: a counter machine plus a ghost environment that
    // nondeterministically bumps it. The ghost machine exists only during
    // verification; it is erased before execution (§3.3 of the paper).
    let source = r#"
        event bump;
        event query;

        machine Counter {
            var n : int;
            state Run {
                entry { n := 0; }
                on bump do increment;
            }
            action increment {
                n := n + 1;
                assert(n > 0);
            }
        }

        ghost machine Env {
            var c : id;
            var budget : int;
            state Drive {
                entry {
                    c := new Counter();
                    while (* && (budget > 0)) {
                        budget := budget - 1;
                        send(c, bump);
                    }
                }
            }
        }

        main Env(budget = 3);
    "#;

    let compiled = Compiled::from_source(source).expect("program compiles");
    println!(
        "compiled: {} machine(s), {} event(s)",
        compiled.program().machines.len(),
        compiled.program().events.len()
    );

    // 1. Systematic testing (§5): every schedule, every ghost choice.
    let report = compiled.verify();
    println!(
        "verification: {} — {}",
        if report.passed() { "PASSED" } else { "FAILED" },
        report.stats
    );

    // 2. The delay-bounded causal scheduler at increasing budgets.
    for d in 0..3 {
        let r = compiled.verify_delay_bounded(d);
        println!(
            "  delay bound {d}: {} states explored",
            r.report.stats.unique_states
        );
    }

    // 3. Execution (§4): ghosts erased, events injected by the host.
    let runtime = compiled.runtime().expect("erases fine").start();
    let counter = runtime.create_machine("Counter", &[]).unwrap();
    for _ in 0..5 {
        runtime.add_event(counter, "bump", Value::Null).unwrap();
    }
    println!(
        "runtime: n = {} after 5 bumps (state {})",
        runtime.read_var(counter, "n").unwrap(),
        runtime.current_state(counter).unwrap()
    );

    // 4. Code generation (§4): the table-driven C translation unit.
    let c = compiled.emit_c().expect("codegen succeeds");
    println!(
        "codegen: {} lines of C, {} functions, {} states",
        c.stats.lines, c.stats.functions, c.stats.states
    );
}
