//! The elevator of Figures 1–2: verify it exhaustively, sweep the delay
//! bound like Figure 7, and show how the seeded bug is caught with a
//! counterexample trace.
//!
//! ```sh
//! cargo run -p p-core --example elevator_verify
//! ```

use p_core::{corpus, Compiled};

fn main() {
    let compiled = Compiled::from_program(corpus::elevator()).expect("elevator compiles");
    let program = compiled.program();
    println!(
        "elevator: {} machines ({} ghost), {} states, {} transitions",
        program.machines.len(),
        program.ghost_machines().count(),
        program.total_states(),
        program.total_transitions()
    );

    // Exhaustive baseline.
    let full = compiled.verify();
    println!("exhaustive: {} — {}", verdict(full.passed()), full.stats);

    // Figure 7: states explored as the delay bound grows.
    println!("\ndelay-bound sweep (Figure 7 series):");
    println!("{:>6} {:>12} {:>14}", "d", "states", "sched. nodes");
    for d in 0..=6 {
        let r = compiled.verify_delay_bounded(d);
        println!(
            "{d:>6} {:>12} {:>14}",
            r.report.stats.unique_states, r.scheduler_nodes
        );
    }

    // The buggy variant: Opening no longer ignores a second OpenDoor.
    let buggy = Compiled::from_program(corpus::elevator_buggy()).expect("buggy compiles");
    for d in 0..=2 {
        let r = buggy.verify_delay_bounded(d);
        match r.report.counterexample {
            None => println!("\nbuggy elevator, delay bound {d}: no violation"),
            Some(cx) => {
                println!("\nbuggy elevator, delay bound {d}: VIOLATION\n{cx}");
                break;
            }
        }
    }
}

fn verdict(passed: bool) -> &'static str {
    if passed {
        "PASSED"
    } else {
        "FAILED"
    }
}
