//! Generate the C translation unit for the elevator — the compilation
//! path of §4 — and write it next to the target directory.
//!
//! ```sh
//! cargo run -p p-core --example codegen_c
//! ```

use std::fs;

use p_core::{corpus, Compiled};

fn main() {
    let compiled = Compiled::from_program(corpus::elevator()).expect("elevator compiles");
    let out = compiled.emit_c().expect("codegen succeeds");

    println!(
        "generated {} lines of C ({} functions, {} states, {} events)\n",
        out.stats.lines, out.stats.functions, out.stats.states, out.stats.events
    );

    // Show the driver tables — the part the paper describes as "indexed
    // and statically-allocated data structures examined by the runtime".
    let marker = "/* ==== driver declaration ==== */";
    if let Some(pos) = out.code.find(marker) {
        println!("{}", &out.code[pos..]);
    }

    let path = std::env::temp_dir().join("elevator_generated.c");
    fs::write(&path, &out.code).expect("write generated C");
    println!("full translation unit written to {}", path.display());
}
