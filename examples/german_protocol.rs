//! German's cache-coherence protocol: verify coherence exhaustively, then
//! demonstrate how the checker catches the classic grant-while-exclusive
//! bug with a full counterexample schedule.
//!
//! ```sh
//! cargo run -p p-core --example german_protocol
//! ```

use p_core::{corpus, Compiled};

fn main() {
    let compiled = Compiled::from_program(corpus::german()).expect("german compiles");
    println!(
        "german: Home with {} states, Client with {} states",
        compiled
            .program()
            .machine_named("Home")
            .unwrap()
            .states
            .len(),
        compiled
            .program()
            .machine_named("Client")
            .unwrap()
            .states
            .len(),
    );

    let report = compiled.verify();
    println!(
        "coherence invariant: {} — {}",
        if report.passed() { "HOLDS" } else { "VIOLATED" },
        report.stats
    );

    // Scale the number of client requests.
    println!("\nscaling the request budget:");
    for budget in 1..=3 {
        let p = Compiled::from_program(corpus::german_with_budget(budget)).unwrap();
        let r = p.verify();
        println!(
            "  budget {budget}: {:>8} states, {:>9} transitions",
            r.stats.unique_states, r.stats.transitions
        );
    }

    // The seeded bug: shared granted without invalidating the owner.
    let buggy = Compiled::from_program(corpus::german_buggy()).unwrap();
    let r = buggy.verify();
    match r.counterexample {
        None => println!("\nbuggy german: not caught (unexpected!)"),
        Some(cx) => println!("\nbuggy german caught by exhaustive search:\n{cx}"),
    }

    // And with the delay-bounded scheduler, as the paper does.
    for d in 0..=2 {
        let r = buggy.verify_delay_bounded(d);
        println!(
            "buggy german at delay bound {d}: {}",
            match &r.report.counterexample {
                None => "no violation".to_owned(),
                Some(cx) => format!("VIOLATION ({} trace steps)", cx.trace.len()),
            }
        );
    }
}
