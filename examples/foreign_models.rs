//! Foreign functions with erasable model bodies (§3 "Other features"):
//! the same program is verified against the P model of its foreign code
//! and executed against the real Rust implementation.
//!
//! ```sh
//! cargo run -p p-core --example foreign_models
//! ```

use p_core::{Compiled, Value};

fn main() {
    // The driver reads a sensor through a foreign function. During
    // verification, `read_sensor` has no native implementation, so the
    // checker interprets its erasable model body — which says "the sensor
    // returns *some* value between 0 and 2" using ghost nondeterminism.
    let source = r#"
        event sample;

        machine Monitor {
            var last : int;
            var alarms : int;

            foreign fn read_sensor() : int {
                result := 0;
                if (*) { result := 1; }
                if (*) { result := result + 1; }
            }

            state Run {
                on sample do take;
            }

            action take {
                last := read_sensor();
                assert(last >= 0);
                assert(last <= 2);
                if (last == 2) {
                    alarms := alarms + 1;
                }
            }
        }

        ghost machine Env {
            var m : id;
            var budget : int;
            state Drive {
                entry {
                    m := new Monitor(alarms = 0);
                    while (budget > 0) {
                        budget := budget - 1;
                        send(m, sample);
                    }
                }
            }
        }

        main Env(budget = 1);
    "#;

    let compiled = Compiled::from_source(source).expect("compiles");

    // Verification interprets the model body, exploring all three sensor
    // outcomes per sample.
    let report = compiled.verify();
    println!(
        "verification against the model body: {} — {}",
        if report.passed() { "PASSED" } else { "FAILED" },
        report.stats
    );

    // Execution uses the real implementation; the model body was erased.
    let mut builder = compiled.runtime().expect("erases");
    let readings = std::sync::Mutex::new(vec![2i64, 0, 2, 1]);
    builder.foreign("read_sensor", move |_args| {
        let mut r = readings.lock().unwrap();
        Value::Int(r.pop().unwrap_or(0))
    });
    let runtime = builder.start();
    let monitor = runtime
        .create_machine("Monitor", &[("alarms", Value::Int(0))])
        .unwrap();
    for _ in 0..4 {
        runtime.add_event(monitor, "sample", Value::Null).unwrap();
    }
    println!(
        "execution against the native sensor: last = {}, alarms = {}",
        runtime.read_var(monitor, "last").unwrap(),
        runtime.read_var(monitor, "alarms").unwrap()
    );
}
