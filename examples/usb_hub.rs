//! The USB case study (§6): verify the four machine analogs of Figure 8
//! and print the corresponding table — P states, P transitions, explored
//! states, time and memory.
//!
//! ```sh
//! cargo run -p p-core --example usb_hub
//! ```

use p_core::{corpus, Compiled};

fn main() {
    println!("USB case study machines (Figure 8 analog)\n");
    println!(
        "{:<10} {:>9} {:>14} {:>16} {:>10} {:>10}",
        "machine", "P states", "P transitions", "explored states", "time", "memory"
    );

    for (name, program) in corpus::figure8_machines() {
        let real = program.real_machines().next().expect("one real machine");
        let p_states = real.states.len();
        let p_transitions = real.transition_count();
        let compiled = Compiled::from_program(program).expect("usb machine compiles");
        let report = compiled.verify();
        assert!(
            report.passed(),
            "{name} has a violation: {:?}",
            report.counterexample
        );
        println!(
            "{:<10} {:>9} {:>14} {:>16} {:>9.2?} {:>8.2} MiB",
            name,
            p_states,
            p_transitions,
            report.stats.unique_states,
            report.stats.duration,
            report.stats.stored_mib()
        );
    }

    println!(
        "\nAs in the paper, the device state machine (DSM) is the largest,\n\
         and exploration cost grows with machine size. Absolute counts are\n\
         smaller than Figure 8 because the proprietary USBHUB3 machines are\n\
         replaced by scaled analogs (see DESIGN.md)."
    );
}
