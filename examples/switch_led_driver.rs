//! Run the switch-and-LED driver of §4.1 as a "device driver": ghosts
//! erased, a simulated KMDF host translating OS callbacks into P events,
//! and a foreign-function flavored LED register implemented in Rust.
//!
//! ```sh
//! cargo run -p p-core --example switch_led_driver
//! ```

use p_core::{corpus, Compiled, Value};

fn main() {
    let compiled = Compiled::from_program(corpus::switch_led()).expect("switch_led compiles");
    println!(
        "driver machine has {} states; {} ghost machines will be erased",
        compiled
            .program()
            .machine_named("Driver")
            .unwrap()
            .states
            .len(),
        compiled.program().ghost_machines().count()
    );

    let runtime = compiled.runtime().expect("erases fine").start();
    let driver = runtime.create_machine("Driver", &[]).unwrap();
    println!(
        "created driver, state = {}",
        runtime.current_state(driver).unwrap()
    );

    // The OS powers the device up. (Sends to ghost hardware were erased;
    // at real runtime the interface code would forward them. We inject
    // the hardware's answers the way interface code would.)
    runtime
        .add_event(driver, "DevicePowerUp", Value::Null)
        .unwrap();
    println!(
        "after DevicePowerUp: {}",
        runtime.current_state(driver).unwrap()
    );

    // The switch hardware reports its initial state.
    runtime
        .add_event(driver, "SwitchStateChange", Value::Int(0))
        .unwrap();
    println!(
        "after initial SwitchStateChange: {} (switchState = {})",
        runtime.current_state(driver).unwrap(),
        runtime.read_var(driver, "switchState").unwrap()
    );

    // An application asks to set the LED; the transfer completes.
    runtime
        .add_event(driver, "IoctlSetLed", Value::Int(1))
        .unwrap();
    println!(
        "during transfer: {}",
        runtime.current_state(driver).unwrap()
    );
    runtime
        .add_event(driver, "TransferComplete", Value::Null)
        .unwrap();
    println!(
        "after TransferComplete: {} (ledState = {})",
        runtime.current_state(driver).unwrap(),
        runtime.read_var(driver, "ledState").unwrap()
    );

    // A switch interrupt races a second transfer: the driver defers it.
    runtime
        .add_event(driver, "IoctlSetLed", Value::Int(0))
        .unwrap();
    runtime
        .add_event(driver, "SwitchStateChange", Value::Int(1))
        .unwrap();
    println!(
        "interrupt during transfer deferred: queue length = {}",
        runtime.queue_len(driver).unwrap()
    );
    runtime
        .add_event(driver, "TransferComplete", Value::Null)
        .unwrap();
    println!(
        "after completion the deferred interrupt is handled: switchState = {}",
        runtime.read_var(driver, "switchState").unwrap()
    );

    // Power down: the driver disarms the switch and waits for the ack.
    runtime
        .add_event(driver, "DevicePowerDown", Value::Null)
        .unwrap();
    runtime
        .add_event(driver, "SwitchDisarmed", Value::Null)
        .unwrap();
    println!(
        "after power down: {}",
        runtime.current_state(driver).unwrap()
    );

    println!(
        "\nprocessed {} events in {} machine runs",
        runtime.events_processed(),
        runtime.runs_executed()
    );
}
